#!/usr/bin/env python3
"""Registration: a cold-start storm vs the intended sparse arrivals.

Section 2.1 sets the design goal: 80% of registrations within two
notification cycles, 99% within ten.  This script contrasts

* the intended regime -- subscribers arriving one by one (Poisson) --
  where nearly every registration succeeds on the first try, with
* a worst-case cold start -- 22 subscribers all powering on in cycle 0 --
  where the persistence rule plus the base station's adaptive
  contention-slot count dig the cell out of the pile-up.

Run::

    python examples/registration_storm.py
"""

from repro import CellConfig, run_cell


def report(title: str, config: CellConfig) -> None:
    stats = run_cell(config)
    latencies = stats.registration_latency_cycles
    print(title)
    print(f"  registered           : {stats.registrations_completed}")
    print(f"  attempts transmitted : {stats.registration_attempts}")
    print(f"  mean latency         : {latencies.mean:.2f} cycles")
    print(f"  max latency          : {latencies.max:.0f} cycles")
    print(f"  P[latency <= 2]      : {stats.registration_cdf(2):.2f} "
          f"(goal: >= 0.80)")
    print(f"  P[latency <= 10]     : {stats.registration_cdf(10):.2f} "
          f"(goal: >= 0.99)")
    print()


def main() -> None:
    base = dict(num_data_users=14, num_gps_users=8, load_index=0.5,
                cycles=150, warmup_cycles=30, seed=4)
    report("Sparse arrivals (Poisson, one subscriber every ~20 s):",
           CellConfig(registration_mode="poisson",
                      registration_rate=0.05, **base))
    report("Cold-start storm (all 22 subscribers in cycle 0):",
           CellConfig(registration_mode="simultaneous", **base))
    print("The storm violates the 2-cycle goal by design -- it is the "
          "worst case the adaptive contention-slot mechanism exists "
          "for; the sparse regime (the design target) meets both goals.")


if __name__ == "__main__":
    main()
