#!/usr/bin/env python3
"""Error control: the RS(64,48) codec over a bursty wireless channel.

The paper's field observation (Section 2.2): with the RS(64,48) design,
a packet is either delivered error-free or the decoder fails -- it is
"extremely rare that a packet is delivered with an error".  This script
demonstrates the dichotomy end to end:

1. a real control-field block is bit-packed and RS-encoded,
2. a Gilbert-Elliott channel corrupts it (quiet stretches with a few
   symbol errors; occasional deep fades that wreck whole codewords),
3. the real RS decoder either corrects the word exactly or refuses.

Run::

    python examples/error_control.py
"""

import random

from repro.core.fields import AckEntry, ControlFields
from repro.phy.errors import GilbertElliottModel
from repro.phy.rs import RS_64_48, RSDecodeFailure


def main() -> None:
    rng = random.Random(2024)
    channel = GilbertElliottModel(p_good=0.003, p_bad=0.45,
                                  p_good_to_bad=2e-3, p_bad_to_good=1e-2)

    cf = ControlFields(
        cycle=17, which=1,
        gps_schedule=[4, 9, 11],
        reverse_schedule=[None, 3, 3, 3, 7, 7, 2, 2, 5],
        reverse_acks=[AckEntry.data_ack(3),
                      AckEntry.registration_reply(0x1234, 12)])
    codewords = cf.to_codewords()
    print(f"control-field block: {len(codewords)} RS(64,48) codewords, "
          f"{sum(len(c) for c in codewords)} coded bytes")
    print()

    delivered = corrected = lost = 0
    silently_corrupted = 0
    trials = 2000
    for _ in range(trials):
        received = [channel.corrupt(cw, rng) for cw in codewords]
        errors = sum(sum(1 for a, b in zip(rx, cw) if a != b)
                     for rx, cw in zip(received, codewords))
        try:
            decoded = ControlFields.from_codewords(
                [bytes(rx) for rx in received])
        except RSDecodeFailure:
            lost += 1
            continue
        # NB: decode() pads schedules to their wire-format lengths.
        intact = (decoded.reverse_schedule == cf.reverse_schedule
                  and decoded.gps_schedule[:3] == cf.gps_schedule
                  and all(uid is None for uid in decoded.gps_schedule[3:])
                  and decoded.reverse_acks[:2] == cf.reverse_acks)
        if intact:
            delivered += 1
            if errors:
                corrected += 1
        else:
            silently_corrupted += 1

    print(f"trials                   : {trials}")
    print(f"delivered intact         : {delivered} "
          f"({delivered / trials:.1%})")
    print(f"  of which RS-corrected  : {corrected}")
    print(f"lost (decoder refused)   : {lost} ({lost / trials:.1%})")
    print(f"silently corrupted       : {silently_corrupted}  <- the "
          f"paper's point: this stays at (or extremely near) zero")
    print()
    print("Every block is either recovered exactly (up to 8 symbol "
          "errors per codeword corrected) or dropped; the MAC treats a "
          "drop as packet loss and its ACK machinery recovers.")


if __name__ == "__main__":
    main()
