#!/usr/bin/env python3
"""Roaming: a three-cell wireless WAN with inter-cell e-mail and handoff.

Builds the paper's full system model (Section 2.2): three cells whose
base stations are joined by a wired point-to-point backbone.  Data
subscribers exchange e-mails across cells -- uplink at the source cell,
backbone hop, downlink at the destination cell -- and one subscriber
roams across all three cells mid-run, re-registering through each new
cell's contention slots while its uplink queue travels along.

Run::

    python examples/roaming.py
"""

from repro.core.config import CellConfig
from repro.network import MultiCellConfig, build_network
from repro.phy import timing


def main() -> None:
    config = MultiCellConfig(
        num_cells=3,
        cell=CellConfig(num_data_users=6, num_gps_users=2,
                        load_index=0.0,  # the network generates traffic
                        cycles=220, warmup_cycles=20, seed=6),
        load_index=0.4,
        inter_cell_fraction=0.6,
        backbone_latency=0.005,  # 5 ms wired hop
        seed=6)
    net = build_network(config)

    roamer = net.cells[0].data_users[0]
    print(f"roamer: {roamer.name} (EIN {roamer.ein:#06x})")
    itinerary = [(1, 60), (2, 120), (0, 180)]
    for cell_index, cycle in itinerary:
        net.handoff(roamer.ein, cell_index,
                    at_time=cycle * timing.CYCLE_LENGTH)

    stats = net.run()

    print()
    print("network-level results")
    print("---------------------")
    print(f"messages routed            : {stats.messages_routed}")
    print(f"  terminated at local BS   : "
          f"{stats.messages_routed - stats.messages_delivered_local - stats.messages_forwarded}")
    print(f"  delivered within cell    : {stats.messages_delivered_local}")
    print(f"  forwarded over backbone  : {stats.messages_forwarded}")
    print(f"buffered awaiting handoff  : "
          f"{stats.messages_buffered_for_registration}")
    print(f"end-to-end delay           : mean "
          f"{stats.end_to_end_delay.mean:.1f} s, max "
          f"{stats.end_to_end_delay.max:.1f} s "
          f"({stats.end_to_end_delay.count} messages)")
    print(f"handoffs completed         : {stats.handoffs_completed}")
    print(f"backbone                   : "
          f"{net.backbone.total_items} messages, "
          f"{net.backbone.total_bytes} bytes")
    print()
    print("per-cell results")
    print("----------------")
    for index, cell in enumerate(net.cells):
        s = cell.stats
        print(f"cell {index}: uplink packets {s.data_packets_delivered:4d}, "
              f"registrations {s.registrations_completed}, "
              f"GPS misses {s.gps_deadline_misses}, "
              f"radio violations {int(s.radio_violations)}")
    print()
    print(f"roamer finished in cell "
          f"{net.directory[roamer.ein][0]} with state "
          f"{roamer.state!r} (uid {roamer.uid})")


if __name__ == "__main__":
    main()
