#!/usr/bin/env python3
"""Protocol tracing: watch OSU-MAC's on-air events, cycle by cycle.

Instruments a small cell with :class:`repro.trace.CellTracer` and prints
an annotated excerpt of the on-air event stream -- registration
contention resolving itself, the GPS slots ticking every cycle, and
reservation-then-data exchanges.  Also dumps the full trace as JSON
lines for offline analysis.

Run::

    python examples/protocol_trace.py
"""

import tempfile

from repro import CellConfig
from repro.core.cell import build_cell
from repro.phy import timing
from repro.trace import CellTracer


def main() -> None:
    config = CellConfig(num_data_users=4, num_gps_users=2,
                        load_index=0.6, cycles=30, warmup_cycles=5,
                        seed=20)
    run = build_cell(config)
    tracer = CellTracer(run)
    run.sim.run(until=config.duration)

    print("event summary")
    print("-------------")
    for key, count in sorted(tracer.summary().items()):
        print(f"  {key:28s} {count}")

    print()
    print("first three cycles, annotated")
    print("-----------------------------")
    horizon = 3 * timing.CYCLE_LENGTH
    for event in tracer.events:
        if event.time > horizon:
            break
        cycle = int(event.time // timing.CYCLE_LENGTH)
        offset = event.time - cycle * timing.CYCLE_LENGTH
        detail = ""
        if event.category == "uplink":
            detail = (f"slot {event.detail['slot_kind']}"
                      f"[{event.detail['slot']}]"
                      + (" (contention)" if event.detail["contention"]
                         else ""))
        print(f"  cycle {cycle}  +{offset:6.3f}s  "
              f"{event.category:8s} {event.event:13s} "
              f"{event.actor:14s} {detail}")

    print()
    registrations = list(tracer.query(category="control",
                                      event="registration"))
    print(f"registrations completed: {len(registrations)} "
          f"(last at t={registrations[-1].time:.1f}s)")
    collisions = tracer.count(category="uplink", event="collision")
    print(f"contention collisions observed: {collisions}")

    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False,
                                     mode="w") as handle:
        path = handle.name
    count = tracer.write_jsonl(path)
    print(f"full trace: {count} events written to {path}")


if __name__ == "__main__":
    main()
