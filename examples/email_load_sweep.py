#!/usr/bin/env python3
"""E-mail workload: sweep the load index like the paper's Fig. 8.

Nine data subscribers send variable-length e-mails (uniform 40-500
bytes); the load index rho is swept over the paper's values.  The script
prints utilization, delay, control overhead and fairness side by side --
a compact reproduction of Figs. 8-11.

Run::

    python examples/email_load_sweep.py
"""

from repro import CellConfig, run_cell
from repro.experiments.runner import PAPER_LOADS


def main() -> None:
    print("load   util   delay(cyc)  overhead  p_coll  fairness  loss")
    print("-----  -----  ----------  --------  ------  --------  -----")
    for load in PAPER_LOADS:
        config = CellConfig(num_data_users=9, num_gps_users=2,
                            load_index=load, cycles=300,
                            warmup_cycles=40, seed=3)
        stats = run_cell(config)
        print(f"{load:4.1f}   "
              f"{stats.utilization():5.3f}  "
              f"{stats.mean_message_delay_cycles():10.2f}  "
              f"{stats.control_overhead():8.3f}  "
              f"{stats.collision_probability():6.3f}  "
              f"{stats.fairness():8.4f}  "
              f"{stats.message_loss_rate():5.3f}")
    print()
    print("Compare with the paper: utilization tracks rho then saturates "
          "near 8/9; delay blows up past the knee; control overhead and "
          "contention collisions fall as piggybacking takes over; "
          "round-robin keeps fairness near 1.")


if __name__ == "__main__":
    main()
