#!/usr/bin/env python3
"""Quickstart: simulate one OSU-MAC cell and print the headline metrics.

Run::

    python examples/quickstart.py

This sets up the paper's evaluation scenario (Section 5): a base station,
a handful of buses reporting GPS positions in their reserved GPS slots,
and data subscribers exchanging short e-mails over the reservation-based
reverse channel, at a moderate load index.
"""

from repro import CellConfig, run_cell_detailed


def main() -> None:
    config = CellConfig(
        num_data_users=9,  # e-mail subscribers
        num_gps_users=3,  # buses with GPS units
        load_index=0.5,  # rho: offered load / reverse data capacity
        message_size="uniform",  # e-mails of 40..500 bytes
        cycles=200,  # ~13 minutes of air time
        warmup_cycles=30,
        seed=7)
    run = run_cell_detailed(config)
    stats = run.stats

    print("OSU-MAC quickstart")
    print("==================")
    print(f"simulated {config.cycles} notification cycles "
          f"({config.duration:.0f} s of air time)")
    print()
    print(f"registered subscribers : "
          f"{stats.registrations_completed} "
          f"(mean latency {stats.registration_latency_cycles.mean:.1f} "
          f"cycles)")
    print(f"reverse-link utilization: {stats.utilization():.3f} "
          f"(offered load {config.load_index})")
    print(f"mean e-mail delay       : "
          f"{stats.mean_message_delay_cycles():.2f} cycles "
          f"({stats.message_delay.mean:.1f} s)")
    print(f"GPS reports delivered   : {stats.gps_packets_delivered} "
          f"(max access delay "
          f"{stats.gps_access_delay.max:.2f} s, deadline 4 s, "
          f"misses: {stats.gps_deadline_misses})")
    print(f"fairness (Jain index)   : {stats.fairness():.4f}")
    print(f"control overhead        : {stats.control_overhead():.3f} "
          f"reservation packets per data packet")
    print(f"half-duplex violations  : {int(stats.radio_violations)} "
          f"(must be 0)")
    print()
    print("full summary:")
    for key, value in stats.summary().items():
        print(f"  {key:32s} {value:.4g}")


if __name__ == "__main__":
    main()
