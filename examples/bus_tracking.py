#!/usr/bin/env python3
"""Bus tracking: the paper's motivating real-time application.

Eight buses carry GPS units reporting their location through reserved
GPS slots.  Mid-run, five buses end their routes and sign off; the base
station consolidates the remaining GPS slots (rules R1-R3, Section 3.3)
and -- once three or fewer buses remain -- switches the reverse channel
to format 2, converting the freed GPS region into a ninth data slot.

The script prints the slot reassignment log and verifies that no bus
ever violates the 4-second location-report deadline, even across
reassignments and the format switch.

Run::

    python examples/bus_tracking.py
"""

from repro import CellConfig
from repro.core.cell import build_cell
from repro.phy import timing


def main() -> None:
    config = CellConfig(
        num_data_users=6,
        num_gps_users=8,  # a full fleet
        load_index=0.7,
        cycles=240,
        warmup_cycles=20,
        seed=12)
    run = build_cell(config)
    bs = run.base_station

    # Route ends: buses 0..4 sign off at staggered times.
    for index, unit in enumerate(run.gps_units[:5]):
        when = (60 + 25 * index) * timing.CYCLE_LENGTH

        def sign_off(unit=unit, when=when):
            if unit.uid is not None:
                print(f"t={when:8.1f}s  bus {unit.name} (uid "
                      f"{unit.uid}) signs off; format is now "
                      f"{bs.gps_mgr.format_id} -> ", end="")
                bs.sign_off(unit.uid)
                print(f"{bs.gps_mgr.format_id}, occupied GPS slots: "
                      f"{bs.gps_mgr.occupied_slots()}")

        run.sim.call_at(when, sign_off)

    run.sim.run(until=config.duration)
    stats = run.stats

    print()
    print("R3 slot reassignments (uid: old slot -> new slot):")
    for move in bs.gps_mgr.reassignments:
        print(f"  cycle {move.cycle:4d}: uid {move.uid:2d} moved "
              f"{move.old_slot} -> {move.new_slot}")

    print()
    print(f"GPS reports transmitted : {stats.gps_packets_sent}")
    print(f"max access delay        : {stats.gps_access_delay.max:.3f} s "
          f"(deadline {config.gps_deadline} s)")
    print(f"deadline misses         : {stats.gps_deadline_misses}")
    print(f"final format            : {bs.gps_mgr.format_id} "
          f"({bs.gps_mgr.active_count} buses remain)")
    print(f"data slots per cycle now: "
          f"{bs.gps_mgr.layout().data_slots} (was "
          f"{timing.FORMAT1_DATA_SLOTS} before the switch)")

    assert stats.gps_deadline_misses == 0, "QoS violated!"
    print()
    print("4-second deadline held for every report, including across "
          "reassignments.")


if __name__ == "__main__":
    main()
