"""Closed-form reference models for cross-validating the simulator.

Simulations are only trustworthy when they agree with theory where
theory exists.  This module collects the analytical results the OSU-MAC
design space admits:

* raw channel budgets and protocol efficiency (from Table 1),
* the reverse-channel capacity under each cycle format,
* a pipeline + M/D/1 approximation of the e-mail message delay,
* slotted-ALOHA throughput (for the contention baselines),
* the GPS QoS bound (worst-case access delay).

The test suite asserts that the discrete-event simulation reproduces
these numbers (see ``tests/test_analysis.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.packets import PAYLOAD_BYTES
from repro.phy import timing

# -- channel budgets ------------------------------------------------------------


def forward_raw_bitrate() -> float:
    """Coded bits per second on the forward channel: 6.4 kbps."""
    return timing.FORWARD_SYMBOL_RATE * timing.CODED_BITS_PER_SYMBOL


def reverse_raw_bitrate() -> float:
    """Coded bits per second on the reverse channel: 4.8 kbps."""
    return timing.REVERSE_SYMBOL_RATE * timing.CODED_BITS_PER_SYMBOL


def reverse_protocol_efficiency(num_gps_users: int = 3,
                                contention_slots: int = 1) -> float:
    """Fraction of the raw reverse bitrate delivered as user payload.

    Accounts for every layer of overhead: pilot symbols, RS parity,
    preambles/postambles/guard times, GPS slots, contention slots, the
    packet header, and the cycle tail guard.
    """
    layout = timing.reverse_layout(num_gps_users)
    usable_slots = layout.data_slots - contention_slots
    payload_bits_per_cycle = usable_slots * PAYLOAD_BYTES * 8
    raw_bits_per_cycle = reverse_raw_bitrate() * timing.CYCLE_LENGTH
    return payload_bits_per_cycle / raw_bits_per_cycle


@dataclass(frozen=True)
class ReverseCapacity:
    """Deliverable reverse-channel capacity under one configuration."""

    data_slots: int
    contention_slots: int
    schedulable_slots: int
    payload_bytes_per_cycle: int
    payload_bytes_per_second: float
    #: Saturation value of the utilization metric (which is normalized
    #: by *all* data slots, including contention slots).
    max_utilization: float


def reverse_capacity(num_gps_users: int,
                     contention_slots: int = 1,
                     dynamic_adjustment: bool = True) -> ReverseCapacity:
    """The reverse channel's data capacity (Fig. 8a's saturation level)."""
    if dynamic_adjustment:
        layout = timing.reverse_layout(num_gps_users)
    else:
        layout = timing.FORMAT1
    schedulable = layout.data_slots - contention_slots
    per_cycle = schedulable * PAYLOAD_BYTES
    return ReverseCapacity(
        data_slots=layout.data_slots,
        contention_slots=contention_slots,
        schedulable_slots=schedulable,
        payload_bytes_per_cycle=per_cycle,
        payload_bytes_per_second=per_cycle / timing.CYCLE_LENGTH,
        max_utilization=schedulable / layout.data_slots)


# -- delay model -----------------------------------------------------------------


def md1_mean_wait(utilization: float, service_time: float) -> float:
    """Mean queueing wait of an M/D/1 queue (Pollaczek-Khinchine)."""
    if not 0 <= utilization < 1:
        raise ValueError("utilization must be in [0, 1)")
    return utilization * service_time / (2 * (1 - utilization))


def expected_message_delay_cycles(load_index: float,
                                  num_gps_users: int = 2,
                                  contention_slots: int = 1,
                                  mean_fragments: float = 6.66) -> float:
    """Pipeline + M/D/1 approximation of the mean e-mail delay (cycles).

    Components:

    1. *Reservation pipeline*: a message arriving mid-cycle waits on
       average half a cycle for the next control fields, one cycle for
       its request to reach the base station and be scheduled, and half
       a cycle on average until its granted slots come up: ~2 cycles.
    2. *Queueing*: the reverse data slots behave like an M/D/1 server
       with message-sized jobs; utilization is the offered load over the
       schedulable-slot capacity.
    3. *Transmission*: ceil-spread of the message's fragments over the
       per-cycle slot share.

    This is deliberately coarse (the true system is polling-based, not
    M/D/1) -- good to ~a factor of 2 below saturation, which is exactly
    the cross-check the tests apply.
    """
    capacity = reverse_capacity(num_gps_users, contention_slots)
    layout = timing.reverse_layout(num_gps_users)
    effective_load = load_index * (layout.data_slots
                                   / capacity.schedulable_slots)
    if effective_load >= 1:
        return math.inf
    service_cycles = mean_fragments / capacity.schedulable_slots
    pipeline = 2.0
    queueing = md1_mean_wait(effective_load, service_cycles)
    return pipeline + queueing + service_cycles


# -- contention baselines ----------------------------------------------------------


def slotted_aloha_throughput(offered_load: float) -> float:
    """S = G * e^-G, the classic slotted-ALOHA result."""
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    return offered_load * math.exp(-offered_load)


def slotted_aloha_peak() -> float:
    """Max slotted-ALOHA throughput: 1/e at G = 1."""
    return 1.0 / math.e


def contention_success_probability(contenders: int, slots: int) -> float:
    """P[a given slot carries exactly one of n uniform contenders]."""
    if contenders < 0 or slots <= 0:
        raise ValueError("invalid population")
    if contenders == 0:
        return 0.0
    p = 1.0 / slots
    return contenders * p * (1 - p) ** (contenders - 1)


# -- GPS QoS bound -------------------------------------------------------------------


def gps_worst_case_access_delay() -> float:
    """Upper bound on the GPS access delay with one slot per cycle.

    A report arriving immediately after the unit's slot waits one full
    cycle; R3 reassignments only move slots earlier, so the bound is the
    cycle length itself -- strictly below the 4-second requirement.
    """
    return timing.CYCLE_LENGTH


def gps_deadline_margin() -> float:
    """Slack between the worst case and the 4 s requirement: ~15.6 ms."""
    return timing.GPS_DEADLINE - gps_worst_case_access_delay()
