"""Terminal rendering of a recorded timeline (``python -m repro obs``).

Reads the JSONL a :class:`~repro.obs.timeline.TimelineRecorder` wrote
(directly or via ``--metrics``), optionally filters it down to one
(load, seed) group of a merged sweep timeline, and renders per-series
ASCII charts plus the run-level digest -- including the independent
verdict on the paper's 4-second GPS access guarantee.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.plots import ascii_chart

#: Series charted when the user does not pick columns.
DEFAULT_COLUMNS = (
    "uplink_queue_depth",
    "reservation_backlog",
    "slot_utilization",
    "uplink_collisions",
    "gps_min_margin_s",
)

#: Keys that label a merged sweep timeline rather than measure it.
LABEL_KEYS = ("load", "seed")


def filter_records(records: List[Dict[str, Any]],
                   where: Dict[str, str]) -> List[Dict[str, Any]]:
    """Keep records whose fields match every ``key=value`` filter.

    Values compare as strings so ``load=0.5`` matches the float 0.5.
    """
    def matches(record: Dict[str, Any]) -> bool:
        for key, value in where.items():
            if str(record.get(key)) != value:
                return False
        return True

    return [record for record in records if matches(record)]


def groups_of(records: List[Dict[str, Any]]
              ) -> List[Tuple[Tuple[str, Any], ...]]:
    """Distinct (label, value) coordinates present in the records."""
    seen: List[Tuple[Tuple[str, Any], ...]] = []
    for record in records:
        coordinate = tuple((key, record[key]) for key in LABEL_KEYS
                           if key in record)
        if coordinate and coordinate not in seen:
            seen.append(coordinate)
    return seen


def series_summary(values: Sequence[float]) -> str:
    count = len(values)
    mean = sum(values) / count
    return (f"min={min(values):.4g}  mean={mean:.4g}  "
            f"max={max(values):.4g}  n={count}")


def render_timeline(records: List[Dict[str, Any]],
                    columns: Optional[Sequence[str]] = None,
                    width: int = 64, height: int = 10) -> str:
    """The full terminal report for one timeline."""
    if not records:
        return "timeline: no records"
    lines: List[str] = []

    groups = groups_of(records)
    if len(groups) > 1:
        first = groups[0]
        label = ", ".join(f"{key}={value}" for key, value in first)
        lines.append(
            f"merged sweep timeline with {len(groups)} groups; "
            f"showing {label} (filter with --where KEY=VALUE)")
        others = ", ".join(
            " ".join(f"{key}={value}" for key, value in group)
            for group in groups[1:6])
        lines.append(f"other groups: {others}"
                     + (" ..." if len(groups) > 6 else ""))
        lines.append("")
        records = filter_records(
            records, {key: str(value) for key, value in first})

    cycles = [record.get("cycle", index)
              for index, record in enumerate(records)]
    span = records[-1].get("time", 0.0)
    lines.append(f"{len(records)} cycles sampled, "
                 f"t = {records[0].get('time', 0.0):.1f}s "
                 f".. {span:.1f}s")

    wanted = list(columns) if columns else list(DEFAULT_COLUMNS)
    for column in wanted:
        pairs = [(cycle, record[column])
                 for cycle, record in zip(cycles, records)
                 if record.get(column) is not None]
        if not pairs:
            lines.append("")
            lines.append(f"-- {column}: no data")
            continue
        xs = [float(cycle) for cycle, _value in pairs]
        ys = [float(value) for _cycle, value in pairs]
        lines.append("")
        lines.append(f"-- {column}  [{series_summary(ys)}]")
        if len(set(ys)) > 1 and len(xs) > 1:
            lines.append(ascii_chart(xs, ys, width=width,
                                     height=height, x_label="cycle",
                                     y_label=column))
        else:
            lines.append(f"   constant at {ys[0]:.4g}")

    lines.append("")
    lines.append(gps_verdict(records))
    return "\n".join(lines)


def timeline_digest(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Machine-readable summary of a timeline (``repro obs --json``)."""
    margins = [record["gps_min_margin_s"] for record in records
               if record.get("gps_min_margin_s") is not None]
    gaps = [record["gps_max_gap_s"] for record in records
            if record.get("gps_max_gap_s") is not None]

    def column_max(name: str) -> Optional[float]:
        values = [record[name] for record in records
                  if record.get(name) is not None]
        return max(values) if values else None

    return {
        "records": len(records),
        "groups": [dict(group) for group in groups_of(records)],
        "gps_min_margin_s": min(margins) if margins else None,
        "gps_max_gap_s": max(gaps) if gaps else None,
        "gps_deadline_held": (min(margins) >= 0.0) if margins
        else None,
        "max_uplink_queue_depth": column_max("uplink_queue_depth"),
        "max_reservation_backlog": column_max("reservation_backlog"),
        "max_forward_backlog": column_max("forward_backlog"),
        "uplink_collisions": sum(
            record.get("uplink_collisions") or 0
            for record in records),
        "invariant_violations": sum(
            record.get("invariant_violations") or 0
            for record in records),
    }


def gps_verdict(records: List[Dict[str, Any]]) -> str:
    """Independent check of the 4s R1-R3 access guarantee."""
    margins = [record["gps_min_margin_s"] for record in records
               if record.get("gps_min_margin_s") is not None]
    if not margins:
        return ("GPS deadline check: no GPS inter-access gaps "
                "recorded")
    worst = min(margins)
    gaps = [record["gps_max_gap_s"] for record in records
            if record.get("gps_max_gap_s") is not None]
    verdict = "HELD" if worst >= 0.0 else "VIOLATED"
    return (f"GPS deadline check: {verdict} -- worst margin "
            f"{worst:.3f}s (longest inter-access gap "
            f"{max(gaps):.3f}s vs 4s deadline, "
            f"{len(margins)} cycles with closed gaps)")
