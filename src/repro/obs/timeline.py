"""Per-cycle timeline recording for one cell run.

:class:`TimelineRecorder` instruments a *built* (not yet run)
:class:`~repro.core.cell.CellRun` through public hooks only -- a
delivery listener on the reverse channel, the base station's
registration hook, and a sampling process on the simulator -- exactly
the contract :class:`~repro.trace.CellTracer` follows, so the protocol
code runs unmodified and results are bit-identical with and without the
recorder.

Once per notification cycle (late in the cycle, after the schedule is
committed) it snapshots the live protocol state into one
:class:`TimelinePoint`: uplink queue depths, reservation backlog,
forward backlog, registration census and churn, slot utilization,
uplink collisions, and -- the paper's headline guarantee -- the GPS
deadline margin (4 s minus the inter-access gap each GPS unit actually
experienced, computed independently from on-air transmissions rather
than from the unit's own bookkeeping).

A timeline is the ground truth behind ``--metrics``: dump it with
:meth:`TimelineRecorder.write_jsonl` and re-render it later with
``python -m repro obs``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.core.cell import CellRun
from repro.core.frames import SLOT_DATA, UplinkFrame
from repro.obs.registry import MetricsRegistry, default_registry
from repro.phy import timing
from repro.phy.channel import Transmission

#: Offset into each cycle at which the sampler runs: after the
#: invariant monitor (0.9) and after most slots have resolved, but
#: before the next cycle's schedule is built.
SAMPLE_OFFSET = 0.95 * timing.CYCLE_LENGTH


@dataclass(frozen=True)
class TimelinePoint:
    """One per-cycle sample of a cell's live state."""

    cycle: int
    time: float
    #: Queued uplink fragments across all data subscribers.
    uplink_queue_depth: int
    #: Deepest single subscriber queue this cycle.
    uplink_queue_max: int
    #: Fragments transmitted but not yet acknowledged.
    inflight_packets: int
    #: Sum of outstanding reverse-slot demands at the base station
    #: (the reservation backlog the round-robin scheduler works off).
    reservation_backlog: int
    #: Queued downlink packets across all forward queues.
    forward_backlog: int
    registered_data: int
    registered_gps: int
    #: Registrations completed during this cycle.
    registrations: int
    #: Liveness-lease evictions during this cycle.
    lease_evictions: int
    #: Reverse-channel transmissions observed this cycle.
    uplink_transmissions: int
    #: Transmissions that collided this cycle.
    uplink_collisions: int
    #: GPS reports heard on the air this cycle.
    gps_reports: int
    #: Uplink data packets received OK this cycle (not warmup-gated).
    data_deliveries: int
    #: Delivered / available reverse data slots (settled cycles only;
    #: the occupancy ledger lags ~2 cycles and is warmup-gated).
    slot_utilization: float
    #: min over GPS units of (deadline - inter-access gap) for gaps
    #: closed this cycle; None when no unit closed a gap.
    gps_min_margin_s: Optional[float]
    #: Longest GPS inter-access gap closed this cycle (None if none).
    gps_max_gap_s: Optional[float]
    #: Invariant-monitor violations recorded this cycle.
    invariant_violations: int

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


class _Deltas:
    """Per-cycle deltas over monotonically growing counters."""

    def __init__(self) -> None:
        self._last: Dict[str, float] = {}

    def step(self, name: str, value: float) -> float:
        delta = value - self._last.get(name, 0.0)
        self._last[name] = value
        return delta


class TimelineRecorder:
    """Samples one cell once per notification cycle."""

    def __init__(self, run: CellRun,
                 registry: Optional[MetricsRegistry] = None,
                 max_points: int = 1_000_000,
                 metric_labels: Optional[Dict[str, str]] = None):
        self.run = run
        self.deadline = run.config.gps_deadline
        self.max_points = max_points
        self.points: List[TimelinePoint] = []
        self.dropped = 0
        self._deltas = _Deltas()
        #: Per-GPS-sender time of the last on-air report.
        self._gps_last_tx: Dict[str, float] = {}
        #: Longest inter-access gap ever closed, per GPS sender.
        self.gps_max_gap_by_unit: Dict[str, float] = {}
        # Per-cycle accumulators, reset at each sample.
        self._cycle_gps_reports = 0
        self._cycle_gps_margins: List[float] = []
        self._cycle_data_deliveries = 0
        self._cycle_registrations = 0

        self._metrics = _TimelineMetrics(
            registry if registry is not None else default_registry(),
            labels=metric_labels)

        run.base_station.reverse.add_listener(self._on_reverse)
        self._chain_registration_hook(run)
        run.sim.process(self._sample_loop(),
                        name="timeline-recorder")

    # -- hooks ------------------------------------------------------------

    def _chain_registration_hook(self, run: CellRun) -> None:
        previous = run.base_station.on_registration

        def hook(record):
            self._cycle_registrations += 1
            if previous is not None:
                previous(record)

        run.base_station.on_registration = hook

    def _on_reverse(self, transmission: Transmission, ok: bool) -> None:
        frame: UplinkFrame = transmission.payload
        if frame.slot_kind != SLOT_DATA:
            # A GPS report on the air is an *access*: the 4-second QoS
            # clock measures gaps between consecutive accesses, so the
            # margin is computed from transmission start times alone
            # (collisions and channel loss do not extend the gap).
            self._cycle_gps_reports += 1
            sender = str(transmission.sender)
            last = self._gps_last_tx.get(sender)
            if last is not None:
                gap = transmission.start - last
                self._cycle_gps_margins.append(self.deadline - gap)
                if gap > self.gps_max_gap_by_unit.get(sender, 0.0):
                    self.gps_max_gap_by_unit[sender] = gap
            self._gps_last_tx[sender] = transmission.start
            return
        if ok and frame.kind == "data":
            self._cycle_data_deliveries += 1

    # -- sampling ---------------------------------------------------------

    def _sample_loop(self):
        yield self.run.sim.timeout(SAMPLE_OFFSET)
        while True:
            self._sample()
            yield self.run.sim.timeout(timing.CYCLE_LENGTH)

    def _sample(self) -> None:
        run = self.run
        bs = run.base_station
        stats = run.stats
        step = self._deltas.step

        queue_depths = [len(sub.queue) for sub in run.data_users]
        inflight = sum(len(sub.inflight) for sub in run.data_users)
        backlog = sum(bs.demands.values())
        forward_backlog = sum(len(queue)
                              for queue in bs.forward_queues.values())

        slots_used = step("slots_used",
                          stats.reverse_data_slots_used)
        slots_total = step("slots_total",
                           stats.reverse_data_slots_total)
        margins = self._cycle_gps_margins
        point = TimelinePoint(
            cycle=bs.cycle,
            time=run.sim.now,
            uplink_queue_depth=sum(queue_depths),
            uplink_queue_max=max(queue_depths, default=0),
            inflight_packets=inflight,
            reservation_backlog=backlog,
            forward_backlog=forward_backlog,
            registered_data=bs.registration.active_data,
            registered_gps=bs.registration.active_gps,
            registrations=self._cycle_registrations,
            lease_evictions=int(step("lease_evictions",
                                     stats.lease_evictions)),
            uplink_transmissions=int(step(
                "uplink_tx", bs.reverse.total_transmissions)),
            uplink_collisions=int(step(
                "uplink_collisions", bs.reverse.total_collisions)),
            gps_reports=self._cycle_gps_reports,
            data_deliveries=self._cycle_data_deliveries,
            slot_utilization=(slots_used / slots_total
                              if slots_total else 0.0),
            gps_min_margin_s=min(margins) if margins else None,
            gps_max_gap_s=(self.deadline - min(margins)
                           if margins else None),
            invariant_violations=int(step(
                "invariant_violations", stats.invariant_violations)),
        )
        self._cycle_gps_reports = 0
        self._cycle_gps_margins = []
        self._cycle_data_deliveries = 0
        self._cycle_registrations = 0
        if len(self.points) >= self.max_points:
            self.dropped += 1
        else:
            self.points.append(point)
        self._metrics.publish(point)

    # -- reporting --------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        return [point.to_dict() for point in self.points]

    def summary(self) -> Dict[str, object]:
        """Run-level digest of the recorded timeline."""
        margins = [point.gps_min_margin_s for point in self.points
                   if point.gps_min_margin_s is not None]
        gaps = [point.gps_max_gap_s for point in self.points
                if point.gps_max_gap_s is not None]
        depths = [point.uplink_queue_depth for point in self.points]
        backlogs = [point.reservation_backlog
                    for point in self.points]
        count = len(self.points)
        return {
            "cycles_sampled": count,
            "points_dropped": self.dropped,
            "gps_min_margin_s": min(margins) if margins else None,
            "gps_max_gap_s": max(gaps) if gaps else None,
            "gps_deadline_s": self.deadline,
            #: True iff every observed inter-access gap met the
            #: deadline -- the independent check of the R1-R3 claim.
            "gps_deadline_held": (min(margins) >= 0.0
                                  if margins else None),
            "max_uplink_queue_depth": max(depths, default=0),
            "mean_uplink_queue_depth": (sum(depths) / count
                                        if count else 0.0),
            "max_reservation_backlog": max(backlogs, default=0),
            "uplink_collisions": sum(point.uplink_collisions
                                     for point in self.points),
            "registrations": sum(point.registrations
                                 for point in self.points),
            "lease_evictions": sum(point.lease_evictions
                                   for point in self.points),
            "invariant_violations": sum(point.invariant_violations
                                        for point in self.points),
        }

    def write_jsonl(self, path: str,
                    labels: Optional[Dict[str, object]] = None) -> int:
        """Dump the timeline as JSON lines; returns the point count."""
        from repro.obs.export import write_jsonl

        records = self.to_dicts()
        if labels:
            records = [dict(record, **labels) for record in records]
        return write_jsonl(path, records)

    def write_csv(self, path: str) -> int:
        from repro.obs.export import write_csv

        return write_csv(path, self.to_dicts())


class _TimelineMetrics:
    """Publishes each sample into a metrics registry.

    Children are fetched at publish time, so a disabled registry costs
    a handful of no-op calls per cycle and an enabled one reflects the
    live run (gauges track the latest cycle; counters accumulate).

    ``labels`` (e.g. ``{"cell": "cell0"}``) prefix every family's label
    set, letting several recorders -- the service mode runs one per
    cell -- share a registry without colliding.  With no labels the
    families are label-less, exactly as before.
    """

    def __init__(self, registry: MetricsRegistry,
                 labels: Optional[Dict[str, str]] = None):
        self.registry = registry
        labels = dict(labels or {})
        self._names = tuple(labels)
        self._values = tuple(str(value) for value in labels.values())

    def _gauge(self, name: str, help: str):
        return self.registry.gauge(name, help, self._names) \
            .labels(*self._values)

    def _counter(self, name: str, help: str):
        return self.registry.counter(name, help, self._names) \
            .labels(*self._values)

    def publish(self, point: TimelinePoint) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        self._gauge(
            "osu_cycle", "Current notification cycle").set(point.cycle)
        self._gauge(
            "osu_uplink_queue_depth",
            "Queued uplink fragments across data subscribers",
        ).set(point.uplink_queue_depth)
        self._gauge(
            "osu_reservation_backlog",
            "Outstanding reverse-slot demands at the base station",
        ).set(point.reservation_backlog)
        self._gauge(
            "osu_forward_backlog",
            "Queued downlink packets").set(point.forward_backlog)
        registered = registry.gauge(
            "osu_registered_users", "Registered subscribers",
            self._names + ("service",))
        registered.labels(*(self._values + ("data",))) \
            .set(point.registered_data)
        registered.labels(*(self._values + ("gps",))) \
            .set(point.registered_gps)
        self._gauge(
            "osu_slot_utilization",
            "Reverse data slots used / available (settled cycles)",
        ).set(point.slot_utilization)
        self._counter(
            "osu_uplink_collisions_total",
            "Reverse-channel collisions").inc(point.uplink_collisions)
        self._counter(
            "osu_registrations_total",
            "Registrations completed").inc(point.registrations)
        self._counter(
            "osu_lease_evictions_total",
            "Liveness-lease evictions").inc(point.lease_evictions)
        if point.gps_min_margin_s is not None:
            registry.histogram(
                "osu_gps_deadline_margin_seconds",
                "4s deadline minus observed GPS inter-access gap",
                self._names,
                buckets=(0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
            ).labels(*self._values).observe(point.gps_min_margin_s)
            self._gauge(
                "osu_gps_min_margin_seconds",
                "Worst GPS deadline margin this cycle",
            ).set(point.gps_min_margin_s)
