"""Unified observability: metrics, timelines, profiling, exporters.

The paper's claims are temporal -- GPS inter-access gaps bounded by the
4-second deadline under R1-R3 slot reassignment, reservation backlog
under contention, utilization vs. load -- so this package provides the
three views a serving stack needs to *watch* a run instead of only
summarizing it afterwards:

* :mod:`~repro.obs.registry` -- a low-overhead metrics registry
  (Counter/Gauge/Histogram with label sets, process-global default,
  near-zero cost when disabled) that the engine's telemetry and the
  faults invariant monitor publish into.
* :mod:`~repro.obs.timeline` -- a per-cycle timeline recorder that
  instruments a built :class:`~repro.core.cell.CellRun` through public
  hooks only (like :class:`~repro.trace.CellTracer`) and samples queue
  depths, slot utilization, uplink collisions, GPS deadline margins,
  reservation backlog, and registration churn once per notification
  cycle.
* :mod:`~repro.obs.profiler` -- scoped wall-clock timers around the
  simulator event loop, channel delivery, and scheduler build,
  aggregated into a self-profile table (``--profile``).
* :mod:`~repro.obs.export` -- JSONL/CSV writers, Prometheus text
  exposition, and per-run manifests (config hash, seed, git revision,
  :class:`~repro.engine.policy.RunPolicy`).
* :mod:`~repro.obs.render` -- terminal rendering of a recorded
  timeline (the ``python -m repro obs`` subcommand).
"""

from repro.obs.export import (
    build_manifest,
    sidecar_paths,
    to_prometheus,
    write_csv,
    write_jsonl,
    write_manifest,
)
from repro.obs.profiler import PROFILER, Profiler, instrument_cell
from repro.obs.registry import (
    NULL_CHILD,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.timeline import TimelinePoint, TimelineRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_CHILD",
    "PROFILER",
    "Profiler",
    "TimelinePoint",
    "TimelineRecorder",
    "build_manifest",
    "default_registry",
    "instrument_cell",
    "set_default_registry",
    "sidecar_paths",
    "to_prometheus",
    "write_csv",
    "write_jsonl",
    "write_manifest",
]
