"""Exporters and run manifests.

Three wire formats for everything the observability layer records:

* **JSONL** -- one JSON object per line; the timeline format
  ``python -m repro obs`` reads back.
* **CSV** -- flat tables for spreadsheets/plotting.
* **Prometheus text exposition** -- a scrape-compatible snapshot of a
  :class:`~repro.obs.registry.MetricsRegistry`.

Plus the **run manifest**: a sidecar JSON file recording what produced
a metrics artifact -- config content hash, seeds, git revision, code
fingerprint, the resolved :class:`~repro.engine.policy.RunPolicy`, the
interpreter, and the command line -- so a timeline on disk is traceable
to the exact run that wrote it.

``--metrics PATH`` writes the timeline to ``PATH`` and derives sidecar
paths from it (see :func:`sidecar_paths`): ``<base>.manifest.json``,
``<base>.prom``, ``<base>.profile.json``.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.obs.registry import HistogramChild, MetricsRegistry

MANIFEST_SCHEMA = "repro/manifest@1"


# -- row writers -----------------------------------------------------------


def write_jsonl(path: str, records: Iterable[Mapping]) -> int:
    """Write one JSON object per line; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL file (tolerating a torn final line)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail (e.g. the run was killed mid-write)
    return records


def write_csv(path: str, records: Iterable[Mapping],
              fieldnames: Optional[List[str]] = None) -> int:
    """Write dict records as CSV; returns the record count.

    Field names default to the union of keys across all records, in
    first-seen order, so heterogeneous rows still land in one table.
    """
    rows = [dict(record) for record in records]
    if fieldnames is None:
        fieldnames = []
        for row in rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames,
                                restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "")
                             for key in fieldnames})
    return len(rows)


# -- Prometheus text exposition --------------------------------------------


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _label_str(names, values, extra: str = "") -> str:
    parts = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format (v0.0.4)."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.children():
            if isinstance(child, HistogramChild):
                cumulative = child.cumulative()
                for index, bound in enumerate(child.buckets):
                    labels = _label_str(
                        family.labelnames, values,
                        extra=f'le="{_format_value(bound)}"')
                    lines.append(f"{family.name}_bucket{labels} "
                                 f"{cumulative[index]}")
                labels = _label_str(family.labelnames, values,
                                    extra='le="+Inf"')
                lines.append(f"{family.name}_bucket{labels} "
                             f"{cumulative[-1]}")
                plain = _label_str(family.labelnames, values)
                lines.append(f"{family.name}_sum{plain} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{family.name}_count{plain} "
                             f"{child.count}")
            else:
                labels = _label_str(family.labelnames, values)
                lines.append(f"{family.name}{labels} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(registry))


# -- run manifests ---------------------------------------------------------


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.getcwd(), capture_output=True, text=True,
            timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def config_digest(config: Any) -> str:
    """Content hash of any config object (stable across processes)."""
    from repro.engine.hashing import canonical

    payload = json.dumps(canonical(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_manifest(kind: str,
                   config: Any = None,
                   policy: Any = None,
                   argv: Optional[List[str]] = None,
                   extra: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Everything needed to trace a metrics artifact back to its run."""
    from repro.engine.hashing import canonical, code_fingerprint

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "argv": list(argv if argv is not None else sys.argv),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "git_revision": git_revision(),
        "code_fingerprint": code_fingerprint(),
    }
    if config is not None:
        manifest["config_sha256"] = config_digest(config)
        manifest["config"] = canonical(config)
        seed = getattr(config, "seed", None)
        if seed is not None:
            manifest["seed"] = seed
    if policy is not None:
        manifest["policy"] = canonical(policy)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def sidecar_paths(metrics_path: str) -> Dict[str, str]:
    """Derived artifact paths for one ``--metrics PATH`` run."""
    base, ext = os.path.splitext(metrics_path)
    if ext not in (".jsonl", ".json", ".csv"):
        base = metrics_path
    return {
        "timeline": metrics_path,
        "manifest": base + ".manifest.json",
        "prometheus": base + ".prom",
        "profile": base + ".profile.json",
    }
