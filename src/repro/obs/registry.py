"""A low-overhead metrics registry: Counter, Gauge, Histogram.

Modelled on the Prometheus client-library data model but dependency-free
and tuned for a simulator: a :class:`MetricsRegistry` holds metric
*families* (one per name), each family holds *children* (one per label
value combination), and children expose the mutation verbs
(``inc``/``set``/``observe``).

Cost discipline: publishing sites fetch children through
``registry.counter(...).labels(...)`` at publish time.  When the
registry is *disabled*, ``labels()`` returns the shared
:data:`NULL_CHILD` singleton whose verbs are empty methods -- the entire
instrumentation path collapses to a couple of dictionary lookups and
no-op calls, so always-on publishing sites (engine telemetry, the
invariant monitor) are effectively free unless someone asked for
metrics.  The process-global default registry starts *disabled*; the
CLIs enable it under ``--metrics``.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds (sim quantities are seconds).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class _NullChild:
    """Shared no-op child handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The singleton every ``labels()`` call on a disabled registry returns.
NULL_CHILD = _NullChild()


class CounterChild:
    """A monotonically increasing count for one label combination."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc {amount})")
        self.value += amount


class GaugeChild:
    """A settable value for one label combination."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramChild:
    """Bucketed observations for one label combination."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last bucket is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Cumulative per-bucket counts, Prometheus style (ends +Inf)."""
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out


class MetricFamily:
    """One named metric with zero or more labelled children."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str, labelnames: Tuple[str, ...]):
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: Dict[Tuple[str, ...], object] = {}

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values, **labelvalues):
        """The child for one label combination (created on first use).

        Accepts either positional values in ``labelnames`` order or
        keyword arguments.  On a disabled registry this returns the
        shared :data:`NULL_CHILD` no-op.
        """
        if not self.registry.enabled:
            return NULL_CHILD
        if values and labelvalues:
            raise ValueError("pass label values either positionally "
                             "or by keyword, not both")
        if labelvalues:
            try:
                values = tuple(str(labelvalues[name])
                               for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name}: missing label {exc}") from None
            if len(labelvalues) != len(self.labelnames):
                extra = set(labelvalues) - set(self.labelnames)
                raise ValueError(f"{self.name}: unknown labels {extra}")
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {values}")
        child = self._children.get(values)
        if child is None:
            with self.registry._lock:
                child = self._children.setdefault(
                    values, self._new_child())
        return child

    # Label-less convenience verbs (delegate to the single child).

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in sorted label order."""
        for key in sorted(self._children):
            yield key, self._children[key]


class Counter(MetricFamily):
    kind = "counter"

    def _new_child(self) -> CounterChild:
        return CounterChild()


class Gauge(MetricFamily):
    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        return GaugeChild()


class Histogram(MetricFamily):
    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str, labelnames: Tuple[str, ...],
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self.buckets)


class MetricsRegistry:
    """A set of metric families, addressable by name.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call registers the family, later calls return it (and raise if the
    kind or label names disagree -- a misuse, not a race).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every family (children and all)."""
        with self._lock:
            self._families.clear()

    # -- family construction ----------------------------------------------

    def _family(self, cls, name: str, help: str,
                labelnames: Sequence[str], **kwargs) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = tuple(labelnames)
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls) \
                    or existing.labelnames != labels:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}")
            return existing
        with self._lock:
            existing = self._families.get(name)
            if existing is None:
                existing = cls(self, name, help, labels, **kwargs)
                self._families[name] = existing
        return existing

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._family(Histogram, name, help, labelnames,
                            buckets=buckets)

    # -- introspection / export -------------------------------------------

    def families(self) -> List[MetricFamily]:
        return [self._families[name]
                for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def rows(self) -> List[Dict[str, object]]:
        """Flat, JSON-serializable samples (one dict per child).

        Counters and gauges carry ``value``; histograms carry ``sum``,
        ``count``, and a ``buckets`` map of upper-bound -> cumulative
        count (the ``inf`` key is the total).
        """
        out: List[Dict[str, object]] = []
        for family in self.families():
            for values, child in family.children():
                row: Dict[str, object] = {
                    "name": family.name,
                    "kind": family.kind,
                    "labels": dict(zip(family.labelnames, values)),
                }
                if isinstance(child, HistogramChild):
                    cumulative = child.cumulative()
                    row["sum"] = child.sum
                    row["count"] = child.count
                    row["buckets"] = {
                        **{str(bound): cumulative[index]
                           for index, bound
                           in enumerate(child.buckets)},
                        "inf": cumulative[-1],
                    }
                else:
                    row["value"] = child.value
                out.append(row)
        return out


#: The process-global registry: disabled until a CLI asks for metrics.
_DEFAULT = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    """The process-global registry always-on publishers write into."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
