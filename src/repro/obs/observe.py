"""Engine-compatible observed cell runs.

:func:`run_cell_observed` is a module-level task function (picklable by
reference, JSON-serializable result) so observed sweeps run through the
normal engine machinery: parallel executors, the result cache, retries
and resume all work unchanged, and the per-cycle timeline rides back to
the parent alongside the summary.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.cell import build_cell, finalize_run
from repro.obs.profiler import Profiler, instrument_cell
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import TimelineRecorder


def observe_cell(config, profile: bool = False,
                 registry: "MetricsRegistry | None" = None
                 ) -> Dict[str, Any]:
    """Build, instrument, and run one cell; returns the observed data.

    The result dict carries ``summary`` (the normal
    :meth:`~repro.metrics.CellStats.summary`), ``timeline`` (one dict
    per sampled cycle), ``obs`` (the timeline digest), and -- when
    ``profile`` is set -- ``profile`` (the self-profile sections).
    """
    run = build_cell(config)
    recorder = TimelineRecorder(run, registry=registry)
    profiler = Profiler() if profile else None
    if profiler is not None:
        instrument_cell(run, profiler)
        with profiler.section("run.total"):
            run.sim.run(until=config.duration)
    else:
        run.sim.run(until=config.duration)
    finalize_run(run)
    result: Dict[str, Any] = {
        "summary": run.stats.summary(),
        "timeline": recorder.to_dicts(),
        "obs": recorder.summary(),
    }
    if profiler is not None:
        result["profile"] = profiler.to_dict()
    return result


def run_cell_observed(payload: Tuple[Any, bool]) -> Dict[str, Any]:
    """Engine task: ``payload`` is ``(CellConfig, profile_flag)``."""
    config, profile = payload
    return observe_cell(config, profile=bool(profile))
