"""Scoped wall-clock profiling: where do simulated seconds go?

A :class:`Profiler` aggregates named sections into a self-profile table
(calls, total seconds, mean/max microseconds, share of the widest
section).  Sections come from three sources:

* ``with profiler.section("name"):`` around any block;
* ``profiler.wrap(fn, "name")`` / ``profiler.instrument(obj, attr)``,
  which shadow a bound method with a timed wrapper on *one instance*
  (the class stays untouched, so un-instrumented runs pay nothing);
* :func:`instrument_cell`, the standard hook set for a built
  :class:`~repro.core.cell.CellRun`: the simulator event loop
  (``sim.step``), reverse/forward channel delivery, and the base
  station's per-cycle schedule build.

Sections *nest* (channel delivery runs inside an event-loop step), so
totals overlap by design -- the table answers "how much wall-clock is
spent under each hook", not "how do disjoint parts sum to 100%".

:data:`PROFILER` is a process-global instance, disabled by default;
the CLIs enable it under ``--profile``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional


class SectionStats:
    """Aggregated timings of one named section."""

    __slots__ = ("calls", "total_s", "max_s")

    def __init__(self, calls: int = 0, total_s: float = 0.0,
                 max_s: float = 0.0):
        self.calls = calls
        self.total_s = total_s
        self.max_s = max_s

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "total_s": self.total_s,
                "max_s": self.max_s}


class Profiler:
    """Aggregates scoped wall-clock timings by section name."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.sections: Dict[str, SectionStats] = {}

    # -- recording --------------------------------------------------------

    def record(self, name: str, seconds: float) -> None:
        stats = self.sections.get(name)
        if stats is None:
            stats = self.sections[name] = SectionStats()
        stats.add(seconds)

    @contextmanager
    def section(self, name: str):
        """Time a block; no-op (single branch) when disabled."""
        if not self.enabled:
            yield self
            return
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.record(name, time.perf_counter() - started)

    def wrap(self, fn: Callable, name: str) -> Callable:
        """A timed wrapper around ``fn`` recording under ``name``."""
        perf_counter = time.perf_counter
        record = self.record

        def timed(*args, **kwargs):
            started = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                record(name, perf_counter() - started)

        timed.__wrapped__ = fn
        return timed

    def instrument(self, obj: object, attr: str,
                   name: Optional[str] = None) -> None:
        """Shadow ``obj.attr`` with a timed wrapper (instance-local)."""
        section = name or f"{type(obj).__name__}.{attr}"
        setattr(obj, attr, self.wrap(getattr(obj, attr), section))

    # -- reporting --------------------------------------------------------

    def reset(self) -> None:
        self.sections = {}

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: stats.to_dict()
                for name, stats in self.sections.items()}

    def merge(self, data: Dict[str, Dict[str, float]]) -> None:
        """Fold another profiler's ``to_dict()`` into this one.

        Used to aggregate per-point profiles collected in worker
        processes into one parent-side table.
        """
        for name, entry in data.items():
            stats = self.sections.get(name)
            if stats is None:
                stats = self.sections[name] = SectionStats()
            stats.calls += int(entry.get("calls", 0))
            stats.total_s += float(entry.get("total_s", 0.0))
            stats.max_s = max(stats.max_s,
                              float(entry.get("max_s", 0.0)))

    def table(self) -> str:
        """The self-profile table, widest section first."""
        if not self.sections:
            return "[profile: no sections recorded]"
        rows: List[List[str]] = []
        widest = max(stats.total_s
                     for stats in self.sections.values()) or 1.0
        ordered = sorted(self.sections.items(),
                         key=lambda item: -item[1].total_s)
        for name, stats in ordered:
            rows.append([
                name,
                str(stats.calls),
                f"{stats.total_s:.4f}",
                f"{stats.mean_s * 1e6:.1f}",
                f"{stats.max_s * 1e6:.1f}",
                f"{stats.total_s / widest * 100:.1f}%",
            ])
        headers = ["section", "calls", "total s", "mean us",
                   "max us", "share"]
        widths = [max(len(row[index]) for row in [headers] + rows)
                  for index in range(len(headers))]
        lines = ["  ".join(header.ljust(width)
                           for header, width in zip(headers, widths))]
        lines.append("  ".join("-" * width for width in widths))
        for row in rows:
            lines.append("  ".join(
                cell.ljust(width)
                for cell, width in zip(row, widths)))
        lines.append("(sections nest: 'share' is relative to the "
                     "widest section, not a partition)")
        return "\n".join(lines)


#: The process-global profiler, enabled by the CLIs under --profile.
PROFILER = Profiler(enabled=False)


def instrument_cell(run, profiler: Profiler) -> None:
    """Attach the standard hook set to a built cell run.

    Wraps, on the run's own instances only: the simulator event loop
    (every :meth:`~repro.sim.core.Simulator.step`), delivery on both
    channels, and the base station's per-cycle schedule build.
    """
    profiler.instrument(run.sim, "step", "sim.event_loop")
    base_station = run.base_station
    profiler.instrument(base_station, "_build_cycle",
                        "scheduler.build_cycle")
    profiler.instrument(base_station.reverse, "_complete",
                        "channel.reverse_delivery")
    profiler.instrument(base_station.forward, "_complete",
                        "channel.forward_delivery")
