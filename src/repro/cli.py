"""Command-line interface for running OSU-MAC simulations.

Usage::

    python -m repro run --load 0.8 --data-users 9 --gps-users 3
    python -m repro network --cells 3 --load 0.4 --handoffs 2
    python -m repro experiments fig8a fig12b --quick --jobs 4
    python -m repro sweep --loads 0.3,0.8,1.1 --seeds 1,2,3 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.cell import run_cell_detailed
from repro.core.config import CellConfig
from repro.phy import timing


def _add_cell_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--load", type=float, default=0.5,
                        help="load index rho (default 0.5)")
    parser.add_argument("--data-users", type=int, default=9)
    parser.add_argument("--gps-users", type=int, default=3)
    parser.add_argument("--cycles", type=int, default=200)
    parser.add_argument("--warmup", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--message-size", choices=("fixed", "uniform"),
                        default="uniform")
    parser.add_argument("--error-model",
                        choices=("perfect", "outage", "iid", "ge"),
                        default="perfect")
    parser.add_argument("--outage-loss", type=float, default=0.01)
    parser.add_argument("--symbol-error-rate", type=float, default=0.005)
    parser.add_argument("--full-fidelity", action="store_true",
                        help="run real RS codewords through the channel")
    parser.add_argument("--forward-load", type=float, default=0.0)
    parser.add_argument("--no-second-cf", action="store_true")
    parser.add_argument("--no-dynamic-adjustment", action="store_true")
    parser.add_argument("--faults", default="",
                        help="fault schedule, e.g. "
                             "'crash:data-0@40;restart:data-0@52;"
                             "fade:gps-*@60+4*0.9'")
    parser.add_argument("--lease", type=int, default=0, metavar="CYCLES",
                        help="liveness lease: deregister subscribers "
                             "silent for CYCLES cycles (0 = off)")
    parser.add_argument("--check-invariants", action="store_true",
                        help="run the per-cycle protocol invariant "
                             "monitor (repro.faults.invariants)")
    parser.add_argument("--json", action="store_true",
                        help="print the summary as JSON")


def _cell_config(args: argparse.Namespace) -> CellConfig:
    from repro.faults.schedule import parse_faults

    return CellConfig(
        faults=parse_faults(args.faults) if args.faults else (),
        liveness_lease_cycles=args.lease,
        check_invariants=args.check_invariants,
        num_data_users=args.data_users,
        num_gps_users=args.gps_users,
        load_index=args.load,
        message_size=args.message_size,
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        seed=args.seed,
        error_model=args.error_model,
        outage_loss=args.outage_loss,
        symbol_error_rate=args.symbol_error_rate,
        full_fidelity=args.full_fidelity,
        forward_load_index=args.forward_load,
        use_second_cf=not args.no_second_cf,
        dynamic_slot_adjustment=not args.no_dynamic_adjustment)


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="per-point wall-clock limit in seconds "
                             "(parallel executor; REPRO_TIMEOUT)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="extra attempts for failed or timed-out "
                             "points (REPRO_RETRIES)")
    parser.add_argument("--resume", action="store_true",
                        help="checkpoint the grid to a journal and "
                             "resume an interrupted run "
                             "(REPRO_RESUME=1)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first exhausted point "
                             "(REPRO_FAIL_FAST=1)")


def _command_run(args: argparse.Namespace) -> int:
    config = _cell_config(args)
    run = run_cell_detailed(config)
    stats = run.stats
    if args.json:
        print(json.dumps(stats.summary(), indent=2))
        return 0
    print(f"simulated {config.cycles} cycles "
          f"({config.duration:.0f} s) at rho={config.load_index}")
    for key, value in stats.summary().items():
        print(f"  {key:34s} {value:.4g}")
    print(f"  registrations                      "
          f"{stats.registrations_completed}")
    return 0


def _command_network(args: argparse.Namespace) -> int:
    from repro.network import MultiCellConfig, build_network

    cell = CellConfig(num_data_users=args.data_users,
                      num_gps_users=args.gps_users,
                      load_index=0.0,
                      cycles=args.cycles,
                      warmup_cycles=args.warmup,
                      seed=args.seed)
    config = MultiCellConfig(num_cells=args.cells, cell=cell,
                             load_index=args.load,
                             inter_cell_fraction=args.inter_cell,
                             seed=args.seed)
    network = build_network(config)
    for index in range(args.handoffs):
        source = index % args.cells
        mover = network.cells[source].data_users[0]
        target = (source + 1) % args.cells
        when = (args.warmup + 20 + 25 * index) * timing.CYCLE_LENGTH
        network.handoff(mover.ein, target, at_time=when)
    stats = network.run()
    payload = {
        "messages_routed": stats.messages_routed,
        "messages_forwarded": stats.messages_forwarded,
        "end_to_end_delay_mean_s": stats.end_to_end_delay.mean,
        "handoffs_completed": stats.handoffs_completed,
        "backbone_bytes": network.backbone.total_bytes,
        "cells": [cell_run.stats.summary()
                  for cell_run in network.cells],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.cells} cells, {stats.messages_routed} messages routed "
          f"({stats.messages_forwarded} over the backbone), "
          f"{stats.handoffs_completed} handoffs")
    print(f"end-to-end delay: {stats.end_to_end_delay.mean:.1f} s mean")
    for index, cell_run in enumerate(network.cells):
        cell_stats = cell_run.stats
        print(f"  cell {index}: util="
              f"{cell_stats.utilization():.3f} "
              f"violations={int(cell_stats.radio_violations)} "
              f"gps_misses={cell_stats.gps_deadline_misses}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    forwarded: List[str] = list(args.names)
    if args.quick:
        forwarded.append("--quick")
    if args.list:
        forwarded.append("--list")
    if args.jobs is not None:
        forwarded.extend(["--jobs", str(args.jobs)])
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.timeout is not None:
        forwarded.extend(["--timeout", str(args.timeout)])
    if args.retries is not None:
        forwarded.extend(["--retries", str(args.retries)])
    if args.resume:
        forwarded.append("--resume")
    if args.fail_fast:
        forwarded.append("--fail-fast")
    return experiments_main(forwarded)


def _command_sweep(args: argparse.Namespace) -> int:
    """An ad-hoc engine load sweep straight from the command line."""
    from repro.engine import (
        PointFailureError,
        resolve_policy,
        telemetry,
    )
    from repro.experiments.runner import PAPER_LOADS, sweep_loads

    try:
        loads = (tuple(float(item) for item in args.loads.split(","))
                 if args.loads else PAPER_LOADS)
        seeds = tuple(int(item) for item in args.seeds.split(","))
    except ValueError:
        print("sweep: --loads/--seeds must be comma-separated numbers, "
              f"got --loads {args.loads!r} --seeds {args.seeds!r}",
              file=sys.stderr)
        return 2
    policy = resolve_policy(
        timeout_s=args.timeout, retries=args.retries,
        resume=args.resume or None,
        fail_fast=args.fail_fast or None)
    telemetry.reset()
    try:
        points = sweep_loads(
            loads=loads, seeds=seeds,
            num_data_users=args.data_users,
            num_gps_users=args.gps_users,
            cycles=args.cycles, warmup_cycles=args.warmup,
            jobs=args.jobs, cache=False if args.no_cache else None,
            policy=policy)
    except PointFailureError as error:
        print(f"sweep aborted by --fail-fast: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(points, indent=2))
    else:
        for point in points:
            print(f"rho={point['load']:<5g} "
                  f"util={point['utilization']:.3f} "
                  f"delay={point['mean_message_delay_cycles']:.2f}cy "
                  f"loss={point['message_loss_rate']:.3f} "
                  f"fairness={point['fairness']:.3f}")
    print(telemetry.format(), file=sys.stderr)
    failures = telemetry.failures
    if failures:
        print(json.dumps({"failed_points": [failure.to_json()
                                            for failure in failures]},
                         indent=2), file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="OSU-MAC reproduction: simulate cells, networks, "
                    "and regenerate the paper's evaluation.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="simulate one cell and print its metrics")
    _add_cell_arguments(run_parser)
    run_parser.set_defaults(handler=_command_run)

    network_parser = subparsers.add_parser(
        "network", help="simulate a multi-cell network with handoffs")
    network_parser.add_argument("--cells", type=int, default=2)
    network_parser.add_argument("--load", type=float, default=0.4)
    network_parser.add_argument("--inter-cell", type=float, default=0.5)
    network_parser.add_argument("--data-users", type=int, default=6)
    network_parser.add_argument("--gps-users", type=int, default=2)
    network_parser.add_argument("--cycles", type=int, default=150)
    network_parser.add_argument("--warmup", type=int, default=20)
    network_parser.add_argument("--handoffs", type=int, default=0)
    network_parser.add_argument("--seed", type=int, default=1)
    network_parser.add_argument("--json", action="store_true")
    network_parser.set_defaults(handler=_command_network)

    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures")
    experiments_parser.add_argument("names", nargs="*")
    experiments_parser.add_argument("--quick", action="store_true")
    experiments_parser.add_argument("--list", action="store_true")
    experiments_parser.add_argument("--jobs", type=int, default=None)
    experiments_parser.add_argument("--no-cache", action="store_true")
    _add_resilience_arguments(experiments_parser)
    experiments_parser.set_defaults(handler=_command_experiments)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a load sweep on the engine and print points")
    sweep_parser.add_argument("--loads", default="",
                              help="comma-separated load indices "
                                   "(default: the paper's sweep)")
    sweep_parser.add_argument("--seeds", default="1,2,3",
                              help="comma-separated seeds")
    sweep_parser.add_argument("--data-users", type=int, default=9)
    sweep_parser.add_argument("--gps-users", type=int, default=2)
    sweep_parser.add_argument("--cycles", type=int, default=200)
    sweep_parser.add_argument("--warmup", type=int, default=30)
    sweep_parser.add_argument("--jobs", type=int, default=None)
    sweep_parser.add_argument("--no-cache", action="store_true")
    _add_resilience_arguments(sweep_parser)
    sweep_parser.add_argument("--json", action="store_true")
    sweep_parser.set_defaults(handler=_command_sweep)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
