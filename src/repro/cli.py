"""Command-line interface for running OSU-MAC simulations.

Usage::

    python -m repro run --load 0.8 --data-users 9 --gps-users 3
    python -m repro run --metrics out.jsonl --profile --trace trace.jsonl
    python -m repro network --cells 3 --load 0.4 --handoffs 2
    python -m repro city --demo --jobs 4
    python -m repro experiments fig8a fig12b --quick --jobs 4
    python -m repro sweep --loads 0.3,0.8,1.1 --seeds 1,2,3 --jobs 4
    python -m repro sweep --metrics out.jsonl --profile
    python -m repro serve --cells 2 --duration 30 --port 8080
    python -m repro fuzz --campaign-seed 7 --budget 50 --jobs 4
    python -m repro fuzz replay tests/fuzz_corpus/some-entry.json
    python -m repro obs out.jsonl --where load=0.8
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.cell import run_cell_detailed
from repro.core.config import CellConfig
from repro.phy import timing


def _add_cell_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--load", type=float, default=0.5,
                        help="load index rho (default 0.5)")
    parser.add_argument("--data-users", type=int, default=9)
    parser.add_argument("--gps-users", type=int, default=3)
    parser.add_argument("--cycles", type=int, default=200)
    parser.add_argument("--warmup", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--message-size", choices=("fixed", "uniform"),
                        default="uniform")
    parser.add_argument("--error-model",
                        choices=("perfect", "outage", "iid", "ge"),
                        default="perfect")
    parser.add_argument("--outage-loss", type=float, default=0.01)
    parser.add_argument("--symbol-error-rate", type=float, default=0.005)
    parser.add_argument("--full-fidelity", action="store_true",
                        help="run real RS codewords through the channel")
    parser.add_argument("--forward-load", type=float, default=0.0)
    parser.add_argument("--no-second-cf", action="store_true")
    parser.add_argument("--no-dynamic-adjustment", action="store_true")
    parser.add_argument("--faults", default="",
                        help="fault schedule, e.g. "
                             "'crash:data-0@40;restart:data-0@52;"
                             "fade:gps-*@60+4*0.9'")
    parser.add_argument("--lease", type=int, default=0, metavar="CYCLES",
                        help="liveness lease: deregister subscribers "
                             "silent for CYCLES cycles (0 = off)")
    parser.add_argument("--check-invariants", action="store_true",
                        help="run the per-cycle protocol invariant "
                             "monitor (repro.faults.invariants)")
    parser.add_argument("--json", action="store_true",
                        help="print the summary as JSON")


def _cell_config(args: argparse.Namespace) -> CellConfig:
    from repro.faults.schedule import parse_faults

    return CellConfig(
        faults=parse_faults(args.faults) if args.faults else (),
        liveness_lease_cycles=args.lease,
        check_invariants=args.check_invariants,
        num_data_users=args.data_users,
        num_gps_users=args.gps_users,
        load_index=args.load,
        message_size=args.message_size,
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        seed=args.seed,
        error_model=args.error_model,
        outage_loss=args.outage_loss,
        symbol_error_rate=args.symbol_error_rate,
        full_fidelity=args.full_fidelity,
        forward_load_index=args.forward_load,
        use_second_cf=not args.no_second_cf,
        dynamic_slot_adjustment=not args.no_dynamic_adjustment)


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="per-point wall-clock limit in seconds "
                             "(parallel executor; REPRO_TIMEOUT)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="extra attempts for failed or timed-out "
                             "points (REPRO_RETRIES)")
    parser.add_argument("--resume", action="store_true",
                        help="checkpoint the grid to a journal and "
                             "resume an interrupted run "
                             "(REPRO_RESUME=1)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first exhausted point "
                             "(REPRO_FAIL_FAST=1)")


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="record a per-cycle timeline to PATH "
                             "(JSONL) plus manifest and Prometheus "
                             "sidecars")
    parser.add_argument("--profile", action="store_true",
                        help="time the simulator hot paths and print "
                             "a self-profile table to stderr")


def _instrumented_run(config: CellConfig, args: argparse.Namespace):
    """``run_cell_detailed`` with trace/timeline/profile attached."""
    from repro.core.cell import build_cell, finalize_run
    from repro.obs.export import (
        build_manifest,
        sidecar_paths,
        write_manifest,
        write_prometheus,
    )
    from repro.obs.profiler import Profiler, instrument_cell
    from repro.obs.registry import default_registry
    from repro.obs.timeline import TimelineRecorder
    from repro.trace import CellTracer

    registry = default_registry()
    if args.metrics:
        registry.enable()
    run = build_cell(config)
    tracer = CellTracer(run) if args.trace else None
    recorder = (TimelineRecorder(run, registry=registry)
                if args.metrics else None)
    profiler = Profiler() if args.profile else None
    if profiler is not None:
        instrument_cell(run, profiler)
        with profiler.section("run.total"):
            run.sim.run(until=config.duration)
    else:
        run.sim.run(until=config.duration)
    finalize_run(run)

    if tracer is not None:
        count = tracer.write_jsonl(args.trace)
        print(f"[trace] {count} events -> {args.trace}",
              file=sys.stderr)
    if recorder is not None:
        paths = sidecar_paths(args.metrics)
        count = recorder.write_jsonl(paths["timeline"])
        manifest = build_manifest(
            "run", config=config, argv=sys.argv[1:],
            extra={"obs": recorder.summary()})
        write_manifest(paths["manifest"], manifest)
        write_prometheus(paths["prometheus"], registry)
        print(f"[metrics] {count} cycles -> {paths['timeline']} "
              f"(manifest: {paths['manifest']}, "
              f"prometheus: {paths['prometheus']})", file=sys.stderr)
    if profiler is not None:
        if args.metrics:
            paths = sidecar_paths(args.metrics)
            with open(paths["profile"], "w", encoding="utf-8") as f:
                json.dump(profiler.to_dict(), f, indent=2)
                f.write("\n")
        print(profiler.table(), file=sys.stderr)
    return run


def _command_run(args: argparse.Namespace) -> int:
    config = _cell_config(args)
    if args.trace or args.metrics or args.profile:
        run = _instrumented_run(config, args)
    else:
        run = run_cell_detailed(config)
    stats = run.stats
    if args.json:
        print(json.dumps(stats.summary(), indent=2))
        return 0
    print(f"simulated {config.cycles} cycles "
          f"({config.duration:.0f} s) at rho={config.load_index}")
    for key, value in stats.summary().items():
        print(f"  {key:34s} {value:.4g}")
    print(f"  registrations                      "
          f"{stats.registrations_completed}")
    return 0


def _command_network(args: argparse.Namespace) -> int:
    from repro.network import MultiCellConfig, build_network

    cell = CellConfig(num_data_users=args.data_users,
                      num_gps_users=args.gps_users,
                      load_index=0.0,
                      cycles=args.cycles,
                      warmup_cycles=args.warmup,
                      seed=args.seed)
    config = MultiCellConfig(num_cells=args.cells, cell=cell,
                             load_index=args.load,
                             inter_cell_fraction=args.inter_cell,
                             seed=args.seed)
    network = build_network(config)
    for index in range(args.handoffs):
        source = index % args.cells
        mover = network.cells[source].data_users[0]
        target = (source + 1) % args.cells
        when = (args.warmup + 20 + 25 * index) * timing.CYCLE_LENGTH
        network.handoff(mover.ein, target, at_time=when)
    if args.metrics:
        from repro.obs.registry import default_registry

        default_registry().enable()
    stats = network.run()
    if args.metrics:
        from repro.obs.export import write_prometheus
        from repro.obs.registry import default_registry

        write_prometheus(args.metrics, default_registry())
        print(f"[metrics] osu_network_* -> {args.metrics}",
              file=sys.stderr)
    payload = {
        "messages_routed": stats.messages_routed,
        "messages_forwarded": stats.messages_forwarded,
        "end_to_end_delay_mean_s": stats.end_to_end_delay.mean,
        "handoffs_completed": stats.handoffs_completed,
        "backbone_bytes": network.backbone.total_bytes,
        "cells": [cell_run.stats.summary()
                  for cell_run in network.cells],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.cells} cells, {stats.messages_routed} messages routed "
          f"({stats.messages_forwarded} over the backbone), "
          f"{stats.handoffs_completed} handoffs")
    print(f"end-to-end delay: {stats.end_to_end_delay.mean:.1f} s mean")
    for index, cell_run in enumerate(network.cells):
        cell_stats = cell_run.stats
        print(f"  cell {index}: util="
              f"{cell_stats.utilization():.3f} "
              f"violations={int(cell_stats.radio_violations)} "
              f"gps_misses={cell_stats.gps_deadline_misses}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    forwarded: List[str] = list(args.names)
    if args.quick:
        forwarded.append("--quick")
    if args.list:
        forwarded.append("--list")
    if args.jobs is not None:
        forwarded.extend(["--jobs", str(args.jobs)])
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.timeout is not None:
        forwarded.extend(["--timeout", str(args.timeout)])
    if args.retries is not None:
        forwarded.extend(["--retries", str(args.retries)])
    if args.resume:
        forwarded.append("--resume")
    if args.fail_fast:
        forwarded.append("--fail-fast")
    if args.metrics:
        forwarded.extend(["--metrics", args.metrics])
    if args.profile:
        forwarded.append("--profile")
    return experiments_main(forwarded)


def _observed_sweep(args: argparse.Namespace, loads, seeds, policy):
    """Run the sweep through the observed spec and write artifacts."""
    from repro.engine import execute
    from repro.obs.export import (
        build_manifest,
        config_digest,
        sidecar_paths,
        write_jsonl,
        write_manifest,
        write_prometheus,
    )
    from repro.obs.profiler import Profiler
    from repro.obs.registry import default_registry
    from repro.experiments.runner import observed_sweep_spec

    if args.metrics:
        default_registry().enable()
    spec = observed_sweep_spec(
        loads=loads, seeds=seeds, profile=args.profile,
        num_data_users=args.data_users,
        num_gps_users=args.gps_users,
        cycles=args.cycles, warmup_cycles=args.warmup)
    result = execute(spec, jobs=args.jobs,
                     cache=False if args.no_cache else None,
                     policy=policy)
    values = [value for value in result.values if value]

    if args.metrics:
        records = []
        margins = []
        for value, point in zip(result.values, spec.points):
            if not value:
                continue
            for record in value["timeline"]:
                merged = dict(record)
                merged.update(point.label)
                records.append(merged)
            margin = value["obs"].get("gps_min_margin_s")
            if margin is not None:
                margins.append(margin)
        paths = sidecar_paths(args.metrics)
        write_jsonl(paths["timeline"], records)
        manifest = build_manifest(
            "sweep", policy=policy, argv=sys.argv[1:],
            extra={
                "grid": {
                    "loads": list(loads),
                    "seeds": list(seeds),
                    "cycles": args.cycles,
                    "warmup_cycles": args.warmup,
                    "num_data_users": args.data_users,
                    "num_gps_users": args.gps_users,
                },
                "config_sha256": config_digest(
                    [point.config for point in spec.points]),
                "points": len(spec.points),
                "obs": {
                    "gps_min_margin_s":
                        min(margins) if margins else None,
                    "gps_deadline_held":
                        (min(margins) >= 0.0) if margins else None,
                },
            })
        write_manifest(paths["manifest"], manifest)
        write_prometheus(paths["prometheus"], default_registry())
        print(f"[metrics] {len(records)} cycle records -> "
              f"{paths['timeline']} (manifest: {paths['manifest']}, "
              f"prometheus: {paths['prometheus']})", file=sys.stderr)
    if args.profile:
        profiler = Profiler()
        for value in values:
            profiler.merge(value.get("profile", {}))
        if args.metrics:
            paths = sidecar_paths(args.metrics)
            with open(paths["profile"], "w", encoding="utf-8") as f:
                json.dump(profiler.to_dict(), f, indent=2)
                f.write("\n")
        print(profiler.table(), file=sys.stderr)
    return result.reduced


def _command_sweep(args: argparse.Namespace) -> int:
    """An ad-hoc engine load sweep straight from the command line."""
    from repro.engine import (
        PointFailureError,
        resolve_policy,
        telemetry,
    )
    from repro.experiments.runner import PAPER_LOADS, sweep_loads

    try:
        loads = (tuple(float(item) for item in args.loads.split(","))
                 if args.loads else PAPER_LOADS)
        seeds = tuple(int(item) for item in args.seeds.split(","))
    except ValueError:
        print("sweep: --loads/--seeds must be comma-separated numbers, "
              f"got --loads {args.loads!r} --seeds {args.seeds!r}",
              file=sys.stderr)
        return 2
    policy = resolve_policy(
        timeout_s=args.timeout, retries=args.retries,
        resume=args.resume or None,
        fail_fast=args.fail_fast or None)
    telemetry.reset()
    try:
        if args.metrics or args.profile:
            points = _observed_sweep(args, loads, seeds, policy)
        else:
            points = sweep_loads(
                loads=loads, seeds=seeds,
                num_data_users=args.data_users,
                num_gps_users=args.gps_users,
                cycles=args.cycles, warmup_cycles=args.warmup,
                jobs=args.jobs, cache=False if args.no_cache else None,
                policy=policy)
    except PointFailureError as error:
        print(f"sweep aborted by --fail-fast: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(points, indent=2))
    else:
        for point in points:
            print(f"rho={point['load']:<5g} "
                  f"util={point['utilization']:.3f} "
                  f"delay={point['mean_message_delay_cycles']:.2f}cy "
                  f"loss={point['message_loss_rate']:.3f} "
                  f"fairness={point['fairness']:.3f}")
    print(telemetry.format(), file=sys.stderr)
    failures = telemetry.failures
    if failures:
        print(json.dumps({"failed_points": [failure.to_json()
                                            for failure in failures]},
                         indent=2), file=sys.stderr)
        return 1
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run as lint_run

    return lint_run(args)


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.cli import run as serve_run

    return serve_run(args)


def _command_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz.cli import run as fuzz_run

    return fuzz_run(args)


def _command_city(args: argparse.Namespace) -> int:
    from repro.shard.cli import run as city_run

    return city_run(args)


def _command_obs(args: argparse.Namespace) -> int:
    """Render a recorded timeline (``--metrics`` output) as charts."""
    from repro.obs.export import read_jsonl
    from repro.obs.render import (
        filter_records,
        render_timeline,
        timeline_digest,
    )

    records = read_jsonl(args.path)
    if not records:
        print(f"obs: no records in {args.path}", file=sys.stderr)
        return 1
    where = {}
    for item in args.where:
        key, sep, value = item.partition("=")
        if not sep or not key:
            print(f"obs: --where expects KEY=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        where[key] = value
    if where:
        records = filter_records(records, where)
        if not records:
            print(f"obs: no records match {where}", file=sys.stderr)
            return 1
    columns = None
    if args.columns:
        columns = tuple(name for name in args.columns.split(",")
                        if name)
    if args.json:
        print(json.dumps(timeline_digest(records), indent=2))
        return 0
    print(render_timeline(records, columns=columns))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="OSU-MAC reproduction: simulate cells, networks, "
                    "and regenerate the paper's evaluation.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="simulate one cell and print its metrics")
    _add_cell_arguments(run_parser)
    _add_obs_arguments(run_parser)
    run_parser.add_argument("--trace", metavar="PATH", default=None,
                            help="dump the protocol event trace to "
                                 "PATH as JSONL")
    run_parser.set_defaults(handler=_command_run)

    network_parser = subparsers.add_parser(
        "network", help="simulate a multi-cell network with handoffs")
    network_parser.add_argument("--cells", type=int, default=2)
    network_parser.add_argument("--load", type=float, default=0.4)
    network_parser.add_argument("--inter-cell", type=float, default=0.5)
    network_parser.add_argument("--data-users", type=int, default=6)
    network_parser.add_argument("--gps-users", type=int, default=2)
    network_parser.add_argument("--cycles", type=int, default=150)
    network_parser.add_argument("--warmup", type=int, default=20)
    network_parser.add_argument("--handoffs", type=int, default=0)
    network_parser.add_argument("--seed", type=int, default=1)
    network_parser.add_argument("--metrics", metavar="PATH",
                                default=None,
                                help="write osu_network_* families to "
                                     "PATH in Prometheus text format")
    network_parser.add_argument("--json", action="store_true")
    network_parser.set_defaults(handler=_command_network)

    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures")
    experiments_parser.add_argument("names", nargs="*")
    experiments_parser.add_argument("--quick", action="store_true")
    experiments_parser.add_argument("--list", action="store_true")
    experiments_parser.add_argument("--jobs", type=int, default=None)
    experiments_parser.add_argument("--no-cache", action="store_true")
    _add_resilience_arguments(experiments_parser)
    _add_obs_arguments(experiments_parser)
    experiments_parser.set_defaults(handler=_command_experiments)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a load sweep on the engine and print points")
    sweep_parser.add_argument("--loads", default="",
                              help="comma-separated load indices "
                                   "(default: the paper's sweep)")
    sweep_parser.add_argument("--seeds", default="1,2,3",
                              help="comma-separated seeds")
    sweep_parser.add_argument("--data-users", type=int, default=9)
    sweep_parser.add_argument("--gps-users", type=int, default=2)
    sweep_parser.add_argument("--cycles", type=int, default=200)
    sweep_parser.add_argument("--warmup", type=int, default=30)
    sweep_parser.add_argument("--jobs", type=int, default=None)
    sweep_parser.add_argument("--no-cache", action="store_true")
    _add_resilience_arguments(sweep_parser)
    _add_obs_arguments(sweep_parser)
    sweep_parser.add_argument("--json", action="store_true")
    sweep_parser.set_defaults(handler=_command_sweep)

    lint_parser = subparsers.add_parser(
        "lint", help="run maclint, the protocol-aware static analyzer")
    from repro.lint.cli import configure_parser as _configure_lint
    _configure_lint(lint_parser)
    lint_parser.set_defaults(handler=_command_lint)

    serve_parser = subparsers.add_parser(
        "serve", help="run cells as a supervised long-lived service "
                      "with checkpoints and a live control plane")
    from repro.serve.cli import configure_parser as _configure_serve
    _configure_serve(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    fuzz_parser = subparsers.add_parser(
        "fuzz", help="run deterministic adversarial campaigns with "
                     "invariant oracles, shrinking, and a regression "
                     "corpus")
    from repro.fuzz.cli import configure_parser as _configure_fuzz
    _configure_fuzz(fuzz_parser)
    fuzz_parser.set_defaults(handler=_command_fuzz)

    city_parser = subparsers.add_parser(
        "city", help="run a city-scale sharded multicell simulation "
                     "in lockstep epochs over the engine pool")
    from repro.shard.cli import configure_parser as _configure_city
    _configure_city(city_parser)
    city_parser.set_defaults(handler=_command_city)

    obs_parser = subparsers.add_parser(
        "obs", help="render a recorded per-cycle timeline")
    obs_parser.add_argument("path",
                            help="timeline JSONL written by --metrics")
    obs_parser.add_argument("--columns", default="",
                            help="comma-separated timeline columns to "
                                 "chart (default: the headline set)")
    obs_parser.add_argument("--where", action="append", default=[],
                            metavar="KEY=VALUE",
                            help="filter records by a label or field "
                                 "(repeatable), e.g. --where load=0.8")
    obs_parser.add_argument("--json", action="store_true",
                            help="print a digest of the timeline as "
                                 "JSON instead of charts")
    obs_parser.set_defaults(handler=_command_obs)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
