"""OSU-MAC reproduction.

A from-scratch Python implementation of *OSU-MAC: A New, Real-Time Medium
Access Control Protocol for Wireless WANs with Asymmetric Wireless Links*
(Liu, Ge, Fitz, Hou, Chen, Jain -- ICDCS 2001), together with every
substrate it depends on: a discrete-event simulation kernel, a real
RS(64,48) Reed--Solomon codec over GF(256), channel/error models, the
testbed's physical-layer timing, workload generators, metrics, the MAC
protocols the paper surveys (PRMA, D-TDMA, RAMA, DRMA, slotted ALOHA),
and a benchmark harness regenerating every figure and table of the
paper's evaluation.

Quickstart::

    from repro import CellConfig, run_cell

    stats = run_cell(CellConfig(num_data_users=9, num_gps_users=3,
                                load_index=0.5, cycles=120))
    print(stats.summary())
"""

from repro.core import (
    BaseStation,
    CellConfig,
    CellRun,
    ControlFields,
    DataSubscriber,
    GpsSubscriber,
    build_cell,
    run_cell,
    run_cell_detailed,
)
from repro.metrics import CellStats, jain_fairness_index
from repro.phy import timing
from repro.phy.rs import RS_64_48, ReedSolomon, RSDecodeFailure
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "BaseStation",
    "CellConfig",
    "CellRun",
    "CellStats",
    "ControlFields",
    "DataSubscriber",
    "GpsSubscriber",
    "RS_64_48",
    "RSDecodeFailure",
    "ReedSolomon",
    "Simulator",
    "build_cell",
    "jain_fairness_index",
    "run_cell",
    "run_cell_detailed",
    "timing",
    "__version__",
]
