"""Channel error models.

The paper's field experience with the RS(64,48) design (Section 2.2) is
that one of two things happens to a transmitted codeword:

1. a small number of symbol errors occur and the decoder corrects them, or
2. a deep fade corrupts many symbols and the decoder *fails to output*.

So a packet is either delivered error-free or lost -- never delivered
corrupted.  Two families of models reproduce this:

* **Symbol-level models** (:class:`IndependentSymbolErrors`,
  :class:`GilbertElliottModel`) corrupt individual codeword symbols; the
  real RS decoder then corrects or fails.  These exercise the full codec
  path and are used in the error-control tests and examples.
* **Outage model** (:class:`OutageModel`) directly draws the binary
  delivered/lost outcome with a configurable loss probability, optionally
  time-correlated.  The large evaluation sweeps use this for speed; it is
  calibrated from the symbol-level models (see
  ``repro.experiments.calibration``).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.phy.timing import REVERSE_SYMBOL_RATE


class ErrorModel:
    """Interface: mutate codeword symbols and/or decide outage."""

    def corrupt(self, codeword: Sequence[int],
                rng: random.Random) -> List[int]:
        """Return a (possibly) corrupted copy of ``codeword``."""
        raise NotImplementedError

    def advance(self, duration: float, rng: random.Random) -> None:
        """Advance internal channel state by ``duration`` seconds."""


class PerfectChannelModel(ErrorModel):
    """No errors at all."""

    def corrupt(self, codeword: Sequence[int],
                rng: random.Random) -> List[int]:
        return list(codeword)


class IndependentSymbolErrors(ErrorModel):
    """Each codeword symbol is corrupted i.i.d. with probability ``p``."""

    def __init__(self, symbol_error_rate: float):
        if not 0.0 <= symbol_error_rate <= 1.0:
            raise ValueError("symbol_error_rate must be in [0, 1]")
        self.symbol_error_rate = symbol_error_rate

    def corrupt(self, codeword: Sequence[int],
                rng: random.Random) -> List[int]:
        out = list(codeword)
        p = self.symbol_error_rate
        if p == 0.0:
            return out
        for index in range(len(out)):
            if rng.random() < p:
                error = rng.randrange(1, 256)
                out[index] ^= error
        return out


class GilbertElliottModel(ErrorModel):
    """Two-state burst-error channel (good/bad) at symbol granularity.

    In the *good* state symbols are corrupted with probability
    ``p_good`` (small: a few correctable errors); in the *bad* state with
    probability ``p_bad`` (large: a deep fade the decoder cannot survive).
    State transitions happen per symbol with probabilities
    ``p_good_to_bad`` and ``p_bad_to_good``.

    With the default parameters the stationary bad-state probability is
    1%, mean fade length 100 symbols -- long enough to kill an entire
    64-symbol codeword, matching the paper's observed dichotomy.
    """

    GOOD, BAD = 0, 1

    def __init__(self,
                 p_good: float = 0.002,
                 p_bad: float = 0.40,
                 p_good_to_bad: float = 1e-4,
                 p_bad_to_good: float = 1e-2):
        for name, value in (("p_good", p_good), ("p_bad", p_bad),
                            ("p_good_to_bad", p_good_to_bad),
                            ("p_bad_to_good", p_bad_to_good)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.p_good = p_good
        self.p_bad = p_bad
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.state = self.GOOD

    @property
    def stationary_bad_probability(self) -> float:
        denom = self.p_good_to_bad + self.p_bad_to_good
        return self.p_good_to_bad / denom if denom else 0.0

    def _step(self, rng: random.Random) -> None:
        if self.state == self.GOOD:
            if rng.random() < self.p_good_to_bad:
                self.state = self.BAD
        else:
            if rng.random() < self.p_bad_to_good:
                self.state = self.GOOD

    def corrupt(self, codeword: Sequence[int],
                rng: random.Random) -> List[int]:
        # Hot path: _step() is inlined and the attribute loads hoisted;
        # the RNG draw sequence is exactly one state draw per symbol
        # followed by an error draw (plus a value draw on error), the
        # same order the naive per-symbol _step loop produced.
        out = list(codeword)
        state = self.state
        bad = self.BAD
        p_good = self.p_good
        p_bad = self.p_bad
        p_g2b = self.p_good_to_bad
        p_b2g = self.p_bad_to_good
        random_ = rng.random
        randrange = rng.randrange
        for index in range(len(out)):
            if state == bad:
                if random_() < p_b2g:
                    state = self.GOOD
                    p = p_good
                else:
                    p = p_bad
            elif random_() < p_g2b:
                state = bad
                p = p_bad
            else:
                p = p_good
            if random_() < p:
                out[index] ^= randrange(1, 256)
        self.state = state
        return out

    def advance(self, duration: float, rng: random.Random) -> None:
        """Advance the fading state through idle air-time.

        The per-symbol chain is approximated at cycle granularity by
        drawing from the two-state chain's transient distribution.
        """
        if duration <= 0:
            return
        # Symbols that *would* have been transmitted in this interval; the
        # chain memory decays geometrically, so sample the state afresh
        # from the stationary distribution when the gap is long.
        if duration * REVERSE_SYMBOL_RATE * max(self.p_good_to_bad,
                                                self.p_bad_to_good) > 1.0:
            bad = rng.random() < self.stationary_bad_probability
            self.state = self.BAD if bad else self.GOOD


class OutageModel(ErrorModel):
    """Binary delivered/lost model calibrated from the GE channel.

    ``corrupt`` is still provided for interface compatibility (it erases
    the whole codeword on outage, guaranteeing an RS decode failure), but
    users normally call :meth:`is_lost` directly to skip the codec.
    """

    def __init__(self, loss_probability: float):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        self.loss_probability = loss_probability

    def is_lost(self, rng: random.Random) -> bool:
        return rng.random() < self.loss_probability

    def corrupt(self, codeword: Sequence[int],
                rng: random.Random) -> List[int]:
        out = list(codeword)
        if self.is_lost(rng):
            for index in range(len(out)):
                out[index] ^= rng.randrange(1, 256)
        return out
