"""Shared half-open interval arithmetic.

Every overlap question in the simulator -- reverse-channel collision
detection (:class:`repro.phy.channel.Transmission`), forward-slot
guard checks (:class:`repro.core.scheduler.Interval`), and the
half-duplex radio audit -- uses the same half-open convention:
``[start, end)`` spans that merely touch (one ends exactly where the
other begins) do **not** overlap.  This module is the single home of
that predicate so the convention cannot drift between layers.
"""

from __future__ import annotations


def spans_overlap(a_start: float, a_end: float,
                  b_start: float, b_end: float) -> bool:
    """True when half-open spans ``[a_start, a_end)`` and
    ``[b_start, b_end)`` intersect.

    Edge-touch semantics: a span ending exactly at the other's start
    does not overlap it.
    """
    return a_start < b_end and b_start < a_end
