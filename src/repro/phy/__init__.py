"""Physical-layer substrate for the OSU narrow-band wireless testbed.

Implements, from scratch, everything below the MAC that the paper's
protocol depends on:

* :mod:`repro.phy.gf256` -- GF(2^8) arithmetic (polynomial 0x11D).
* :mod:`repro.phy.rs` -- the RS(64,48) Reed--Solomon codec used to protect
  every data slot and control-field block.
* :mod:`repro.phy.errors` -- channel error models, including the
  Gilbert--Elliott burst model and the calibrated two-state outage model
  that reproduces the paper's "delivered error-free or lost" dichotomy.
* :mod:`repro.phy.timing` -- all Table-1/Table-2 physical-layer constants
  and the derived notification-cycle geometry.
* :mod:`repro.phy.channel` -- the forward broadcast channel and the
  reverse channel with overlap-collision semantics.
"""

from repro.phy.gf256 import GF256
from repro.phy.rs import ReedSolomon, RSDecodeFailure, RS_64_48
from repro.phy.errors import (
    ErrorModel,
    GilbertElliottModel,
    IndependentSymbolErrors,
    OutageModel,
    PerfectChannelModel,
)
from repro.phy import timing
from repro.phy.channel import (
    CollisionError,
    ForwardChannel,
    ReverseChannel,
    Transmission,
)

__all__ = [
    "GF256",
    "ReedSolomon",
    "RSDecodeFailure",
    "RS_64_48",
    "ErrorModel",
    "GilbertElliottModel",
    "IndependentSymbolErrors",
    "OutageModel",
    "PerfectChannelModel",
    "timing",
    "CollisionError",
    "ForwardChannel",
    "ReverseChannel",
    "Transmission",
]
