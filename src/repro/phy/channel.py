"""Forward and reverse channel models.

Semantics (Section 2.2 of the paper):

* The **forward channel** is a broadcast medium: only the base station
  transmits, and every mobile subscriber hears every transmission through
  its own, independent link conditions.
* On the **reverse channel**, only the base station listens.  If two
  transmissions overlap in time, *all* of them fail (collision); the base
  station observes energy but cannot decode anything.
* Each link carries RS(64,48) codewords; a codeword is delivered intact or
  lost (decoder failure), never delivered corrupted.

Two fidelity levels share these semantics:

* ``full_fidelity=True``: the payload's codewords are actually corrupted
  symbol-by-symbol by the error model and run through the real RS decoder.
* ``full_fidelity=False`` (default for large sweeps): an
  :class:`~repro.phy.errors.OutageModel` draw decides delivery per
  codeword.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.phy.errors import ErrorModel, OutageModel, PerfectChannelModel
from repro.phy.intervals import spans_overlap
from repro.phy.rs import RS_64_48, ReedSolomon, RSDecodeFailure
from repro.phy.timing import FORWARD_SYMBOL_RATE, REVERSE_SYMBOL_RATE
from repro.sim.core import Simulator
from repro.sim.rng import RandomStreams


class CollisionError(Exception):
    """Raised internally when overlapping reverse transmissions collide."""


class Transmission:
    """One on-air transmission.

    ``codewords`` carries either placeholders (``[b""] * n`` -- only the
    count matters, the link draws survival per codeword) or, in
    full-fidelity mode, the real RS-encoded codewords; in the latter
    case the receiving link corrupts and decodes them, and the decoded
    information bytes are exposed to the receiver's callback via
    ``decoded_info`` (set per receiver just before its callback runs).

    A plain ``__slots__`` class (one is allocated for every slot
    transmission and every forward broadcast); ``end`` is precomputed at
    construction since the collision scan reads it repeatedly.
    """

    __slots__ = ("sender", "payload", "start", "duration", "kind",
                 "codewords", "end", "collided", "lost", "decoded_info")

    def __init__(self, sender: Any, payload: Any, start: float,
                 duration: float, kind: str = "data",
                 codewords: Optional[List[bytes]] = None):
        self.sender = sender
        self.payload = payload
        self.start = start
        self.duration = duration
        self.kind = kind
        self.codewords = codewords
        self.end = start + duration
        self.collided = False
        self.lost = False
        self.decoded_info: Optional[bytes] = None

    @property
    def has_real_codewords(self) -> bool:
        return bool(self.codewords) and len(self.codewords[0]) > 0

    def overlaps(self, other: "Transmission") -> bool:
        return spans_overlap(self.start, self.end, other.start, other.end)

    def __repr__(self) -> str:
        return (f"Transmission(sender={self.sender!r}, kind={self.kind!r}, "
                f"start={self.start!r}, duration={self.duration!r}, "
                f"collided={self.collided}, lost={self.lost})")


class Link:
    """Error behaviour of one transmitter->receiver path."""

    def __init__(self, error_model: Optional[ErrorModel] = None,
                 rng: Optional[random.Random] = None,
                 codec: ReedSolomon = RS_64_48,
                 full_fidelity: bool = False):
        self.error_model = error_model or PerfectChannelModel()
        self.rng = rng if rng is not None \
            else RandomStreams(0).stream("link-default")
        self.codec = codec
        self.full_fidelity = full_fidelity
        self.codewords_sent = 0
        self.codewords_lost = 0
        # The all-zero information word's codeword, used by survives():
        # encode() makes no RNG draws, so encoding once here instead of
        # per call is draw-for-draw identical.
        self._clean_codeword = codec.encode(bytes(codec.k))

    def survives(self, num_codewords: int = 1) -> bool:
        """Decide whether a transmission of ``num_codewords`` survives.

        Used when the payload is passed around as a Python object rather
        than encoded bits: each codeword must individually survive.
        """
        self.codewords_sent += num_codewords
        # Dispatch on the *current* model each call: a FaultInjector can
        # swap ``error_model`` at runtime.
        error_model = self.error_model
        if isinstance(error_model, PerfectChannelModel):
            return True
        rng = self.rng
        if isinstance(error_model, OutageModel):
            for _ in range(num_codewords):
                if error_model.is_lost(rng):
                    self.codewords_lost += num_codewords
                    return False
            return True
        # Symbol-level model: corrupt dummy codewords; the reference-aware
        # decoder skips the full RS machinery unless the error pattern
        # exceeds the correction bound (see ReedSolomon.decode_reference).
        clean = self._clean_codeword
        decode_reference = self.codec.decode_reference
        for _ in range(num_codewords):
            received = error_model.corrupt(clean, rng)
            try:
                decode_reference(received, clean)
            except RSDecodeFailure:
                self.codewords_lost += num_codewords
                return False
        return True

    def deliver_codewords(self,
                          codewords: List[bytes]) -> Optional[List[bytes]]:
        """Corrupt + decode real codewords; None when any codeword is lost.

        Each transmitted codeword is its own decode reference, so clean
        or lightly-corrupted words skip the full RS decode entirely;
        heavy corruption falls back to the real decoder (the oracle for
        failures *and* miscorrections).
        """
        self.codewords_sent += len(codewords)
        error_model = self.error_model
        rng = self.rng
        decode_reference = self.codec.decode_reference
        decoded: List[bytes] = []
        for codeword in codewords:
            received = error_model.corrupt(codeword, rng)
            try:
                decoded.append(decode_reference(received, codeword))
            except RSDecodeFailure:
                self.codewords_lost += len(codewords)
                return None
        return decoded


DeliveryCallback = Callable[[Transmission, bool], None]


class ReverseChannel:
    """Many transmitters, one receiver (the base station), with collisions.

    The base station registers ``on_delivery(transmission, ok)``; it is
    invoked at each transmission's end time.  ``ok`` is False when the
    transmission collided or the link lost it.  Collisions additionally set
    ``transmission.collided`` so the receiver can distinguish
    energy-without-decode (drives the adaptive contention-slot count) from
    a clean slot.
    """

    def __init__(self, sim: Simulator,
                 symbol_rate: float = REVERSE_SYMBOL_RATE):
        self.sim = sim
        self.symbol_rate = symbol_rate
        self._active: List[Transmission] = []
        self._listeners: List[DeliveryCallback] = []
        self.total_transmissions = 0
        self.total_collisions = 0

    def add_listener(self, callback: DeliveryCallback) -> None:
        self._listeners.append(callback)

    def transmit(self, transmission: Transmission,
                 link: Link) -> Transmission:
        """Start a transmission now; schedules its delivery at end time."""
        if transmission.start != self.sim.now:
            raise ValueError("transmissions must start at the current time")
        self.total_transmissions += 1
        for other in self._active:
            if other.overlaps(transmission):
                if not other.collided:
                    other.collided = True
                    self.total_collisions += 1
                if not transmission.collided:
                    transmission.collided = True
                    self.total_collisions += 1
        self._active.append(transmission)
        self.sim.call_at(transmission.end,
                         lambda: self._complete(transmission, link))
        return transmission

    def _complete(self, transmission: Transmission, link: Link) -> None:
        self._active.remove(transmission)
        ok = not transmission.collided
        transmission.decoded_info = None
        if ok:
            if link.full_fidelity and transmission.has_real_codewords:
                decoded = link.deliver_codewords(transmission.codewords)
                ok = decoded is not None
                if ok:
                    transmission.decoded_info = b"".join(decoded)
            else:
                num_codewords = (len(transmission.codewords)
                                 if transmission.codewords is not None
                                 else 1)
                ok = link.survives(num_codewords)
            transmission.lost = not ok
        for listener in self._listeners:
            listener(transmission, ok)


class ForwardChannel:
    """One transmitter (the base station), broadcast to all subscribers.

    Each receiver has its own :class:`Link`, so a control-field block can
    reach some subscribers and be lost by others -- the failure mode the
    MAC's ACK/timeout machinery must survive.
    """

    def __init__(self, sim: Simulator,
                 symbol_rate: float = FORWARD_SYMBOL_RATE):
        self.sim = sim
        self.symbol_rate = symbol_rate
        self._receivers: Dict[Any, "tuple[Link, DeliveryCallback]"] = {}
        self.total_broadcasts = 0

    def attach(self, receiver_id: Any, link: Link,
               callback: DeliveryCallback) -> None:
        self._receivers[receiver_id] = (link, callback)

    def detach(self, receiver_id: Any) -> None:
        self._receivers.pop(receiver_id, None)

    def broadcast(self, transmission: Transmission) -> Transmission:
        """Broadcast starting now; per-receiver delivery at end time."""
        if transmission.start != self.sim.now:
            raise ValueError("transmissions must start at the current time")
        self.total_broadcasts += 1
        receivers = list(self._receivers.items())
        self.sim.call_at(transmission.end,
                         lambda: self._complete(transmission, receivers))
        return transmission

    def _complete(self, transmission: Transmission, receivers) -> None:
        num_codewords = (len(transmission.codewords)
                         if transmission.codewords is not None else 1)
        for _receiver_id, (link, callback) in receivers:
            transmission.decoded_info = None
            if link.full_fidelity and transmission.has_real_codewords:
                decoded = link.deliver_codewords(transmission.codewords)
                ok = decoded is not None
                if ok:
                    transmission.decoded_info = b"".join(decoded)
            else:
                ok = link.survives(num_codewords)
            callback(transmission, ok)
        transmission.decoded_info = None
