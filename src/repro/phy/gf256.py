"""GF(2^8) arithmetic for the Reed--Solomon codec.

The field is constructed from the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the conventional choice for
RS codes over GF(256) (the same field used by CCSDS and DVB RS codecs and
consistent with the paper's RS(64,48) over GF(256)).

Elements are plain ints in ``[0, 255]``.  Multiplication and inversion go
through log/antilog tables built once at import time.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256
GENERATOR = 2  # alpha, a primitive element under 0x11D

_EXP: List[int] = [0] * 512  # alpha^i for i in [0, 510], doubled to skip mod
_LOG: List[int] = [0] * 256  # log_alpha(x); _LOG[0] is unused


def _build_tables() -> None:
    value = 1
    for power in range(255):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    for power in range(255, 512):
        _EXP[power] = _EXP[power - 255]


_build_tables()


class GF256:
    """Namespace of GF(2^8) operations on int-encoded elements."""

    exp = _EXP
    log = _LOG

    @staticmethod
    def add(a: int, b: int) -> int:
        """Addition (= subtraction) is XOR in characteristic 2."""
        return a ^ b

    sub = add

    @staticmethod
    def mul(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return _EXP[_LOG[a] + _LOG[b]]

    @staticmethod
    def div(a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return _EXP[(_LOG[a] - _LOG[b]) % 255]

    @staticmethod
    def inv(a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        return _EXP[255 - _LOG[a]]

    @staticmethod
    def pow(a: int, n: int) -> int:
        if a == 0:
            if n == 0:
                return 1
            if n < 0:
                raise ZeroDivisionError("negative power of zero in GF(256)")
            return 0
        return _EXP[(_LOG[a] * n) % 255]

    # -- polynomial helpers --------------------------------------------------
    # Polynomials are lists of coefficients, highest degree first:
    # [a, b, c] represents a*x^2 + b*x + c.

    @staticmethod
    def poly_scale(poly: Sequence[int], factor: int) -> List[int]:
        return [GF256.mul(coeff, factor) for coeff in poly]

    @staticmethod
    def poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
        result = [0] * max(len(p), len(q))
        result[len(result) - len(p):] = list(p)
        for index, coeff in enumerate(q):
            result[index + len(result) - len(q)] ^= coeff
        return result

    @staticmethod
    def poly_mul(p: Sequence[int], q: Sequence[int]) -> List[int]:
        result = [0] * (len(p) + len(q) - 1)
        for i, pc in enumerate(p):
            if pc == 0:
                continue
            log_pc = _LOG[pc]
            for j, qc in enumerate(q):
                if qc:
                    result[i + j] ^= _EXP[log_pc + _LOG[qc]]
        return result

    @staticmethod
    def poly_eval(poly: Sequence[int], x: int) -> int:
        """Horner evaluation of ``poly`` at ``x``."""
        result = 0
        for coeff in poly:
            result = GF256.mul(result, x) ^ coeff
        return result

    @staticmethod
    def poly_divmod(dividend: Sequence[int],
                    divisor: Sequence[int]) -> "tuple[List[int], List[int]]":
        """Quotient and remainder of polynomial long division."""
        divisor = list(divisor)
        while divisor and divisor[0] == 0:
            divisor = divisor[1:]
        if not divisor:
            raise ZeroDivisionError("polynomial division by zero")
        out = list(dividend)
        normalizer = divisor[0]
        steps = len(dividend) - len(divisor) + 1
        if steps <= 0:
            return [0], out
        for i in range(steps):
            coeff = out[i] = GF256.div(out[i], normalizer)
            if coeff != 0:
                for j in range(1, len(divisor)):
                    out[i + j] ^= GF256.mul(divisor[j], coeff)
        separator = len(dividend) - (len(divisor) - 1)
        return out[:separator], out[separator:]

    @staticmethod
    def poly_strip(poly: Iterable[int]) -> List[int]:
        """Drop leading zero coefficients (canonical form)."""
        coeffs = list(poly)
        while len(coeffs) > 1 and coeffs[0] == 0:
            coeffs.pop(0)
        return coeffs
