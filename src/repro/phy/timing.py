"""Physical-layer timing of the OSU narrow-band wireless testbed.

Every constant in this module comes from Table 1 / Sections 2.2, 3.3, 3.4
of the paper; the derived quantities (slot lengths, cycle lengths, the
reverse-cycle shift ``delta``, and the Table-2 access times) are computed
from first principles so the unit tests can check them against the numbers
printed in the paper.

All durations are in seconds; all lengths in channel symbols unless a name
says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

# -- general physical-layer characteristics (Table 1) ------------------------

FORWARD_SYMBOL_RATE = 3200.0  # channel symbols / second
REVERSE_SYMBOL_RATE = 2400.0
CODED_BITS_PER_SYMBOL = 2  # QPSK: two coded bits per channel symbol

PS_FRAME_SYMBOLS = 150  # channel symbols per pilot-symbol frame
PS_FRAME_INFO_SYMBOLS = 128  # non-pilot symbols per PS frame
PS_FRAME_PILOTS = PS_FRAME_SYMBOLS - PS_FRAME_INFO_SYMBOLS  # 22 pilots
PS_FRAME_EFFICIENCY = PS_FRAME_INFO_SYMBOLS / PS_FRAME_SYMBOLS  # 128/150

RS_INFO_BITS = 384  # information bits per RS(64,48) codeword
RS_CODED_BITS = 512  # coded bits per RS(64,48) codeword
RS_INFO_BYTES = RS_INFO_BITS // 8  # 48
RS_CODED_BYTES = RS_CODED_BITS // 8  # 64

#: Channel symbols occupied by one RS codeword once pilots are inserted:
#: 512 coded bits -> 256 data symbols -> 2 PS frames -> 300 channel symbols.
RS_CODEWORD_SYMBOLS = (RS_CODED_BITS // CODED_BITS_PER_SYMBOL
                       // PS_FRAME_INFO_SYMBOLS) * PS_FRAME_SYMBOLS

# -- regular (non-real-time) data packets ------------------------------------

REGULAR_PACKET_CODEWORDS = 1
REGULAR_PACKET_SYMBOLS = RS_CODEWORD_SYMBOLS  # 300
REGULAR_PACKET_TIME_FORWARD = REGULAR_PACKET_SYMBOLS / FORWARD_SYMBOL_RATE
REGULAR_PACKET_TIME_REVERSE = REGULAR_PACKET_SYMBOLS / REVERSE_SYMBOL_RATE

# -- reverse-channel packet framing (Table 1, bottom block) -------------------

REGULAR_PREAMBLE_SYMBOLS = 600
REGULAR_POSTAMBLE_SYMBOLS = 51
GUARD_SYMBOLS = 18
GUARD_TIME = GUARD_SYMBOLS / REVERSE_SYMBOL_RATE  # 0.0075 s

REGULAR_SLOT_SYMBOLS = (REGULAR_PREAMBLE_SYMBOLS + REGULAR_PACKET_SYMBOLS
                        + REGULAR_POSTAMBLE_SYMBOLS + GUARD_SYMBOLS)  # 969
#: Reverse data slot: 0.40375 s.
DATA_SLOT_TIME = REGULAR_SLOT_SYMBOLS / REVERSE_SYMBOL_RATE

GPS_PACKET_INFO_BITS = 72
GPS_PACKET_SYMBOLS = 128
GPS_PREAMBLE_SYMBOLS = 64
GPS_SLOT_SYMBOLS = (GPS_PREAMBLE_SYMBOLS + GPS_PACKET_SYMBOLS
                    + GUARD_SYMBOLS)  # 210
#: Reverse GPS slot: 0.0875 s.
GPS_SLOT_TIME = GPS_SLOT_SYMBOLS / REVERSE_SYMBOL_RATE

# -- forward-channel cycle geometry (Section 3.4) -----------------------------

FORWARD_PREAMBLE1_SYMBOLS = 300  # cycle preamble
FORWARD_PREAMBLE2_SYMBOLS = 150  # preamble before the second control fields
FORWARD_PREAMBLE_TOTAL_SYMBOLS = (FORWARD_PREAMBLE1_SYMBOLS
                                  + FORWARD_PREAMBLE2_SYMBOLS)  # 450
CYCLE_PREAMBLE_TIME = FORWARD_PREAMBLE_TOTAL_SYMBOLS / FORWARD_SYMBOL_RATE

CONTROL_FIELD_CODEWORDS = 2  # each control-field set spans 2 RS codewords
CONTROL_FIELD_SYMBOLS = CONTROL_FIELD_CODEWORDS * RS_CODEWORD_SYMBOLS  # 600
CONTROL_FIELD_TIME = CONTROL_FIELD_SYMBOLS / FORWARD_SYMBOL_RATE
CONTROL_FIELD_INFO_BITS = CONTROL_FIELD_CODEWORDS * RS_INFO_BITS  # 768
CONTROL_FIELD_USED_BITS = 630  # Section 3.1; 138 bits reserved

#: Forward data slot: one RS codeword = 300 symbols = 0.09375 s.
FORWARD_SLOT_SYMBOLS = RS_CODEWORD_SYMBOLS
FORWARD_SLOT_TIME = FORWARD_SLOT_SYMBOLS / FORWARD_SYMBOL_RATE

TARGET_CYCLE_SYMBOLS_FORWARD = 12800  # 4 seconds at 3200 sym/s

#: N = 37 forward data slots per cycle (Section 3.4).
NUM_FORWARD_DATA_SLOTS = ((TARGET_CYCLE_SYMBOLS_FORWARD
                           - FORWARD_PREAMBLE_TOTAL_SYMBOLS
                           - 2 * CONTROL_FIELD_SYMBOLS)
                          // FORWARD_SLOT_SYMBOLS)

#: Exact forward notification-cycle length: 3.984375 s.
CYCLE_LENGTH = (FORWARD_PREAMBLE_TOTAL_SYMBOLS
                + 2 * CONTROL_FIELD_SYMBOLS
                + NUM_FORWARD_DATA_SLOTS * FORWARD_SLOT_SYMBOLS
                ) / FORWARD_SYMBOL_RATE

# -- reverse-channel cycle geometry (Section 3.3) ------------------------------

MAX_GPS_USERS = 8
MAX_GPS_SLOTS = 8
#: Format 1 (>3 active GPS users): 8 GPS slots + 8 data slots.
FORMAT1_GPS_SLOTS = 8
FORMAT1_DATA_SLOTS = 8
#: Format 2 (<=3 active GPS users): 3 GPS slots + 9 data slots + small guard.
FORMAT2_GPS_SLOTS = 3
FORMAT2_DATA_SLOTS = 9
FORMAT2_TAIL_GUARD = 0.03375  # paper: guard time closing format 2

#: How many GPS slots merge into one extra data slot (Section 3.3).
GPS_SLOTS_PER_DATA_SLOT = 5

#: Reverse cycle content length (both formats): 3.93 s.
REVERSE_CONTENT_LENGTH = (FORMAT1_GPS_SLOTS * GPS_SLOT_TIME
                          + FORMAT1_DATA_SLOTS * DATA_SLOT_TIME)

#: Guard appended so the reverse cycle matches the forward cycle: 0.054375 s
#: (the paper rounds this to 0.0544).
REVERSE_TAIL_GUARD = CYCLE_LENGTH - REVERSE_CONTENT_LENGTH

# -- two-control-field shift (Section 3.4, Problem 2) --------------------------

MS_TURNAROUND_TIME = 0.020  # 20 ms transmit/receive switch-over

#: The reverse cycle starts ``REVERSE_SHIFT`` after the forward cycle:
#: first preamble + first control fields + 20 ms = 0.30125 s.
REVERSE_SHIFT = (FORWARD_PREAMBLE1_SYMBOLS / FORWARD_SYMBOL_RATE
                 + CONTROL_FIELD_TIME
                 + MS_TURNAROUND_TIME)

# -- forward-cycle element offsets (relative to forward cycle start) ----------

FORWARD_PREAMBLE1_TIME = FORWARD_PREAMBLE1_SYMBOLS / FORWARD_SYMBOL_RATE
FORWARD_PREAMBLE2_TIME = FORWARD_PREAMBLE2_SYMBOLS / FORWARD_SYMBOL_RATE

CF1_OFFSET = FORWARD_PREAMBLE1_TIME
CF1_END = CF1_OFFSET + CONTROL_FIELD_TIME
#: Forward data slot 0 sits between the two control-field sets.
FORWARD_SLOT0_OFFSET = CF1_END
CF2_OFFSET = FORWARD_SLOT0_OFFSET + FORWARD_SLOT_TIME + FORWARD_PREAMBLE2_TIME
CF2_END = CF2_OFFSET + CONTROL_FIELD_TIME


#: Start offsets of all N forward data slots within a cycle, precomputed
#: once so hot paths can index instead of recomputing the arithmetic.
#: Slot 0 is the single slot between the control-field sets; slots 1..36
#: follow the second control-field set back to back.
FORWARD_SLOT_OFFSETS: Tuple[float, ...] = tuple(
    FORWARD_SLOT0_OFFSET if index == 0
    else CF2_END + (index - 1) * FORWARD_SLOT_TIME
    for index in range(NUM_FORWARD_DATA_SLOTS))


def forward_slot_offset(index: int) -> float:
    """Start offset of forward data slot ``index`` in [0, N) within a cycle.

    Slot 0 is the single slot between the control-field sets; slots 1..36
    follow the second control-field set back to back.
    """
    if not 0 <= index < NUM_FORWARD_DATA_SLOTS:
        raise ValueError(f"forward slot index {index} out of range")
    return FORWARD_SLOT_OFFSETS[index]


# -- reverse-cycle slot layout --------------------------------------------------


@dataclass(frozen=True)
class ReverseLayout:
    """Slot layout of one reverse notification cycle.

    Offsets are relative to the *forward* cycle start (as in the paper's
    Table 2), i.e. they already include :data:`REVERSE_SHIFT`.
    """

    format_id: int
    gps_slots: int
    data_slots: int
    gps_offsets: Tuple[float, ...]
    data_offsets: Tuple[float, ...]

    def gps_slot_interval(self) -> float:
        """Duration of one GPS slot."""
        return GPS_SLOT_TIME

    def data_slot_interval(self) -> float:
        return DATA_SLOT_TIME


def _build_layout(format_id: int, gps_slots: int,
                  data_slots: int) -> ReverseLayout:
    gps_offsets: List[float] = []
    cursor = REVERSE_SHIFT
    for _ in range(gps_slots):
        gps_offsets.append(cursor)
        cursor += GPS_SLOT_TIME
    data_offsets: List[float] = []
    for _ in range(data_slots):
        data_offsets.append(cursor)
        cursor += DATA_SLOT_TIME
    return ReverseLayout(format_id=format_id,
                         gps_slots=gps_slots,
                         data_slots=data_slots,
                         gps_offsets=tuple(gps_offsets),
                         data_offsets=tuple(data_offsets))


#: Format 1 layout (Table 2, left column).
FORMAT1 = _build_layout(1, FORMAT1_GPS_SLOTS, FORMAT1_DATA_SLOTS)
#: Format 2 layout (Table 2, right column).
FORMAT2 = _build_layout(2, FORMAT2_GPS_SLOTS, FORMAT2_DATA_SLOTS)


def reverse_layout(active_gps_users: int) -> ReverseLayout:
    """The layout the base station announces (Section 3.3).

    Format 1 when more than three GPS users are active, format 2 otherwise.
    The announcement is implicit: subscribers infer the format from the
    number of GPS users in the control fields.
    """
    if active_gps_users < 0:
        raise ValueError("active_gps_users must be non-negative")
    return FORMAT1 if active_gps_users > FORMAT2_GPS_SLOTS else FORMAT2


#: The paper's GPS temporal-QoS bound (Section 2.1): 4 s access delay.
GPS_DEADLINE = 4.0
#: Checking delay bound for a newly active GPS terminal: 1 minute.
GPS_CHECKING_DELAY = 60.0

#: Registration design goals (Section 2.1): P[latency <= 2 cycles] >= 0.8,
#: P[latency <= 10 cycles] >= 0.99.
REGISTRATION_GOALS = ((2, 0.80), (10, 0.99))

#: 6-bit user IDs -> at most 64 assignable IDs per cell.
USER_ID_BITS = 6
MAX_USER_IDS = 2 ** USER_ID_BITS
EIN_BITS = 16

#: Control-field sub-field sizes in bits (Section 3.1, Fig. 2).
GPS_SCHEDULE_ENTRIES = 8
REVERSE_SCHEDULE_ENTRIES = 9  # M = 9
FORWARD_SCHEDULE_ENTRIES = NUM_FORWARD_DATA_SLOTS  # N = 37
PAGING_ENTRIES = 18
#: Reverse ACK field: one entry per reverse data slot (max 9), each entry
#: large enough to carry an (EIN, user ID) registration reply.
REVERSE_ACK_ENTRIES = 9
