"""Reed--Solomon codec over GF(256).

The paper protects every data packet and control-field block with a
shortened RS(64,48) code over GF(256) (8 parity symbols, corrects up to
t = 8 symbol errors).  This module implements:

* systematic encoding against the generator polynomial
  ``g(x) = prod_{i=0}^{2t-1} (x - alpha^i)``,
* decoding via syndromes, Berlekamp--Massey, Chien search and the Forney
  algorithm, with optional erasure information,
* explicit decode-failure detection (:class:`RSDecodeFailure`) -- the
  behaviour the paper relies on: a codeword is either recovered exactly or
  the decoder refuses to output, so corrupted packets are *lost*, never
  silently delivered wrong.

Shortening is implicit: RS(64,48) is RS(255,239) with 191 leading zero
information symbols that are never transmitted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.phy.gf256 import GF256


class RSDecodeFailure(Exception):
    """The received word is beyond the code's correction capability."""


class ReedSolomon:
    """A systematic RS(n, k) codec over GF(256).

    Parameters
    ----------
    n:
        Codeword length in symbols (bytes), at most 255.
    k:
        Information symbols per codeword; ``n - k`` must be even is not
        required, but ``t = (n - k) // 2`` symbol errors are correctable.
    fcr:
        First consecutive root exponent of the generator polynomial
        (0 by convention here).
    """

    def __init__(self, n: int, k: int, fcr: int = 0):
        if not 0 < k < n <= 255:
            raise ValueError(f"invalid RS parameters n={n}, k={k}")
        self.n = n
        self.k = k
        self.fcr = fcr
        self.nsym = n - k
        self.t = self.nsym // 2
        self.generator_poly = self._build_generator(self.nsym, fcr)

    @staticmethod
    def _build_generator(nsym: int, fcr: int) -> List[int]:
        gen = [1]
        for i in range(nsym):
            gen = GF256.poly_mul(gen, [1, GF256.pow(2, i + fcr)])
        return gen

    # -- encoding -------------------------------------------------------------

    def encode(self, message: Sequence[int]) -> bytes:
        """Encode ``k`` information symbols into an ``n``-symbol codeword.

        The output is systematic: the first ``k`` symbols are the message,
        the last ``n - k`` are parity.
        """
        msg = list(message)
        if len(msg) != self.k:
            raise ValueError(
                f"message must be exactly {self.k} symbols, got {len(msg)}")
        if any(not 0 <= symbol <= 255 for symbol in msg):
            raise ValueError("symbols must be in [0, 255]")
        _, remainder = GF256.poly_divmod(msg + [0] * self.nsym,
                                         self.generator_poly)
        parity = [0] * (self.nsym - len(remainder)) + remainder
        return bytes(msg + parity)

    # -- decoding -------------------------------------------------------------

    def decode(self, received: Sequence[int],
               erasures: Optional[Sequence[int]] = None) -> bytes:
        """Recover the ``k`` information symbols from a received word.

        Parameters
        ----------
        received:
            ``n`` symbols as read off the channel.
        erasures:
            Optional positions (0-based within the codeword) known to be
            unreliable; each erasure costs one unit of correction power
            instead of two.

        Raises
        ------
        RSDecodeFailure
            If more than ``t`` errors (counting erasures at half weight)
            corrupted the word, or the corrected word is inconsistent.
        """
        word = list(received)
        if len(word) != self.n:
            raise RSDecodeFailure(
                f"received word has {len(word)} symbols, expected {self.n}")
        erasure_positions = sorted(set(erasures or []))
        if any(not 0 <= pos < self.n for pos in erasure_positions):
            raise ValueError("erasure positions out of range")
        if len(erasure_positions) > self.nsym:
            raise RSDecodeFailure("more erasures than parity symbols")

        syndromes = self._syndromes(word)
        if all(s == 0 for s in syndromes):
            return bytes(word[:self.k])

        erasure_locator = self._erasure_locator(erasure_positions)
        modified = self._modified_syndromes(syndromes, erasure_positions)
        error_locator = self._berlekamp_massey(
            modified, len(erasure_positions))
        combined = GF256.poly_mul(error_locator, erasure_locator)

        positions = self._chien_search(combined)
        if positions is None:
            raise RSDecodeFailure("error locator has wrong root count")

        corrected = self._forney(word, syndromes, combined, positions)

        if any(s != 0 for s in self._syndromes(corrected)):
            raise RSDecodeFailure("residual syndrome after correction")
        return bytes(corrected[:self.k])

    def decode_reference(self, received: Sequence[int],
                         reference: Sequence[int]) -> bytes:
        """Decode ``received`` knowing the codeword that was transmitted.

        The channel simulator always knows the clean codeword, which
        lets it skip the full syndrome/BM/Chien/Forney pipeline in the
        overwhelmingly common cases:

        * ``received`` differs from ``reference`` in at most ``t``
          symbols: bounded-distance decoding is *guaranteed* to succeed
          and return the transmitted information symbols (the received
          word lies inside the transmitted codeword's decoding sphere,
          so no other codeword can be closer).
        * more than ``t`` symbol errors: the outcome (failure, or a
          miscorrection to a different codeword) depends on the exact
          error pattern, so the full decoder runs as the oracle.

        The result is therefore bit-identical to ``decode(received)``
        for every input, assuming ``reference`` really is the
        transmitted codeword.
        """
        word = list(received)
        if len(word) != self.n or len(reference) != self.n:
            return self.decode(received)
        errors = 0
        limit = self.t
        for got, sent in zip(word, reference):
            if got != sent:
                errors += 1
                if errors > limit:
                    return self.decode(received)
        return bytes(reference[:self.k])

    def check(self, received: Sequence[int]) -> bool:
        """True when the word is a valid codeword (all syndromes zero)."""
        word = list(received)
        if len(word) != self.n:
            return False
        return all(s == 0 for s in self._syndromes(word))

    # -- decoder internals ------------------------------------------------

    def _syndromes(self, word: Sequence[int]) -> List[int]:
        return [GF256.poly_eval(word, GF256.pow(2, i + self.fcr))
                for i in range(self.nsym)]

    def _erasure_locator(self, positions: Sequence[int]) -> List[int]:
        locator = [1]
        for pos in positions:
            x_inv_power = GF256.pow(2, self.n - 1 - pos)
            locator = GF256.poly_mul(locator, [x_inv_power, 1])
        return locator

    def _modified_syndromes(self, syndromes: Sequence[int],
                            erasure_positions: Sequence[int]) -> List[int]:
        """Forney syndromes: fold erasure knowledge into the syndromes.

        Each erasure at position ``p`` folds a factor ``(x * X_p + 1)`` into
        the syndrome polynomial via the standard in-place shift, so the
        Berlekamp--Massey step only has to locate the *unknown* errors.
        """
        fsynd = list(syndromes)
        for pos in erasure_positions:
            x = GF256.pow(2, self.n - 1 - pos)
            for j in range(len(fsynd) - 1):
                fsynd[j] = GF256.mul(fsynd[j], x) ^ fsynd[j + 1]
        return fsynd

    def _berlekamp_massey(self, syndromes: Sequence[int],
                          erasure_count: int) -> List[int]:
        """Error-locator polynomial via Berlekamp--Massey (low-order last).

        ``syndromes`` here are the Forney-modified syndromes, so the
        locator found covers only the *errors* (not the erasures); only the
        first ``nsym - erasure_count`` entries are meaningful.
        """
        err_loc = [1]
        old_loc = [1]
        for i in range(len(syndromes) - erasure_count):
            old_loc = old_loc + [0]
            delta = syndromes[i]
            for j in range(1, len(err_loc)):
                delta ^= GF256.mul(err_loc[-(j + 1)],
                                   syndromes[i - j])
            if delta != 0:
                if len(old_loc) > len(err_loc):
                    new_loc = GF256.poly_scale(old_loc, delta)
                    old_loc = GF256.poly_scale(err_loc, GF256.inv(delta))
                    err_loc = new_loc
                err_loc = GF256.poly_add(
                    err_loc, GF256.poly_scale(old_loc, delta))
        err_loc = GF256.poly_strip(err_loc)
        errors = len(err_loc) - 1
        if errors * 2 + erasure_count > self.nsym:
            raise RSDecodeFailure(
                f"too many errors to correct ({errors} errors, "
                f"{erasure_count} erasures, {self.nsym} parity symbols)")
        return err_loc

    def _chien_search(self, locator: Sequence[int]) -> Optional[List[int]]:
        """Positions of errors, or None when root count != degree."""
        degree = len(GF256.poly_strip(locator)) - 1
        positions = []
        for pos in range(self.n):
            x_inv = GF256.pow(2, self.n - 1 - pos)
            if GF256.poly_eval(locator, GF256.inv(x_inv)) == 0:
                positions.append(pos)
        if len(positions) != degree:
            return None
        return positions

    def _forney(self, word: Sequence[int], syndromes: Sequence[int],
                locator: Sequence[int],
                positions: Sequence[int]) -> List[int]:
        """Error magnitudes via the Forney algorithm; returns corrected word."""
        # Error evaluator Omega(x) = Syn(x) * Lambda(x) mod x^nsym,
        # with Syn(x) low-order first.
        syn_poly = list(reversed(list(syndromes)))  # high-order first
        product = GF256.poly_mul(syn_poly, locator)
        omega = product[-self.nsym:]
        corrected = list(word)
        # Formal derivative of Lambda (high-order-first storage).
        locator_list = GF256.poly_strip(locator)
        degree = len(locator_list) - 1
        for pos in positions:
            x = GF256.pow(2, self.n - 1 - pos)  # locator value X_j
            x_inv = GF256.inv(x)
            # Lambda'(X_j^-1): in GF(2^m) the derivative keeps odd terms.
            derivative = 0
            for power in range(degree + 1):
                coeff = locator_list[len(locator_list) - 1 - power]
                if power % 2 == 1 and coeff:
                    derivative ^= GF256.mul(
                        coeff, GF256.pow(x_inv, power - 1))
            if derivative == 0:
                raise RSDecodeFailure("Forney derivative vanished")
            numerator = GF256.poly_eval(omega, x_inv)
            magnitude = GF256.div(numerator, derivative)
            # e_j = X_j^(1-fcr) * Omega(X_j^-1) / Lambda'(X_j^-1).
            magnitude = GF256.mul(magnitude, GF256.pow(x, 1 - self.fcr))
            corrected[pos] ^= magnitude
        return corrected


#: The codec the testbed uses for every slot and control-field block.
RS_64_48 = ReedSolomon(64, 48)


def codeword_bits(codec: ReedSolomon = RS_64_48) -> Tuple[int, int]:
    """(information bits, coded bits) per codeword: (384, 512) for RS(64,48)."""
    return codec.k * 8, codec.n * 8
