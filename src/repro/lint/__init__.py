"""maclint: protocol-aware static analysis for the OSU-MAC codebase.

Dependency-free AST checks guarding the repository's headline
guarantees -- deterministic replay (DET), process-pool safety (PAR),
single-sourced paper constants (PROTO), hot-path hygiene (HOT) -- plus
the v2 whole-program taint pass (FLOW) that follows wall-clock, RNG,
and iteration-order provenance across function and file boundaries.
See ``docs/STATIC_ANALYSIS.md`` for the architecture and the
pragma/baseline workflow, and ``python -m repro lint --list-rules`` for
a quick reference.
"""

from repro.lint.api import ProjectReport, check_project
from repro.lint.baseline import (
    BASELINE_FILENAME,
    fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.checker import (
    CORE_PACKAGES,
    FileReport,
    Finding,
    LintSyntaxError,
    Scope,
    check_file,
    check_source,
    scope_for_path,
)
from repro.lint.flow import FlowEngine, analyze_project
from repro.lint.pragmas import PragmaSet, parse_pragmas
from repro.lint.project import Project
from repro.lint.rules import FAMILIES, PAPER_CONSTANTS, RULES, Rule
from repro.lint.sarif import sarif_report

__all__ = [
    "BASELINE_FILENAME",
    "CORE_PACKAGES",
    "FAMILIES",
    "FileReport",
    "Finding",
    "FlowEngine",
    "LintSyntaxError",
    "PAPER_CONSTANTS",
    "PragmaSet",
    "Project",
    "ProjectReport",
    "RULES",
    "Rule",
    "Scope",
    "analyze_project",
    "check_file",
    "check_project",
    "check_source",
    "fingerprint",
    "load_baseline",
    "parse_pragmas",
    "partition",
    "sarif_report",
    "scope_for_path",
    "write_baseline",
]
