"""maclint: protocol-aware static analysis for the OSU-MAC codebase.

Dependency-free AST checks guarding the repository's three headline
guarantees -- deterministic replay (DET), process-pool safety (PAR),
single-sourced paper constants (PROTO) -- plus hot-path hygiene (HOT).
See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
pragma/baseline workflow, and ``python -m repro lint --list-rules`` for
a quick reference.
"""

from repro.lint.baseline import (
    BASELINE_FILENAME,
    fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.checker import (
    CORE_PACKAGES,
    FileReport,
    Finding,
    LintSyntaxError,
    Scope,
    check_file,
    check_source,
    scope_for_path,
)
from repro.lint.pragmas import PragmaSet, parse_pragmas
from repro.lint.rules import FAMILIES, PAPER_CONSTANTS, RULES, Rule

__all__ = [
    "BASELINE_FILENAME",
    "CORE_PACKAGES",
    "FAMILIES",
    "FileReport",
    "Finding",
    "LintSyntaxError",
    "PAPER_CONSTANTS",
    "PragmaSet",
    "RULES",
    "Rule",
    "Scope",
    "check_file",
    "check_source",
    "fingerprint",
    "load_baseline",
    "parse_pragmas",
    "partition",
    "scope_for_path",
    "write_baseline",
]
