"""SARIF 2.1.0 output for maclint.

One run, one tool (``maclint``), one result per finding.  Baselined
findings are included with an ``external`` suppression so SARIF viewers
show them greyed-out rather than hiding the debt entirely; new findings
carry no suppression and render at full severity.  ``partialFingerprints``
reuses the baseline fingerprint (rule | path | line text), so result
identity is stable across line-number drift for any consumer that
matches on it.

Paths are emitted relative to ``REPOROOT`` via ``originalUriBaseIds``,
keeping the file portable between the developer checkout and CI.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.lint.baseline import fingerprint
from repro.lint.checker import Finding
from repro.lint.rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemas/sarif-schema-2.1.0.json")

#: SARIF problem level per rule family.  Everything maclint guards is a
#: correctness property, so families default to "error"; HOT hygiene is
#: a performance/cleanliness concern and reports as "warning".
_FAMILY_LEVELS = {"HOT": "warning"}


def _rule_descriptor(rule_id: str) -> Dict[str, object]:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": _FAMILY_LEVELS.get(rule.family, "error"),
        },
        "properties": {"family": rule.family},
    }


def _result(finding: Finding, rule_index: Dict[str, int],
            suppressed: bool) -> Dict[str, object]:
    rule = RULES.get(finding.rule)
    level = _FAMILY_LEVELS.get(rule.family, "error") if rule else "error"
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": level,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "REPOROOT",
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "partialFingerprints": {
            "maclint/v1": fingerprint(finding),
        },
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def sarif_report(new: Sequence[Finding],
                 baselined: Sequence[Finding] = (),
                 ) -> Dict[str, object]:
    """The SARIF 2.1.0 document for a lint run, as a JSON-able dict."""
    used = sorted({f.rule for f in new} | {f.rule for f in baselined})
    rule_index = {rule_id: index for index, rule_id in enumerate(used)}
    results: List[Dict[str, object]] = []
    for finding in sorted(new, key=lambda f: (f.path, f.line, f.rule)):
        results.append(_result(finding, rule_index, suppressed=False))
    for finding in sorted(baselined,
                          key=lambda f: (f.path, f.line, f.rule)):
        results.append(_result(finding, rule_index, suppressed=True))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "maclint",
                    "informationUri":
                        "docs/STATIC_ANALYSIS.md",
                    "rules": [_rule_descriptor(rule_id)
                              for rule_id in used],
                },
            },
            "originalUriBaseIds": {
                "REPOROOT": {"description": {
                    "text": "repository root"}},
            },
            "results": results,
        }],
    }
