"""The maclint rule catalogue.

Every rule guards one of the repository's headline guarantees:

* **DET** -- bit-identical results for serial vs ``--jobs N`` execution
  and across re-runs.  All randomness must flow through the named,
  seeded streams of :class:`repro.sim.rng.RandomStreams`; wall-clock
  reads and set-iteration order must never influence protocol
  decisions.
* **PAR** -- process-pool safety.  Worker tasks are re-imported in
  fresh interpreters, so mutable module-level state silently diverges
  between workers, and closures captured into
  :class:`repro.engine.spec.Point` tasks must be picklable by
  reference.
* **PROTO** -- the paper's physical-layer constants (Table 1 /
  Sections 2.2, 3.3, 3.4) live in :mod:`repro.phy.timing` and nowhere
  else.  A re-typed magic literal is a fork of the protocol spec.
* **HOT** -- the per-symbol / per-event simulation paths must not do
  console or file I/O; that belongs to the CLI and render layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Rule:
    """One maclint rule."""

    id: str
    family: str
    name: str
    summary: str
    rationale: str


_RULE_LIST: Tuple[Rule, ...] = (
    Rule(
        id="DET001",
        family="DET",
        name="module-global-random",
        summary="call to a module-global random.* function",
        rationale="Draws from the shared module-global generator are "
                  "ordered by call arrival, so any concurrency or "
                  "import-order change perturbs every later draw. Use "
                  "an injected repro.sim.rng stream instead.",
    ),
    Rule(
        id="DET002",
        family="DET",
        name="wall-clock-read",
        summary="wall-clock read (time.time/perf_counter/datetime.now) "
                "in simulation code",
        rationale="Simulation time is sim.now; reading the host clock "
                  "makes results machine- and load-dependent.",
    ),
    Rule(
        id="DET003",
        family="DET",
        name="direct-rng-construction",
        summary="direct random.Random construction outside sim/rng.py",
        rationale="Ad-hoc Random instances fork the seeding scheme; "
                  "derive streams from repro.sim.rng.RandomStreams so "
                  "one root seed reproduces the whole run and streams "
                  "stay independent across components.",
    ),
    Rule(
        id="DET004",
        family="DET",
        name="set-iteration",
        summary="iteration over a set feeding simulation logic",
        rationale="Set iteration order depends on insertion history and "
                  "PYTHONHASHSEED; scheduling or registration decisions "
                  "driven by it are not reproducible. Iterate a sorted() "
                  "copy or an order-preserving container.",
    ),
    Rule(
        id="PAR001",
        family="PAR",
        name="global-statement",
        summary="function mutates module state via `global`",
        rationale="Process-pool workers each hold a private copy of "
                  "module globals; mutations are invisible to the "
                  "parent and to other workers, so results depend on "
                  "which process ran the point.",
    ),
    Rule(
        id="PAR002",
        family="PAR",
        name="module-mutable-state",
        summary="mutable module-level container bound to a "
                "non-constant name",
        rationale="Module-level lists/dicts/sets are per-process state; "
                  "engine tasks that read or write them behave "
                  "differently under --jobs N than serially. Pass state "
                  "through the task's config instead.",
    ),
    Rule(
        id="PAR003",
        family="PAR",
        name="unpicklable-task",
        summary="lambda or nested function used as a Point task "
                "function",
        rationale="Point.fn must be picklable by reference "
                  "(module-level) to cross the process boundary; "
                  "lambdas and closures fail inside ProcessPoolExecutor "
                  "or silently capture parent state.",
    ),
    Rule(
        id="PAR004",
        family="PAR",
        name="pool-reachable-module-state",
        summary="module-level state mutated inside a function "
                "reachable from a process-pool task",
        rationale="The v2 call graph traces every function reachable "
                  "from a Point task (engine sweeps, shard epochs, "
                  "fuzz cases). Mutating module-level containers "
                  "there writes to a per-worker copy: results come to "
                  "depend on which process ran which point. Pass "
                  "state through the task config or return it in the "
                  "task result.",
    ),
    Rule(
        id="PROTO001",
        family="PROTO",
        name="paper-constant-literal",
        summary="paper constant re-typed as a magic literal",
        rationale="The OSU-MAC physical-layer numbers are defined once "
                  "in repro.phy.timing and derived from first "
                  "principles; a re-typed literal can drift from the "
                  "spec without any test noticing.",
    ),
    Rule(
        id="HOT001",
        family="HOT",
        name="print-in-hot-path",
        summary="print() inside simulation/protocol code",
        rationale="The sim/core/phy/protocols/traffic layers run per "
                  "event and per symbol; console I/O there perturbs "
                  "timings and floods parallel sweeps. Reporting "
                  "belongs to the CLI/render layers or the obs "
                  "registry.",
    ),
    Rule(
        id="HOT002",
        family="HOT",
        name="io-in-hot-loop",
        summary="open() inside a loop in simulation/protocol code",
        rationale="File I/O inside per-event loops dominates the hot "
                  "path and breaks the non-perturbation guarantee of "
                  "the observability layer; buffer and write once "
                  "outside the loop, from the CLI layer.",
    ),
    Rule(
        id="FLOW101",
        family="FLOW",
        name="rng-taint-into-core",
        summary="value derived from an unseeded random source crosses "
                "a call boundary into deterministic core code",
        rationale="Every random-like draw must trace to a named "
                  "stream of repro.sim.rng.RandomStreams, or one root "
                  "seed no longer reproduces the run. The taint pass "
                  "follows draws through helper functions the "
                  "per-module DET rules cannot see across.",
    ),
    Rule(
        id="FLOW102",
        family="FLOW",
        name="clock-taint-at-sink",
        summary="wall-clock-derived value reaches a journal record, "
                "digest input, envelope field, or event time",
        rationale="Replay-exact serve resume and digest-stable epochs "
                  "require journaled and hashed state to be a pure "
                  "function of (seed, inputs). A host-clock value "
                  "reaching such a sink differs on every run. "
                  "Wall-clock reads that never reach a sink "
                  "(heartbeats, pacing) are fine.",
    ),
    Rule(
        id="FLOW103",
        family="FLOW",
        name="order-taint-at-sink",
        summary="dict/set-iteration-ordered value reaches a journal "
                "record, digest input, or envelope field",
        rationale="Dict insertion order is not canonical across pool "
                  "workers, shard merges, or replay, and set order "
                  "depends on PYTHONHASHSEED. Emission-order "
                  "contracts (the shard coordinator's canonical "
                  "ordering, journal replay, digests) require "
                  "sorted() or canonical_order() first.",
    ),
)

RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULE_LIST}

FAMILIES: Tuple[str, ...] = ("DET", "PAR", "PROTO", "HOT", "FLOW")


#: PROTO001 value table: (value, allowed literal types, timing symbol,
#: core_only).  ``core_only`` entries are ambiguous enough (37, 4.0 ...)
#: that they are only flagged inside the protocol-core packages where a
#: bare timing-flavoured number is always suspicious; the distinctive
#: values are flagged across the whole tree.
PAPER_CONSTANTS: Tuple[Tuple[object, Tuple[type, ...], str, bool], ...] = (
    (3200, (int, float), "FORWARD_SYMBOL_RATE", False),
    (2400, (int, float), "REVERSE_SYMBOL_RATE", False),
    (12800, (int, float), "TARGET_CYCLE_SYMBOLS_FORWARD", False),
    (0.30125, (float,), "REVERSE_SHIFT", False),
    (3.984375, (float,), "CYCLE_LENGTH", False),
    (0.09375, (float,), "FORWARD_SLOT_TIME", False),
    (0.40375, (float,), "DATA_SLOT_TIME", False),
    (0.0875, (float,), "GPS_SLOT_TIME", False),
    (0.054375, (float,), "REVERSE_TAIL_GUARD", False),
    (0.02, (float,), "MS_TURNAROUND_TIME", True),
    (37, (int,), "NUM_FORWARD_DATA_SLOTS", True),
    (4.0, (float,), "GPS_DEADLINE", True),
    (60.0, (float,), "GPS_CHECKING_DELAY", True),
)
