"""The maclint v2 forward taint / dataflow pass.

Three taint kinds, each guarding one clause of the repository's
determinism discipline:

* ``rng`` -- a value derived from an *unseeded* random source
  (``random.*``, ``numpy.random``, ``uuid``, ``secrets``).  Draws from
  :class:`repro.sim.rng.RandomStreams` are project functions and carry
  no taint, so "every random-like draw must trace to a named, seeded
  stream" falls out of source classification.  FLOW101 fires when rng
  taint born *outside* the deterministic core crosses a call boundary
  into it (inside the core the syntactic DET rules already fire at the
  draw itself).
* ``clock`` -- a wall-clock read (``time.time``/``monotonic``/...,
  ``datetime.now``).  FLOW102 fires when such a value reaches a
  determinism-bearing **sink**: a journal record, a digest input, an
  envelope field, or a simulator event time.  Wall-clock reads that
  never reach a sink (heartbeats, pacing, lag metrics) are fine -- the
  flow pass is precisely what lets maclint stop banning them by module.
* ``order`` -- a value whose content depends on unsorted ``dict``/
  ``set`` iteration order.  Dict iteration is insertion-ordered, but
  insertion history is not canonical across pool workers, shard merge
  order, or replay; set iteration additionally depends on
  ``PYTHONHASHSEED``.  FLOW103 fires when such a value reaches the
  same sinks -- exactly the bug class the shard coordinator's
  canonical-ordering contract guards against.  ``sorted()``,
  ``canonical_order()``, ``canonical()``, and
  ``json.dumps(..., sort_keys=True)`` are sanitizers.

The pass is interprocedural: every function gets a **summary**
(which taints it returns, which parameters it forwards, which
parameters reach a sink inside it) computed to a fixpoint over the
:class:`repro.lint.project.Project` call graph, so taint crosses
helper-function boundaries that the per-module v1 pass provably cannot
see.  Findings are reported **at the sink line** (a
``# maclint: disable=FLOW...`` pragma there suppresses the whole
cross-function chain); the message names the origin.

The same project index also replaces v1's curated scoping lists:

* HOT001/HOT002 run over functions *reachable from the event loop*
  (``Simulator.step``/``run``, channel completion, and every callback
  reference handed to a registrar), instead of a hand-maintained
  module list.
* PAR004 flags mutation of module-level state inside functions
  reachable from process-pool entry points (``Point`` task functions,
  shard replay, fuzz case execution) -- mutations via ``global`` are
  PAR001's jurisdiction and are left to it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple,
    Union,
)

from repro.lint.checker import (
    DET_EXEMPT_MODULES,
    Finding,
    repro_module_parts,
    scope_for_path,
)
from repro.lint.project import (
    DICT_TYPE,
    HASH_TYPE,
    SET_TYPE,
    FunctionInfo,
    ModuleInfo,
    Project,
)

# --------------------------------------------------------------------------
# taint values


@dataclass(frozen=True)
class TaintTag:
    """One concrete taint: kind + where it was born."""

    kind: str  # "rng" | "clock" | "order"
    origin: str  # human-readable source, e.g. "time.monotonic()"
    path: str
    line: int
    func: str  # qname of the function the source sits in


@dataclass(frozen=True)
class ParamTag:
    """Summary marker: "the taint of my caller's argument ``index``"."""

    index: int


@dataclass(frozen=True)
class FieldTag:
    """Field-scoped taint on a dataclass-style object.

    Constructing ``RunResult(values=clean, wall_s=clock)`` yields
    ``{FieldTag("wall_s", clock)}``; loading ``.values`` extracts
    nothing, loading ``.wall_s`` extracts the clock tag, and passing
    the whole object into a sink flattens every field's taint.  Depth
    is capped at one level: wrapping an already-wrapped tag re-wraps
    its inner tag, keeping the tag universe finite for the fixpoint.
    """

    field: str  # attribute name, or "#<i>" for tuple position i
    inner: Union[TaintTag, ParamTag]


Tag = Union[TaintTag, ParamTag, FieldTag]
Taint = FrozenSet[Tag]
EMPTY: Taint = frozenset()


def _strip_order(taint: Iterable[Tag]) -> Taint:
    """Remove order tags, including inside field/tuple wrappers."""
    out: Set[Tag] = set()
    for tag in taint:
        probe = tag.inner if isinstance(tag, FieldTag) else tag
        if isinstance(probe, TaintTag) and probe.kind == "order":
            continue
        out.add(tag)
    return frozenset(out)


def _project_field(taint: Iterable[Tag], key: str) -> Taint:
    """Extract ``key``'s taint from a field/tuple-tagged value.

    Matching wrappers unwrap, other wrappers drop, and bare tags pass
    through (they taint the whole object, hence every projection).
    """
    out: Set[Tag] = set()
    for tag in taint:
        if isinstance(tag, FieldTag):
            if tag.field == key:
                out.add(tag.inner)
        else:
            out.add(tag)
    return frozenset(out)


def flatten(taint: Iterable[Tag]) -> Set[Union[TaintTag, ParamTag]]:
    """Strip field wrappers: the tags a whole-object use exposes."""
    out: Set[Union[TaintTag, ParamTag]] = set()
    for tag in taint:
        out.add(tag.inner if isinstance(tag, FieldTag) else tag)
    return out


@dataclass(frozen=True)
class SinkInfo:
    """One sink site inside a function body."""

    descr: str
    path: str
    line: int
    col: int
    func: str
    kinds: Tuple[str, ...]


@dataclass(frozen=True)
class Summary:
    """The interprocedural behaviour of one function."""

    returns: Taint = EMPTY
    param_sinks: FrozenSet[Tuple[int, SinkInfo]] = frozenset()


# --------------------------------------------------------------------------
# source / sanitizer / sink tables

_WALL_CLOCK_EXTERNALS = {
    "time.time", "time.time_ns", "time.monotonic",
    "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
}
_DATETIME_NOW_ATTRS = ("now", "utcnow", "today")
_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")
_ORDER_VIEW_METHODS = {"items", "keys", "values"}
_LINEARIZERS = {"list", "tuple", "iter", "enumerate"}

#: Builtins whose result does not depend on argument iteration order.
_ORDER_SANITIZERS = {"sorted", "sum", "min", "max", "len", "frozenset"}
#: Builtins whose result carries no taint at all.
_FULL_SANITIZERS = {"len", "any", "all", "bool", "isinstance", "id"}
#: Project functions that canonicalise ordering; declared explicitly so
#: recursion in their bodies cannot blur the summary.
_ORDER_SANITIZER_FUNCS = {
    "repro.shard.envelopes.canonical_order",
    "repro.shard.envelopes.canonical_sort_key",
    "repro.engine.hashing.canonical",
}

_JOURNAL_CLASSES = {"ServiceJournal", "SweepJournal", "CityJournal"}
_JOURNAL_METHODS = {
    "append", "append_control", "append_snapshot", "append_event",
    "append_epoch", "write_header", "_append",
}
_ENVELOPE_SINK_FUNCS = {
    "repro.shard.envelopes.message_envelope",
    "repro.shard.envelopes.handoff_envelope",
}
_SIM_CLASSES = {"Simulator", "LegacySimulator"}
_EVENT_TIME_METHODS = {"call_at", "timeout"}

#: HOT reachability roots: the event loop and channel completion.
HOT_ROOT_PATTERNS: Tuple[str, ...] = (
    "repro.sim.core.Simulator.step",
    "repro.sim.core.Simulator.run",
    "repro.sim.core.Simulator.process",
    "repro.sim.legacy.LegacySimulator.step",
    "repro.sim.legacy.LegacySimulator.run",
    "repro.phy.channel.Link.deliver_codewords",
    "repro.phy.channel.ReverseChannel._complete",
    "repro.phy.channel.ForwardChannel._complete",
)

#: PAR004 roots beyond auto-discovered ``Point(fn=...)`` targets.
PAR_ROOT_PATTERNS: Tuple[str, ...] = (
    "repro.fuzz.runner.run_fuzz_case",
    "repro.shard.shard.ShardSim.*",
)

#: Methods that mutate a container in place (PAR004).
_MUTATOR_METHODS = {
    "append", "appendleft", "add", "update", "setdefault", "pop",
    "popitem", "popleft", "clear", "extend", "remove", "discard",
    "insert", "sort", "reverse",
}


def _source_kind(external: Optional[str]) -> Optional[str]:
    """Taint kind born by calling the external dotted name, if any."""
    if external is None:
        return None
    if external.startswith(_RNG_PREFIXES) or \
            external.startswith("uuid.uuid"):
        return "rng"
    if external in _WALL_CLOCK_EXTERNALS:
        return "clock"
    if external.startswith("datetime.") and \
            external.rsplit(".", 1)[-1] in _DATETIME_NOW_ATTRS:
        return "clock"
    return None


# --------------------------------------------------------------------------
# per-function transfer


class _FunctionWalk:
    """Flow-sensitive walk of one function body.

    Runs in two modes: summary mode (``collect is None``) computes the
    returns/param-sink summary; findings mode additionally emits
    :class:`Finding` objects for concrete taint reaching sinks and for
    rng taint crossing into the deterministic core.
    """

    def __init__(self, flow: "FlowEngine", func: FunctionInfo,
                 collect: Optional[List[Finding]]) -> None:
        self.flow = flow
        self.project = flow.project
        self.func = func
        self.module: ModuleInfo = flow.project.modules[func.module]
        self.collect = collect
        self.env: Dict[str, Taint] = {}
        self.local_classes: Dict[str, str] = {}
        self.returns: Set[Tag] = set()
        self.param_sinks: Set[Tuple[int, SinkInfo]] = set()
        self.param_index: Dict[str, int] = {}
        args = getattr(func.node, "args", None)
        if args is not None:
            ordered = args.posonlyargs + args.args
            for index, arg in enumerate(ordered):
                self.param_index[arg.arg] = index
                self.env[arg.arg] = frozenset({ParamTag(index)})
            for arg in args.kwonlyargs:
                index = len(ordered) + args.kwonlyargs.index(arg)
                self.param_index[arg.arg] = index
                self.env[arg.arg] = frozenset({ParamTag(index)})
        self.local_classes.update(
            self.project._param_annotations(self.module, func.node))
        # Draws inside the sanctioned RNG home (sim/rng.py, the one
        # place allowed to construct random.Random) carry no taint:
        # "traces to RandomStreams" is exactly this exemption.
        self.rng_sanctioned = \
            repro_module_parts(func.path) in DET_EXEMPT_MODULES

    # -- summary entry point -----------------------------------------------

    def run(self) -> Summary:
        body = getattr(self.func.node, "body", [])
        self.exec_block(body)
        return Summary(returns=frozenset(self.returns),
                       param_sinks=frozenset(self.param_sinks))

    # -- helpers -----------------------------------------------------------

    def _tag(self, kind: str, origin: str, node: ast.AST) -> TaintTag:
        return TaintTag(kind=kind, origin=origin, path=self.func.path,
                        line=getattr(node, "lineno", self.func.lineno),
                        func=self.func.qname)

    def _line_text(self, path: str, line: int) -> str:
        module = self.project.by_path.get(path)
        if module and 0 < line <= len(module.lines):
            return module.lines[line - 1].strip()
        return ""

    def _emit(self, rule: str, path: str, line: int, col: int,
              message: str) -> None:
        if self.collect is None:
            return
        finding = Finding(rule=rule, path=path, line=line, col=col,
                          message=message,
                          text=self._line_text(path, line))
        key = (rule, path, line, message)
        if key not in self.flow.seen:
            self.flow.seen.add(key)
            self.collect.append(finding)

    def _report_sink(self, tag: TaintTag, sink: SinkInfo) -> None:
        """A concrete taint reached a sink: FLOW102 / FLOW103."""
        if tag.kind == "clock":
            self._emit(
                "FLOW102", sink.path, sink.line, sink.col,
                f"wall-clock value ({tag.origin}, "
                f"{tag.path}:{tag.line}) reaches {sink.descr}; derive "
                f"it from sim.now or cycle indices instead")
        elif tag.kind == "order":
            self._emit(
                "FLOW103", sink.path, sink.line, sink.col,
                f"iteration-order-dependent value ({tag.origin}, "
                f"{tag.path}:{tag.line}) reaches {sink.descr}; sort "
                f"or canonicalise before emitting")

    def _sink(self, sink: SinkInfo, taints: Iterable[Taint]) -> None:
        """Route every tag of ``taints`` into ``sink``."""
        for taint in taints:
            for tag in flatten(taint):
                if isinstance(tag, ParamTag):
                    self.param_sinks.add((tag.index, sink))
                elif tag.kind in sink.kinds:
                    self._report_sink(tag, sink)

    # -- expression evaluation ---------------------------------------------

    def eval(self, node: Optional[ast.AST]) -> Taint:
        if node is None:
            return EMPTY
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Default: union of child expression taints.
        out: Set[Tag] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child)
        return frozenset(out)

    def _eval_Constant(self, node: ast.Constant) -> Taint:
        return EMPTY

    def _eval_Name(self, node: ast.Name) -> Taint:
        return self.env.get(node.id, EMPTY)

    def _eval_Attribute(self, node: ast.Attribute) -> Taint:
        if isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls"):
            return self.env.get(f"self.{node.attr}", EMPTY)
        return _project_field(self.eval(node.value), node.attr)

    def _eval_Subscript(self, node: ast.Subscript) -> Taint:
        base = self.eval(node.value)
        index = node.slice
        if isinstance(index, ast.Constant) \
                and type(index.value) is int:
            return _project_field(base, f"#{index.value}")
        return frozenset(flatten(base)
                         | flatten(self.eval(node.slice)))

    def _eval_Tuple(self, node: ast.Tuple) -> Taint:
        """Tuple literals are position-tagged: ``return payload,
        wall_s`` must not smear the timing's taint onto the payload
        when the caller unpacks."""
        out: Set[Tag] = set()
        for position, element in enumerate(node.elts):
            for tag in self.eval(element):
                inner = tag.inner if isinstance(tag, FieldTag) \
                    else tag
                out.add(FieldTag(f"#{position}", inner))
        return frozenset(out)

    def _eval_Starred(self, node: ast.Starred) -> Taint:
        return self.eval(node.value)

    def _eval_Lambda(self, node: ast.Lambda) -> Taint:
        return EMPTY

    def _eval_IfExp(self, node: ast.IfExp) -> Taint:
        return self.eval(node.test) | self.eval(node.body) \
            | self.eval(node.orelse)

    def _eval_Dict(self, node: ast.Dict) -> Taint:
        out: Set[Tag] = set()
        for key in node.keys:
            out |= self.eval(key)
        for value in node.values:
            out |= self.eval(value)
        return frozenset(out)

    def _comp(self, node: ast.AST, element_nodes: Sequence[ast.AST],
              ) -> Taint:
        saved_env = dict(self.env)
        for comp in getattr(node, "generators", []):
            iter_taint = self._iteration_taint(comp.iter)
            self._bind(comp.target, iter_taint)
            for cond in comp.ifs:
                self.eval(cond)
        out: Set[Tag] = set()
        for element in element_nodes:
            out |= self.eval(element)
        self.env = saved_env
        return frozenset(out)

    def _eval_ListComp(self, node: ast.ListComp) -> Taint:
        return self._comp(node, [node.elt])

    def _eval_SetComp(self, node: ast.SetComp) -> Taint:
        return self._comp(node, [node.elt])

    def _eval_GeneratorExp(self, node: ast.GeneratorExp) -> Taint:
        return self._comp(node, [node.elt])

    def _eval_DictComp(self, node: ast.DictComp) -> Taint:
        return self._comp(node, [node.key, node.value])

    def _eval_Await(self, node: ast.Await) -> Taint:
        return self.eval(node.value)

    def _eval_Yield(self, node: ast.Yield) -> Taint:
        taint = self.eval(node.value)
        self.returns |= taint
        return EMPTY

    def _eval_YieldFrom(self, node: ast.YieldFrom) -> Taint:
        taint = self.eval(node.value)
        self.returns |= taint
        return taint

    # -- container typing / order sources ----------------------------------

    def _static_container(self, node: ast.AST) -> Optional[str]:
        """DICT_TYPE/SET_TYPE when the expression is a known dict/set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return SET_TYPE
        if isinstance(node, (ast.Dict, ast.DictComp)):
            # A dict *literal* iterates in source order -- canonical.
            return None
        klass = self.project.instance_class(
            self.module, self.func, node, self.local_classes)
        if klass in (DICT_TYPE, SET_TYPE):
            return klass
        return None

    def _is_order_view(self, node: ast.AST) -> bool:
        """``x.items()`` / ``.keys()`` / ``.values()`` calls."""
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_VIEW_METHODS
                and not node.args and not node.keywords)

    def _order_origin(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set iteration"
        if self._is_order_view(node):
            # Only views over receivers *statically known* to be
            # dict/set: `**kwargs.items()` and friends keep source
            # order and would drown real findings in noise.
            assert isinstance(node, ast.Call)
            assert isinstance(node.func, ast.Attribute)
            if self._static_container(node.func.value) is not None:
                return f".{node.func.attr}() iteration"
            return None
        container = self._static_container(node)
        if container == SET_TYPE:
            return "set iteration"
        if container == DICT_TYPE:
            return "dict iteration"
        return None

    def _iteration_taint(self, iter_node: ast.AST) -> Taint:
        # Tuple structure does not survive iteration in this model:
        # positional wrappers dissolve into their inner tags.
        taint: Set[Tag] = set()
        for tag in self.eval(iter_node):
            if isinstance(tag, FieldTag) and tag.field.startswith("#"):
                taint.add(tag.inner)
            else:
                taint.add(tag)
        origin = self._order_origin(iter_node)
        if origin is not None:
            taint.add(self._tag("order", origin, iter_node))
        return frozenset(taint)

    # -- calls -------------------------------------------------------------

    def _arg_taints(self, call: ast.Call,
                    ) -> Tuple[List[Taint], Dict[str, Taint]]:
        positional = [self.eval(arg) for arg in call.args]
        keywords: Dict[str, Taint] = {}
        for keyword in call.keywords:
            taint = self.eval(keyword.value)
            if keyword.arg is None:  # **kwargs splat
                for index in range(len(positional)):
                    positional[index] |= EMPTY
                keywords["**"] = keywords.get("**", EMPTY) | taint
            else:
                keywords[keyword.arg] = taint
        return positional, keywords

    def _argmap_for(self, target: str, call: ast.Call,
                    positional: List[Taint],
                    keywords: Dict[str, Taint],
                    receiver_taint: Taint, bound: bool,
                    ) -> Dict[int, Taint]:
        """Map call arguments onto the callee's parameter indices."""
        info = self.flow.project.functions.get(target)
        argmap: Dict[int, Taint] = {}
        offset = 1 if (bound and info is not None
                       and info.cls is not None) else 0
        if offset:
            argmap[0] = receiver_taint
        for index, taint in enumerate(positional):
            argmap[index + offset] = taint
        if info is not None:
            names: Dict[str, int] = {}
            args = getattr(info.node, "args", None)
            if args is not None:
                ordered = args.posonlyargs + args.args \
                    + args.kwonlyargs
                for param_pos, arg in enumerate(ordered):
                    names[arg.arg] = param_pos
            for name, taint in keywords.items():
                if name in names:
                    argmap[names[name]] = taint
        return argmap

    def _check_sinks(self, call: ast.Call, targets: Tuple[str, ...],
                     external: Optional[str], receiver_class:
                     Optional[str], positional: List[Taint],
                     keywords: Dict[str, Taint],
                     receiver_taint: Taint) -> None:
        """Direct sink sites at this call."""
        func_node = call.func
        attr = func_node.attr \
            if isinstance(func_node, ast.Attribute) else None
        all_args = list(positional) + list(keywords.values())
        line = call.lineno
        col = call.col_offset

        def sink(descr: str, kinds: Tuple[str, ...],
                 taints: Iterable[Taint]) -> None:
            self._sink(SinkInfo(descr=descr, path=self.func.path,
                                line=line, col=col,
                                func=self.func.qname, kinds=kinds),
                       taints)

        for target in targets:
            if target in _ENVELOPE_SINK_FUNCS:
                name = target.rsplit(".", 1)[-1]
                sink(f"{name}() envelope field",
                     ("clock", "order"), all_args)
        if external is not None and external.startswith("hashlib."):
            sink("digest input (hashlib)", ("clock", "order"),
                 all_args)
        if receiver_class == HASH_TYPE and attr == "update":
            sink("digest input (hashlib update)", ("clock", "order"),
                 all_args)
        if receiver_class is not None and attr is not None:
            simple = receiver_class.rsplit(".", 1)[-1]
            if simple in _JOURNAL_CLASSES \
                    and attr in _JOURNAL_METHODS:
                sink(f"journal record ({simple}.{attr})",
                     ("clock", "order"), all_args)
            if simple in _SIM_CLASSES \
                    and attr in _EVENT_TIME_METHODS and positional:
                sink(f"simulator event time ({simple}.{attr})",
                     ("clock",), positional[:1])
        # Unresolved journal-flavoured receivers (duck typing): only
        # the unambiguous append_* names, to stay quiet on lists.
        if receiver_class is None and attr is not None \
                and attr in ("append_control", "append_snapshot",
                             "append_event", "append_epoch"):
            sink(f"journal record (.{attr})", ("clock", "order"),
                 all_args)

    def _check_rng_crossing(self, call: ast.Call,
                            targets: Tuple[str, ...], result: Taint,
                            argmaps: Dict[str, Dict[int, Taint]],
                            ) -> None:
        """FLOW101: rng taint crossing into the deterministic core."""
        if self.collect is None:
            return
        caller_det = self.flow.det_scoped(self.func.qname)

        def foreign_rng(taint: Taint) -> List[TaintTag]:
            tags = []
            for tag in flatten(taint):
                if isinstance(tag, TaintTag) and tag.kind == "rng" \
                        and tag.func != self.func.qname \
                        and not self.flow.det_scoped(tag.func):
                    tags.append(tag)
            return tags

        if caller_det:
            for tag in foreign_rng(result):
                self._emit(
                    "FLOW101", self.func.path, call.lineno,
                    call.col_offset,
                    f"value derived from {tag.origin} "
                    f"({tag.path}:{tag.line}) enters deterministic "
                    f"core code; draw it from a seeded "
                    f"RandomStreams stream instead")
        else:
            for target in targets:
                if not self.flow.det_scoped(target):
                    continue
                for taint in argmaps.get(target, {}).values():
                    for tag in foreign_rng(taint):
                        self._emit(
                            "FLOW101", self.func.path, call.lineno,
                            call.col_offset,
                            f"value derived from {tag.origin} "
                            f"({tag.path}:{tag.line}) passed into "
                            f"deterministic core function "
                            f"{target.rsplit('.', 1)[-1]}(); draw it "
                            f"from a seeded RandomStreams stream "
                            f"instead")

    def _eval_Call(self, call: ast.Call) -> Taint:
        targets, external = self.project.resolve_call(
            self.func, call, self.local_classes)
        positional, keywords = self._arg_taints(call)
        args_union: Set[Tag] = set()
        for taint in positional:
            args_union |= taint
        for taint in keywords.values():
            args_union |= taint

        func_node = call.func
        receiver_taint = EMPTY
        receiver_class: Optional[str] = None
        bound = False
        if isinstance(func_node, ast.Attribute):
            receiver_taint = self.eval(func_node.value)
            receiver_class = self.project.instance_class(
                self.module, self.func, func_node.value,
                self.local_classes)
            bound = True

        # -- sanitizers ----------------------------------------------------
        if isinstance(func_node, ast.Name):
            name = func_node.id
            if name in _FULL_SANITIZERS:
                return EMPTY
            if name in _ORDER_SANITIZERS:
                return _strip_order(args_union)
            if name in _LINEARIZERS:
                taint = set(args_union)
                if call.args:
                    origin = self._order_origin(call.args[0])
                    if origin is not None:
                        taint.add(self._tag(
                            "order", f"{name}() over {origin}", call))
                return frozenset(taint)
        if external == "json.dumps":
            sort_keys = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True for kw in call.keywords)
            if sort_keys:
                return _strip_order(args_union)
        if any(t in _ORDER_SANITIZER_FUNCS for t in targets):
            return _strip_order(args_union)

        # -- sources -------------------------------------------------------
        kind = _source_kind(external)
        if kind is not None:
            if kind == "rng" and self.rng_sanctioned:
                return EMPTY
            return frozenset({self._tag(kind, f"{external}()", call)})
        if self._is_order_view(call):
            assert isinstance(func_node, ast.Attribute)
            taint = set(receiver_taint)
            if self._static_container(func_node.value) is not None:
                taint.add(self._tag(
                    "order", f".{func_node.attr}() view", call))
            return frozenset(taint)

        # -- sinks ---------------------------------------------------------
        self._check_sinks(call, targets, external, receiver_class,
                          positional, keywords, receiver_taint)

        # -- interprocedural propagation -----------------------------------
        if not targets and external in self.project.classes:
            # Dataclass-style construction (no explicit __init__):
            # field-scope each argument's taint so later attribute
            # loads extract only their own field.
            return self._construct(external, positional, keywords)
        result: Set[Tag] = set()
        argmaps: Dict[str, Dict[int, Taint]] = {}
        for target in targets:
            argmap = self._argmap_for(target, call, positional,
                                      keywords, receiver_taint, bound)
            argmaps[target] = argmap
            summary = self.flow.summaries.get(target)
            if summary is None:
                continue
            for tag in summary.returns:
                if isinstance(tag, ParamTag):
                    result |= argmap.get(tag.index, EMPTY)
                elif isinstance(tag, FieldTag) \
                        and isinstance(tag.inner, ParamTag):
                    for sub in argmap.get(tag.inner.index, EMPTY):
                        result.add(FieldTag(
                            tag.field,
                            sub.inner if isinstance(sub, FieldTag)
                            else sub))
                else:
                    result.add(tag)
            for index, sink in summary.param_sinks:
                for tag in flatten(argmap.get(index, EMPTY)):
                    if isinstance(tag, ParamTag):
                        self.param_sinks.add((tag.index, sink))
                    elif tag.kind in sink.kinds:
                        if self.collect is not None:
                            self._report_sink(tag, sink)
        if not targets:
            # Unresolved calls conservatively forward their inputs:
            # a method on an rng-tainted object (``rng.random()``)
            # or a helper fed a clock value stays tainted.
            result |= args_union
            result |= receiver_taint
            # In-place mutators taint their receiver variable:
            # ``acc.append(tainted)`` makes ``acc`` tainted.
            if isinstance(func_node, ast.Attribute) \
                    and func_node.attr in _MUTATOR_METHODS \
                    and args_union:
                self._taint_receiver(func_node.value,
                                     frozenset(flatten(args_union)))
        self._check_rng_crossing(call, targets, frozenset(result),
                                 argmaps)
        return frozenset(result)

    def _taint_receiver(self, node: ast.AST, taint: Taint) -> None:
        if isinstance(node, ast.Name):
            self.env[node.id] = self.env.get(node.id, EMPTY) | taint
        elif isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls"):
            key = f"self.{node.attr}"
            self.env[key] = self.env.get(key, EMPTY) | taint

    def _construct(self, class_qname: str, positional: List[Taint],
                   keywords: Dict[str, Taint]) -> Taint:
        info = self.project.classes[class_qname]
        out: Set[Tag] = set()

        def wrap(name: Optional[str], taint: Taint) -> None:
            for tag in taint:
                inner = tag.inner if isinstance(tag, FieldTag) \
                    else tag
                out.add(inner if name is None
                        else FieldTag(name, inner))

        for index, taint in enumerate(positional):
            wrap(info.fields[index]
                 if index < len(info.fields) else None, taint)
        for kw_name, taint in keywords.items():
            wrap(kw_name if kw_name in info.fields else None, taint)
        return frozenset(out)

    # -- statements --------------------------------------------------------

    def _bind(self, target: ast.AST, taint: Taint,
              value: Optional[ast.AST] = None,
              augment: bool = False) -> None:
        if isinstance(target, ast.Name):
            if augment:
                taint = taint | self.env.get(target.id, EMPTY)
            self.env[target.id] = taint
            if value is not None:
                inferred = self.project._infer_type(
                    self.module, value,
                    self.project._param_annotations(
                        self.module, self.func.node))
                if inferred:
                    self.local_classes[target.id] = inferred
                elif not augment and target.id in self.local_classes:
                    del self.local_classes[target.id]
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id in ("self", "cls"):
            key = f"self.{target.attr}"
            if augment:
                taint = taint | self.env.get(key, EMPTY)
            self.env[key] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for position, element in enumerate(target.elts):
                self._bind(element,
                           _project_field(taint, f"#{position}"))
        elif isinstance(target, ast.Subscript):
            # x[k] = tainted  -->  x absorbs the taint.
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = \
                    self.env.get(base.id, EMPTY) | taint
            elif isinstance(base, ast.Attribute) \
                    and isinstance(base.value, ast.Name) \
                    and base.value.id in ("self", "cls"):
                key = f"self.{base.attr}"
                self.env[key] = self.env.get(key, EMPTY) | taint
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)

    def exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def _merged(self, branches: Sequence[Sequence[ast.stmt]]) -> None:
        """Execute each branch from the same entry env; union exits."""
        entry = dict(self.env)
        exits: List[Dict[str, Taint]] = []
        for body in branches:
            self.env = dict(entry)
            self.exec_block(body)
            exits.append(self.env)
        merged: Dict[str, Taint] = {}
        for env in exits or [entry]:
            for name, taint in env.items():
                merged[name] = merged.get(name, EMPTY) | taint
        self.env = merged

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint, value=stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            taint = self.eval(stmt.value) if stmt.value else EMPTY
            self._bind(stmt.target, taint, value=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value)
            self._bind(stmt.target, taint, augment=True)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.returns |= self.eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._iteration_taint(stmt.iter)
            # Two body passes propagate loop-carried taint.
            for _ in range(2):
                self._bind(stmt.target, taint)
                self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for _ in range(2):
                self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._merged([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint,
                               value=item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            branches: List[Sequence[ast.stmt]] = [[]]
            branches.extend(h.body for h in stmt.handlers)
            self._merged(branches)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Nested function/class definitions are indexed as part of the
        # enclosing function's call graph; their bodies are not
        # re-walked here.


# --------------------------------------------------------------------------
# the engine


class FlowEngine:
    """Whole-program taint + reachability analysis over a Project."""

    MAX_PASSES = 8

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: Dict[str, Summary] = {}
        self.seen: Set[Tuple[str, str, int, str]] = set()
        self._det_cache: Dict[str, bool] = {}

    def det_scoped(self, qname: str) -> bool:
        """Whether ``qname`` lives in a DET-scoped file."""
        cached = self._det_cache.get(qname)
        if cached is not None:
            return cached
        info = self.project.functions.get(qname)
        value = bool(info) and scope_for_path(info.path).det \
            if info else False
        self._det_cache[qname] = value
        return value

    def run(self) -> List[Finding]:
        """Compute summaries to fixpoint, then emit all findings."""
        for _ in range(self.MAX_PASSES):
            changed = False
            for qname, info in self.project.functions.items():
                summary = _FunctionWalk(self, info, None).run()
                if self.summaries.get(qname) != summary:
                    self.summaries[qname] = summary
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        for info in self.project.functions.values():
            _FunctionWalk(self, info, findings).run()
        findings.extend(self.hot_findings())
        findings.extend(self.par_findings())
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # -- reachability-scoped HOT ------------------------------------------

    def hot_reachable(self) -> Set[str]:
        roots = self.project.match_functions(HOT_ROOT_PATTERNS)
        roots |= self.project.sim_callback_roots
        return self.project.reachable_from(roots)

    def hot_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        for qname in sorted(self.hot_reachable()):
            info = self.project.functions[qname]
            if not scope_for_path(info.path).par:
                continue  # lint package itself is exempt
            module = self.project.modules[info.module]
            self._scan_hot(info, module, info.node, 0, findings)
        return findings

    def _scan_hot(self, info: FunctionInfo, module: ModuleInfo,
                  node: ast.AST, loop_depth: int,
                  findings: List[Finding]) -> None:
        for child in ast.iter_child_nodes(node):
            depth = loop_depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                depth += 1
            if isinstance(child, ast.Call) \
                    and isinstance(child.func, ast.Name):
                if child.func.id == "print":
                    findings.append(self._hot_finding(
                        "HOT001", info, module, child,
                        "print() on the event-loop path (reachable "
                        "from the simulator kernel); report through "
                        "stats/obs and render from the CLI layer"))
                elif child.func.id == "open" and loop_depth > 0:
                    findings.append(self._hot_finding(
                        "HOT002", info, module, child,
                        "open() inside a loop on the event-loop "
                        "path; buffer and write once outside the "
                        "loop"))
            self._scan_hot(info, module, child, depth, findings)

    def _hot_finding(self, rule: str, info: FunctionInfo,
                     module: ModuleInfo, node: ast.AST,
                     message: str) -> Finding:
        line = getattr(node, "lineno", info.lineno)
        text = module.lines[line - 1].strip() \
            if 0 < line <= len(module.lines) else ""
        return Finding(rule=rule, path=info.path, line=line,
                       col=getattr(node, "col_offset", 0),
                       message=message, text=text)

    # -- PAR004: pool-reachable module state -------------------------------

    def par_roots(self) -> Set[str]:
        roots = set(self.project.pool_task_roots)
        roots |= self.project.match_functions(PAR_ROOT_PATTERNS)
        return roots

    def par_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        reachable = self.project.reachable_from(self.par_roots())
        for qname in sorted(reachable):
            info = self.project.functions[qname]
            if not scope_for_path(info.path).par:
                continue
            module = self.project.modules[info.module]
            shadowed = self._local_names(info.node)
            for node, name in self._module_mutations(
                    module, info.node, shadowed):
                line = getattr(node, "lineno", info.lineno)
                text = module.lines[line - 1].strip() \
                    if 0 < line <= len(module.lines) else ""
                findings.append(Finding(
                    rule="PAR004", path=info.path, line=line,
                    col=getattr(node, "col_offset", 0),
                    message=f"module-level state {name!r} mutated "
                            f"on the process-pool path (function "
                            f"reachable from a Point task); each "
                            f"worker mutates a private copy -- pass "
                            f"state through the task config",
                    text=text))
        return findings

    @staticmethod
    def _local_names(node: ast.AST) -> Set[str]:
        """Names bound (or declared global) inside the function."""
        names: Set[str] = set()
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args
                        + args.kwonlyargs):
                names.add(arg.arg)
            if args.vararg:
                names.add(args.vararg.arg)
            if args.kwarg:
                names.add(args.kwarg.arg)
        for child in ast.walk(node):
            if isinstance(child, ast.Name) \
                    and isinstance(child.ctx, ast.Store):
                names.add(child.id)
            elif isinstance(child, (ast.Global, ast.Nonlocal)):
                # `global` mutations are PAR001's jurisdiction.
                names.update(child.names)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                names.add(child.name)
        return names

    def _module_level_name(self, module: ModuleInfo, node: ast.AST,
                           shadowed: Set[str]) -> Optional[str]:
        """The module-level binding ``node`` refers to, if any."""
        if isinstance(node, ast.Name):
            if node.id in shadowed:
                return None
            if node.id in module.module_names:
                return node.id
            dotted = module.symbols.get(node.id)
            if dotted:
                owner, _, attr = dotted.rpartition(".")
                target = self.project.modules.get(owner)
                if target and attr in target.module_names:
                    return node.id
            return None
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id not in shadowed:
            owner_name = module.imports.get(node.value.id)
            target = self.project.modules.get(owner_name or "")
            if target and node.attr in target.module_names:
                return f"{node.value.id}.{node.attr}"
        return None

    def _module_mutations(self, module: ModuleInfo, node: ast.AST,
                          shadowed: Set[str],
                          ) -> List[Tuple[ast.AST, str]]:
        hits: List[Tuple[ast.AST, str]] = []
        for child in ast.walk(node):
            if isinstance(child, ast.Call) \
                    and isinstance(child.func, ast.Attribute) \
                    and child.func.attr in _MUTATOR_METHODS:
                name = self._module_level_name(
                    module, child.func.value, shadowed)
                if name is not None:
                    hits.append((child, name))
            elif isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = child.targets \
                    if isinstance(child, ast.Assign) \
                    else [child.target]
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    name = self._module_level_name(
                        module, target.value, shadowed)
                    if name is not None:
                        hits.append((target, name))
        return hits


def analyze_project(project: Project) -> List[Finding]:
    """All flow/reachability findings for ``project``."""
    return FlowEngine(project).run()
