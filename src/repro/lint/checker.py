"""The maclint AST analysis pass.

:func:`check_source` analyses one module's source text and returns the
surviving findings plus the pragma-suppressed ones.  Scoping is derived
from the file's path: rule families apply to the packages whose
guarantees they guard (see :data:`CORE_PACKAGES` and
:func:`scope_for_path`), so e.g. experiment drivers may construct their
own documented ``random.Random`` while the protocol core may not.

The pass is purely syntactic -- no imports of the checked code, no type
inference -- so it is safe to run on broken work-in-progress trees and
costs only an ``ast.parse`` per file.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.pragmas import PragmaSet, parse_pragmas
from repro.lint.rules import PAPER_CONSTANTS, RULES

#: Packages (under ``repro``) forming the deterministic protocol core:
#: DET and HOT rules apply here.
CORE_PACKAGES: Set[str] = {"sim", "core", "phy", "protocols", "traffic"}

#: Module paths (relative to ``repro``) exempt from specific families.
#: ``sim/rng.py`` is the one sanctioned home of ``random.Random``;
#: ``phy/timing.py`` is the one sanctioned home of the paper constants.
DET_EXEMPT_MODULES: Set[Tuple[str, ...]] = {("sim", "rng")}
PROTO_EXEMPT_MODULES: Set[Tuple[str, ...]] = {("phy", "timing")}

#: Packages outside the core that still must be deterministic.  The
#: fuzzer's whole value is reproducibility: a case must be a pure
#: function of (campaign seed, index), so generator randomness is
#: forced through seeded ``RandomStreams`` and wall-clock reads are
#: banned exactly as in the protocol core.
DET_EXTRA_PACKAGES: Set[str] = {"fuzz"}

#: Hot-path modules *outside* the core packages.  These sit on the
#: per-event or per-cycle path even though their packages are otherwise
#: engine/CLI-side: the profiler and metrics registry are called from
#: inside the simulation loop, and the Welford accumulators in
#: ``metrics/stats.py`` run once per delivered packet.  The HOT family
#: (no console/file I/O on the hot path) therefore applies to them too.
HOT_EXTRA_MODULES: Set[Tuple[str, ...]] = {
    ("obs", "profiler"),
    ("obs", "registry"),
    ("metrics", "stats"),
    # The service-mode cycle loop steps the simulator once per paced
    # cycle; its per-cycle bookkeeping is on the same critical path.
    ("serve", "service"),
    # The fuzz evaluation path runs whole simulations per case; its
    # per-case modules must not print or open files mid-campaign
    # (reporting lives in campaign/corpus/cli, which stay exempt).
    ("fuzz", "case"),
    ("fuzz", "generator"),
    ("fuzz", "oracles"),
    ("fuzz", "runner"),
    ("fuzz", "shrink"),
}

#: The linter itself is exempt from every family (its rule tables spell
#: out the very literals PROTO001 hunts for).
EXEMPT_PACKAGES: Set[str] = {"lint"}

_WALL_CLOCK_TIME_ATTRS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
    "process_time_ns",
}
_DATETIME_NOW_ATTRS = {"now", "utcnow", "today"}
_MUTABLE_FACTORIES = {
    "list", "dict", "set", "deque", "defaultdict", "Counter",
    "OrderedDict",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    text: str  # the stripped source line, for fingerprints/reports

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")

    def to_json(self) -> Dict[str, object]:
        from repro.lint.baseline import fingerprint

        return {
            "rule": self.rule,
            "family": RULES[self.rule].family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
            "fingerprint": fingerprint(self),
        }


@dataclass(frozen=True)
class Scope:
    """Which rule families apply to the file being checked."""

    det: bool
    par: bool
    proto: bool
    proto_core: bool  # core_only PROTO constants also apply
    hot: bool


@dataclass
class FileReport:
    """The outcome of checking one file."""

    path: str
    findings: List[Finding]
    suppressed: List[Finding]
    pragma_errors: List[str]


def repro_module_parts(path: str) -> Optional[Tuple[str, ...]]:
    """Path components below the ``repro`` package, if any.

    ``src/repro/phy/channel.py`` -> ``("phy", "channel")``; returns
    ``None`` for paths not under a ``repro`` directory.
    """
    pure = PurePosixPath(str(path).replace(os.sep, "/"))
    parts = [part for part in pure.parts if part not in (".", "")]
    if "repro" not in parts:
        return None
    index = len(parts) - 1 - parts[::-1].index("repro")
    below = parts[index + 1:]
    if not below:
        return None
    below[-1] = below[-1][:-3] if below[-1].endswith(".py") else below[-1]
    return tuple(below)


def scope_for_path(path: str) -> Scope:
    """Rule-family applicability for ``path``.

    Files outside any ``repro`` package (e.g. test fixtures) get the
    full core treatment so the checker is maximally strict on them.
    """
    parts = repro_module_parts(path)
    if parts is None:
        return Scope(det=True, par=True, proto=True, proto_core=True,
                     hot=True)
    package = parts[0]
    if package in EXEMPT_PACKAGES:
        return Scope(det=False, par=False, proto=False,
                     proto_core=False, hot=False)
    in_core = package in CORE_PACKAGES
    return Scope(
        det=(in_core or package in DET_EXTRA_PACKAGES)
        and parts not in DET_EXEMPT_MODULES,
        par=True,
        proto=parts not in PROTO_EXEMPT_MODULES,
        proto_core=in_core,
        hot=in_core or parts in HOT_EXTRA_MODULES,
    )


class _Visitor(ast.NodeVisitor):
    """Single-pass visitor emitting raw findings."""

    def __init__(self, path: str, scope: Scope,
                 lines: Sequence[str]) -> None:
        self.path = path
        self.scope = scope
        self.lines = lines
        self.findings: List[Finding] = []
        # import tracking
        self.random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.datetime_aliases: Set[str] = set()
        self.from_random: Dict[str, str] = {}
        self.from_time: Dict[str, str] = {}
        self.datetime_classes: Set[str] = set()
        # structural context
        self.func_depth = 0
        self.loop_depth = 0
        self.class_depth = 0
        self.local_funcs: List[Set[str]] = []

    # -- helpers ---------------------------------------------------------------

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = self.lines[line - 1].strip() \
            if 0 < line <= len(self.lines) else ""
        self.findings.append(Finding(rule=rule, path=self.path,
                                     line=line, col=col,
                                     message=message, text=text))

    # -- imports ---------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_aliases.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self.from_random[alias.asname or alias.name] = alias.name
        elif node.module == "time":
            for alias in node.names:
                self.from_time[alias.asname or alias.name] = alias.name
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_classes.add(alias.asname or alias.name)

    # -- structure -------------------------------------------------------------

    def _visit_function(self, node: ast.AST, name: Optional[str]) -> None:
        if name is not None and self.func_depth > 0 and self.local_funcs:
            self.local_funcs[-1].add(name)
        self.func_depth += 1
        self.local_funcs.append(set())
        self.generic_visit(node)
        self.local_funcs.pop()
        self.func_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, None)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_depth += 1
        self.generic_visit(node)
        self.class_depth -= 1

    def _visit_loop(self, node: ast.AST) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    # -- DET004: set iteration -------------------------------------------------

    def _check_iterable(self, iterable: ast.expr) -> None:
        if not self.scope.det:
            return
        is_set = isinstance(iterable, (ast.Set, ast.SetComp))
        if not is_set and isinstance(iterable, ast.Call):
            func = iterable.func
            is_set = isinstance(func, ast.Name) \
                and func.id in ("set", "frozenset")
        if is_set:
            self._flag("DET004", iterable,
                       "iteration over a set: order depends on "
                       "PYTHONHASHSEED/insertion history; iterate "
                       "sorted(...) or an order-preserving container")

    # -- PAR001/PAR002 ---------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        if self.scope.par and self.func_depth > 0:
            names = ", ".join(node.names)
            self._flag("PAR001", node,
                       f"`global {names}`: module state mutated from a "
                       f"function is per-process under --jobs N; pass "
                       f"state explicitly or confine it to the parent "
                       f"process")
        self.generic_visit(node)

    def _check_module_assign(self, target: ast.expr,
                             value: Optional[ast.expr]) -> None:
        if not self.scope.par or value is None:
            return
        if self.func_depth > 0 or self.class_depth > 0:
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if name.isupper() or name.startswith("__"):
            return
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp))
        if not mutable and isinstance(value, ast.Call):
            func = value.func
            mutable = isinstance(func, ast.Name) \
                and func.id in _MUTABLE_FACTORIES
        if mutable:
            self._flag("PAR002", target,
                       f"module-level mutable container {name!r}: "
                       f"per-process state diverges across pool "
                       f"workers; pass it through the task config or "
                       f"mark it an immutable UPPER_CASE constant")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_module_assign(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_module_assign(node.target, node.value)
        self.generic_visit(node)

    # -- PROTO001 --------------------------------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if not self.scope.proto:
            return
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        for constant, types, symbol, core_only in PAPER_CONSTANTS:
            if type(value) not in types or value != constant:
                continue
            if core_only and not self.scope.proto_core:
                continue
            self._flag("PROTO001", node,
                       f"paper constant {value!r} re-typed as a "
                       f"literal; use repro.phy.timing.{symbol}")
            break

    # -- calls: DET001/002/003, PAR003, HOT001/002 -----------------------------

    def _is_wall_clock(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) \
                    and base.id in self.time_aliases \
                    and func.attr in _WALL_CLOCK_TIME_ATTRS:
                return True
            if func.attr in _DATETIME_NOW_ATTRS:
                if isinstance(base, ast.Name) \
                        and base.id in self.datetime_classes:
                    return True
                if isinstance(base, ast.Attribute) \
                        and base.attr in ("datetime", "date") \
                        and isinstance(base.value, ast.Name) \
                        and base.value.id in self.datetime_aliases:
                    return True
        elif isinstance(func, ast.Name):
            if self.from_time.get(func.id) in _WALL_CLOCK_TIME_ATTRS:
                return True
        return False

    def _check_point_task(self, node: ast.Call) -> None:
        fn_arg: Optional[ast.expr] = None
        for keyword in node.keywords:
            if keyword.arg == "fn":
                fn_arg = keyword.value
                break
        if fn_arg is None and node.args:
            fn_arg = node.args[0]
        if fn_arg is None:
            return
        if isinstance(fn_arg, ast.Lambda):
            self._flag("PAR003", fn_arg,
                       "lambda as a Point task function: not picklable "
                       "by reference; use a module-level function")
        elif isinstance(fn_arg, ast.Name):
            for local_names in self.local_funcs:
                if fn_arg.id in local_names:
                    self._flag(
                        "PAR003", fn_arg,
                        f"nested function {fn_arg.id!r} as a Point "
                        f"task function: closures do not cross the "
                        f"process boundary; hoist it to module level")
                    break

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in self.random_aliases:
            if self.scope.det:
                if func.attr in ("Random", "SystemRandom"):
                    self._flag("DET003", node,
                               f"direct random.{func.attr} "
                               f"construction; derive the stream from "
                               f"repro.sim.rng.RandomStreams instead")
                else:
                    self._flag("DET001", node,
                               f"module-global random.{func.attr}(); "
                               f"draw from an injected sim.rng stream "
                               f"instead")
        elif isinstance(func, ast.Name):
            origin = self.from_random.get(func.id)
            if origin is not None and self.scope.det:
                if origin in ("Random", "SystemRandom"):
                    self._flag("DET003", node,
                               f"direct {origin} construction; derive "
                               f"the stream from "
                               f"repro.sim.rng.RandomStreams instead")
                else:
                    self._flag("DET001", node,
                               f"module-global random function "
                               f"{origin}(); draw from an injected "
                               f"sim.rng stream instead")
            if func.id == "print" and self.scope.hot:
                self._flag("HOT001", node,
                           "print() in a hot-path module; report "
                           "through stats/obs and render from the CLI "
                           "layer")
            if func.id == "open" and self.scope.hot \
                    and self.loop_depth > 0:
                self._flag("HOT002", node,
                           "open() inside a loop in a hot-path module; "
                           "buffer and write once outside the loop")
            if func.id == "Point" and self.scope.par:
                self._check_point_task(node)
        if self.scope.det and self._is_wall_clock(func):
            self._flag("DET002", node,
                       "wall-clock read in simulation code; use "
                       "sim.now (simulated seconds) instead")
        self.generic_visit(node)


class LintSyntaxError(Exception):
    """Raised when a checked file does not parse."""

    def __init__(self, path: str, error: SyntaxError):
        super().__init__(f"{path}:{error.lineno}: {error.msg}")
        self.path = path
        self.error = error


def check_source(source: str, path: str = "<string>",
                 pragmas: Optional[PragmaSet] = None,
                 scope: Optional[Scope] = None) -> FileReport:
    """Analyse ``source`` as the module at ``path``.

    ``scope`` overrides the path-derived rule-family scoping; the
    project-level driver uses this to hand HOT scoping over to the
    call-graph reachability pass.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintSyntaxError(path, error) from error
    pragma_set = pragmas if pragmas is not None else parse_pragmas(source)
    if scope is None:
        scope = scope_for_path(path)
    visitor = _Visitor(path, scope, source.splitlines())
    visitor.visit(tree)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(visitor.findings,
                          key=lambda f: (f.line, f.col, f.rule)):
        if pragma_set.suppresses(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return FileReport(path=path, findings=findings,
                      suppressed=suppressed,
                      pragma_errors=list(pragma_set.errors))


def check_file(path: str, display_path: Optional[str] = None) -> FileReport:
    """Analyse the file at ``path`` (reported as ``display_path``)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return check_source(source, display_path or path)
