"""The maclint v2 project driver.

:func:`check_project` is the one entry point that combines both
analysis tiers:

1. the **syntactic** per-module pass (:func:`repro.lint.checker
   .check_source`) -- DET/PAR/PROTO rules exactly as in v1, but with
   the HOT family *disabled* for files under the ``repro`` package:
   curated hot-path module lists are superseded by call-graph
   reachability (files outside the tree -- ad-hoc fixtures -- keep the
   maximally strict v1 behaviour, reachability included, since they
   form their own tiny project);
2. the **whole-program** pass (:mod:`repro.lint.flow`) -- the taint
   engine plus reachability-scoped HOT and PAR004, run over a
   :class:`repro.lint.project.Project` built from *every* file handed
   in, so taint crosses file boundaries.

The analysis universe and the reporting set are distinct: ``repro lint
src/repro/serve`` must still see a clock value that a serve function
sends into an engine journal helper, so the driver indexes the whole
universe but only reports findings whose location is in a target file.
Pragma suppression applies at the finding's own line -- for a
cross-function flow that is the **sink** line, so one justified
``# maclint: disable=FLOW102`` where the value lands silences the
whole chain without blessing the source.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.checker import (
    Finding,
    LintSyntaxError,
    check_source,
    repro_module_parts,
    scope_for_path,
)
from repro.lint.flow import analyze_project
from repro.lint.pragmas import PragmaSet, parse_pragmas
from repro.lint.project import Project


@dataclass
class ProjectReport:
    """The outcome of a whole-project check."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    checked_files: int = 0


def check_project(sources: Sequence[Tuple[str, str]],
                  targets: Optional[Set[str]] = None,
                  flow: bool = True) -> ProjectReport:
    """Check ``(display_path, source)`` pairs as one project.

    ``targets`` restricts which files findings are *reported* for
    (default: all of them); every file always participates in the
    project index.  ``flow=False`` falls back to the pure v1
    per-module pass, curated HOT scoping included.
    """
    report = ProjectReport()
    pragma_sets: Dict[str, PragmaSet] = {}
    parsed: List[Tuple[str, str]] = []
    target_set = targets if targets is not None \
        else {path for path, _ in sources}
    report.checked_files = len(target_set)
    seen: Set[Tuple[str, str, int]] = set()

    for path, source in sources:
        pragmas = parse_pragmas(source)
        pragma_sets[path] = pragmas
        in_tree = repro_module_parts(path) is not None
        scope = scope_for_path(path)
        if flow and in_tree:
            scope = replace(scope, hot=False)
        try:
            file_report = check_source(source, path, pragmas=pragmas,
                                       scope=scope)
        except LintSyntaxError as error:
            if path in target_set:
                report.errors.append(f"syntax error: {error}")
            continue
        parsed.append((path, source))
        if path not in target_set:
            continue
        for finding in file_report.findings:
            seen.add((finding.rule, finding.path, finding.line))
            report.findings.append(finding)
        report.suppressed.extend(file_report.suppressed)
        report.errors.extend(f"{path}: {message}"
                             for message in file_report.pragma_errors)

    if flow and parsed:
        project = Project.build(parsed)
        for finding in analyze_project(project):
            if finding.path not in target_set:
                continue
            key = (finding.rule, finding.path, finding.line)
            if key in seen:
                continue
            seen.add(key)
            pragmas = pragma_sets.get(finding.path)
            if pragmas is not None and pragmas.suppresses(
                    finding.rule, finding.line):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)

    report.findings.sort(
        key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
