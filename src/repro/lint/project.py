"""The maclint whole-program index: symbols, classes, call graph.

maclint v1 was strictly per-module: each file was parsed, matched
against syntactic rules, and forgotten.  That cannot see a tainted
value cross a function boundary, and it forced rule scoping onto
hand-curated module lists.  This module builds the project-wide context
the v2 flow pass (:mod:`repro.lint.flow`) runs over:

* a **symbol table** -- every module, top-level function, class,
  method, and module-level binding under the analysis universe, keyed
  by dotted qualified name (``repro.sim.core.Simulator.step``);
* per-module **import maps** so a bare name or an ``alias.attr``
  expression resolves to the dotted thing it denotes (project function,
  external module function like ``random.random``, or class);
* a **class hierarchy** with per-class method tables and inferred
  instance-attribute types (``self.journal = ServiceJournal(...)`` in
  ``__init__`` types ``self.journal`` for every other method);
* an interprocedural **call graph** with three edge kinds: direct
  calls, virtual dispatch (``self.m()`` resolves through the MRO plus
  subclass overrides), and *reference* edges for function objects
  passed as arguments (the event loop and the process pool both invoke
  code they only ever received by reference);
* **reachability** queries over that graph, which replace v1's curated
  scoping lists: HOT rules apply to functions reachable from the
  simulator event loop, and the PAR004 family to functions reachable
  from process-pool entry points (``Point`` task functions).

Everything here is still pure ``ast`` -- no imports of the checked
code, no runtime type information -- so the index is safe to build on
broken work-in-progress trees.  Resolution is deliberately
name-and-structure based: unresolved calls stay unresolved rather than
guessing, so reachability over-approximates only through declared
structure (bases, overrides, references), not through string matching.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.checker import repro_module_parts

#: Sentinel "class" qnames for builtin container types the flow pass
#: cares about (iteration-order taint) and hashlib digest objects.
DICT_TYPE = "builtins.dict"
SET_TYPE = "builtins.set"
HASH_TYPE = "hashlib._Hash"

_CONTAINER_CTORS = {
    "dict": DICT_TYPE, "set": SET_TYPE, "frozenset": SET_TYPE,
    "defaultdict": DICT_TYPE, "OrderedDict": DICT_TYPE,
    "Counter": DICT_TYPE,
}

_HASHLIB_CTORS = {
    "md5", "sha1", "sha224", "sha256", "sha384", "sha512",
    "blake2b", "blake2s", "sha3_256", "sha3_512", "new",
}

#: Attribute names that register a callback with the simulator event
#: loop (or a channel).  Function references passed to these run *from
#: inside* the event loop, so they seed HOT reachability even though no
#: syntactic call edge exists.
SIM_REGISTRAR_METHODS = {
    "call_at", "add_callback", "add_listener", "attach",
}

#: Dotted names whose call sites mark their ``fn`` argument (first
#: positional or ``fn=`` keyword) as a process-pool entry point.
POOL_TASK_WRAPPERS = {"repro.engine.spec.Point", "Point"}


@dataclass
class ClassInfo:
    """One class definition in the analysis universe."""

    qname: str
    name: str
    module: str
    bases: List[str] = field(default_factory=list)
    #: method simple name -> function qname
    methods: Dict[str, str] = field(default_factory=dict)
    #: self attribute -> class qname (or a builtin sentinel above)
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: annotated class-level fields in declaration order -- the
    #: positional constructor signature of dataclass-style classes
    fields: List[str] = field(default_factory=list)


@dataclass
class FunctionInfo:
    """One function or method (nested defs fold into their parent)."""

    qname: str
    module: str
    path: str
    name: str
    node: ast.AST
    lineno: int
    #: qname of the enclosing class, for methods
    cls: Optional[str] = None


@dataclass
class CallSite:
    """One resolved ``ast.Call`` inside a function body."""

    node: ast.Call
    #: project function qnames this call may invoke
    targets: Tuple[str, ...] = ()
    #: dotted external name (``random.random``, ``time.time``) if any
    external: Optional[str] = None
    #: project functions passed by reference as arguments
    ref_targets: Tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """Per-module symbol and import context."""

    name: str
    path: str
    tree: ast.Module
    lines: List[str]
    #: import alias -> dotted module name (``np`` -> ``numpy``)
    imports: Dict[str, str] = field(default_factory=dict)
    #: from-imported name -> dotted target (``Point`` ->
    #: ``repro.engine.spec.Point``)
    symbols: Dict[str, str] = field(default_factory=dict)
    #: top-level function simple name -> qname
    functions: Dict[str, str] = field(default_factory=dict)
    #: class simple name -> qname
    classes: Dict[str, str] = field(default_factory=dict)
    #: module-level names bound to mutable containers -> first lineno
    module_mutables: Dict[str, int] = field(default_factory=dict)
    #: every module-level binding (constants included)
    module_names: Set[str] = field(default_factory=set)


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``.

    Files under a ``repro`` package map to their real import path;
    out-of-tree files (test fixtures) get their bare stem so sibling
    fixtures can import each other by name.
    """
    parts = repro_module_parts(path)
    if parts is not None:
        return "repro." + ".".join(parts)
    stem = path.replace("\\", "/").rsplit("/", 1)[-1]
    return stem[:-3] if stem.endswith(".py") else stem


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The bare textual name of a simple annotation, if recoverable."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the outermost identifier.
        text = node.value.strip().split("[", 1)[0]
        return text.rsplit(".", 1)[-1] if text.isidentifier() or \
            "." in text else None
    if isinstance(node, ast.Subscript):
        return _annotation_name(node.value)
    return None


_DICT_ANNOTATIONS = {"dict", "Dict", "DefaultDict", "OrderedDict",
                     "Counter", "Mapping", "MutableMapping"}
_SET_ANNOTATIONS = {"set", "Set", "FrozenSet", "frozenset",
                    "MutableSet", "AbstractSet"}


def container_type_of_annotation(node: Optional[ast.AST]
                                 ) -> Optional[str]:
    """``DICT_TYPE``/``SET_TYPE`` for dict/set-flavoured annotations."""
    name = _annotation_name(node)
    if name in _DICT_ANNOTATIONS:
        return DICT_TYPE
    if name in _SET_ANNOTATIONS:
        return SET_TYPE
    return None


def is_mutable_container_expr(node: Optional[ast.AST]) -> bool:
    """Whether ``node`` constructs a mutable container (v1 PAR002)."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "deque",
                                "defaultdict", "Counter", "OrderedDict")
    return False


class Project:
    """The whole-program index over one analysis universe."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: class qname -> direct subclass qnames
        self.subclasses: Dict[str, List[str]] = {}
        #: function qname -> outgoing call sites
        self.calls: Dict[str, List[CallSite]] = {}
        #: function qname -> successor function qnames
        self.edges: Dict[str, Set[str]] = {}
        #: functions registered as simulator event callbacks
        self.sim_callback_roots: Set[str] = set()
        #: functions passed as process-pool ``Point`` tasks
        self.pool_task_roots: Set[str] = set()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, sources: Sequence[Tuple[str, str]]) -> "Project":
        """Index ``(display_path, source_text)`` pairs.

        Files that fail to parse are skipped (the syntactic pass
        reports their errors); the rest of the universe still indexes.
        """
        project = cls()
        for path, source in sources:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            project._index_module(path, source, tree)
        project._link_classes()
        for module in project.modules.values():
            project._index_attr_types(module)
        for info in list(project.functions.values()):
            project._index_calls(info)
        return project

    def _index_module(self, path: str, source: str,
                      tree: ast.Module) -> None:
        modname = module_name_for_path(path)
        module = ModuleInfo(name=modname, path=path, tree=tree,
                            lines=source.splitlines())
        # Imports anywhere in the file (this codebase imports lazily
        # inside functions a lot); visibility is over-approximated to
        # the whole module, which is harmless for resolution.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    module.imports[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    module.symbols[bound] = \
                        f"{node.module}.{alias.name}"
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                qname = f"{modname}.{node.name}"
                module.functions[node.name] = qname
                self.functions[qname] = FunctionInfo(
                    qname=qname, module=modname, path=path,
                    name=node.name, node=node, lineno=node.lineno)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets \
                    if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    module.module_names.add(target.id)
                    if is_mutable_container_expr(node.value):
                        module.module_mutables.setdefault(
                            target.id, target.lineno)
        self.modules[modname] = module
        self.by_path[path] = module

    def _index_class(self, module: ModuleInfo,
                     node: ast.ClassDef) -> None:
        qname = f"{module.name}.{node.name}"
        info = ClassInfo(qname=qname, name=node.name,
                         module=module.name)
        for base in node.bases:
            dotted = self._dotted_text(base)
            if dotted:
                info.bases.append(dotted)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                fq = f"{qname}.{item.name}"
                info.methods[item.name] = fq
                self.functions[fq] = FunctionInfo(
                    qname=fq, module=module.name, path=module.path,
                    name=item.name, node=item, lineno=item.lineno,
                    cls=qname)
            elif isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name):
                info.fields.append(item.target.id)
        module.classes[node.name] = qname
        self.classes[qname] = info

    @staticmethod
    def _dotted_text(node: ast.AST) -> Optional[str]:
        """``a.b.c`` as text for Name/Attribute chains, else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def _link_classes(self) -> None:
        """Resolve base-class names and build the subclass map."""
        for info in self.classes.values():
            resolved: List[str] = []
            module = self.modules[info.module]
            for base in info.bases:
                target = self.resolve_dotted(module, base)
                if target in self.classes:
                    resolved.append(target)
                    self.subclasses.setdefault(target, []) \
                        .append(info.qname)
            info.bases = resolved

    def _index_attr_types(self, module: ModuleInfo) -> None:
        """Infer ``self.x`` types from assignments inside methods."""
        for class_name, qname in module.classes.items():
            info = self.classes[qname]
            for method_qname in info.methods.values():
                func = self.functions[method_qname]
                params = self._param_annotations(module, func.node)
                for node in ast.walk(func.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            continue
                        inferred = self._infer_type(
                            module, node.value, params)
                        if inferred:
                            info.attr_types.setdefault(
                                target.attr, inferred)

    def _param_annotations(self, module: ModuleInfo,
                           node: ast.AST) -> Dict[str, str]:
        """param name -> class qname (or container sentinel)."""
        types: Dict[str, str] = {}
        args = getattr(node, "args", None)
        if args is None:
            return types
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            container = container_type_of_annotation(arg.annotation)
            if container:
                types[arg.arg] = container
                continue
            name = _annotation_name(arg.annotation)
            if name is None:
                continue
            target = self.resolve_name(module, name)
            if target in self.classes:
                types[arg.arg] = target
        return types

    def _infer_type(self, module: ModuleInfo, value: ast.AST,
                    params: Dict[str, str]) -> Optional[str]:
        """Class/sentinel type of an assigned expression, if known."""
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return DICT_TYPE
        if isinstance(value, (ast.Set, ast.SetComp)):
            return SET_TYPE
        if isinstance(value, ast.Name):
            return params.get(value.id)
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                if func.id in _CONTAINER_CTORS:
                    return _CONTAINER_CTORS[func.id]
                target = self.resolve_name(module, func.id)
                if target in self.classes:
                    return target
            dotted = self._dotted_text(func)
            if dotted:
                target = self.resolve_dotted(module, dotted)
                if target in self.classes:
                    return target
                if target and target.startswith("hashlib."):
                    return HASH_TYPE
        return None

    # -- name resolution ---------------------------------------------------

    def resolve_name(self, module: ModuleInfo,
                     name: str) -> Optional[str]:
        """Dotted target a bare ``name`` denotes inside ``module``."""
        if name in module.symbols:
            return module.symbols[name]
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        if name in module.imports:
            return module.imports[name]
        return None

    def resolve_dotted(self, module: ModuleInfo,
                       dotted: str) -> Optional[str]:
        """Resolve ``a.b.c`` text through the module's import maps."""
        head, _, rest = dotted.partition(".")
        base = self.resolve_name(module, head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base

    def resolve_method(self, class_qname: str,
                       method: str) -> List[str]:
        """Possible targets of ``instance.method()``.

        The static target (first definition up the MRO) plus every
        override in the subclass closure -- virtual dispatch.
        """
        targets: List[str] = []
        static = self._mro_lookup(class_qname, method)
        if static:
            targets.append(static)
        seen = {class_qname}
        queue = deque(self.subclasses.get(class_qname, ()))
        while queue:
            sub = queue.popleft()
            if sub in seen:
                continue
            seen.add(sub)
            info = self.classes.get(sub)
            if info is None:
                continue
            if method in info.methods:
                targets.append(info.methods[method])
            queue.extend(self.subclasses.get(sub, ()))
        return targets

    def _mro_lookup(self, class_qname: str,
                    method: str) -> Optional[str]:
        seen: Set[str] = set()
        queue = deque([class_qname])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def instance_class(self, module: ModuleInfo, func: FunctionInfo,
                       node: ast.AST,
                       local_classes: Dict[str, str]
                       ) -> Optional[str]:
        """Class qname of the instance an expression evaluates to."""
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls") and func.cls:
                return func.cls
            if node.id in local_classes:
                return local_classes[node.id]
            target = self.resolve_name(module, node.id)
            return target if target in self.classes else None
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls") and func.cls:
            info = self.classes.get(func.cls)
            while info is not None:
                if node.attr in info.attr_types:
                    return info.attr_types[node.attr]
                info = self.classes.get(info.bases[0]) \
                    if info.bases else None
            return None
        if isinstance(node, ast.Call):
            module_info = self.modules.get(func.module, module)
            return self._infer_type(module_info, node, {})
        return None

    def resolve_call(self, func: FunctionInfo, call: ast.Call,
                     local_classes: Dict[str, str]
                     ) -> Tuple[Tuple[str, ...], Optional[str]]:
        """``(project targets, external dotted name)`` for a call."""
        module = self.modules[func.module]
        node = call.func
        if isinstance(node, ast.Name):
            target = self.resolve_name(module, node.id)
            if target in self.functions:
                return (target,), None
            if target in self.classes:
                init = self._mro_lookup(target, "__init__")
                return ((init,) if init else ()), target
            if target is not None:
                return (), target
            return (), None
        if isinstance(node, ast.Attribute):
            receiver = node.value
            # module alias: time.monotonic(), random.random(), ...
            if isinstance(receiver, ast.Name) \
                    and receiver.id in module.imports \
                    and receiver.id not in local_classes:
                dotted = f"{module.imports[receiver.id]}.{node.attr}"
                resolved = self.resolve_dotted(module, dotted) \
                    if dotted.startswith(tuple(module.symbols)) \
                    else dotted
                if resolved in self.functions:
                    return (resolved,), None
                return (), dotted
            # dotted module path: repro.phy.timing.foo(...)
            dotted = self._dotted_text(node)
            if dotted:
                resolved = self.resolve_dotted(module, dotted)
                if resolved in self.functions:
                    return (resolved,), None
            # instance method through a known receiver class
            klass = self.instance_class(module, func, receiver,
                                        local_classes)
            if klass in (DICT_TYPE, SET_TYPE, HASH_TYPE):
                return (), f"{klass}.{node.attr}"
            if klass is not None:
                targets = self.resolve_method(klass, node.attr)
                if targets:
                    return tuple(targets), None
                return (), None
            # self.m() fallback already covered by instance_class;
            # everything else stays unresolved.
        return (), None

    # -- call graph --------------------------------------------------------

    def _index_calls(self, func: FunctionInfo) -> None:
        module = self.modules[func.module]
        sites: List[CallSite] = []
        edges: Set[str] = set()
        local_classes: Dict[str, str] = {}
        # Source-order walk: NodeVisitor visits fields in order, so
        # assignments that type a receiver precede calls through it.
        project = self

        class _Walk(ast.NodeVisitor):
            def visit_Assign(self, node: ast.Assign) -> None:
                inferred = project._infer_type(
                    module, node.value,
                    project._param_annotations(module, func.node))
                if inferred:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_classes[target.id] = inferred
                self.generic_visit(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                if isinstance(node.target, ast.Name):
                    container = container_type_of_annotation(
                        node.annotation)
                    if container:
                        local_classes[node.target.id] = container
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                targets, external = project.resolve_call(
                    func, node, local_classes)
                refs = project._reference_args(
                    module, func, node, local_classes)
                sites.append(CallSite(node=node, targets=targets,
                                      external=external,
                                      ref_targets=tuple(refs)))
                edges.update(targets)
                edges.update(refs)
                project._note_entry_points(
                    module, func, node, targets, external, refs,
                    local_classes)
                self.generic_visit(node)

        _Walk().visit(func.node)
        self.calls[func.qname] = sites
        self.edges[func.qname] = edges

    def _reference_args(self, module: ModuleInfo, func: FunctionInfo,
                        call: ast.Call,
                        local_classes: Dict[str, str]) -> List[str]:
        """Project functions passed by reference as arguments."""
        refs: List[str] = []
        values = list(call.args) \
            + [kw.value for kw in call.keywords]
        for value in values:
            if isinstance(value, ast.Name):
                target = self.resolve_name(module, value.id)
                if target in self.functions:
                    refs.append(target)
            elif isinstance(value, ast.Attribute) \
                    and isinstance(value.value, ast.Name):
                klass = self.instance_class(
                    module, func, value.value, local_classes)
                if klass is not None:
                    refs.extend(self.resolve_method(klass,
                                                    value.attr))
        return refs

    def _note_entry_points(self, module: ModuleInfo,
                           func: FunctionInfo, call: ast.Call,
                           targets: Tuple[str, ...],
                           external: Optional[str],
                           refs: List[str],
                           local_classes: Dict[str, str]) -> None:
        """Record sim-callback and pool-task roots at this call."""
        node = call.func
        method = node.attr if isinstance(node, ast.Attribute) \
            else node.id if isinstance(node, ast.Name) else None
        if method in SIM_REGISTRAR_METHODS:
            self.sim_callback_roots.update(refs)
            # sim.process(self.worker()) registers the *call result*:
            # the generator function runs from inside the event loop.
            for value in list(call.args) \
                    + [kw.value for kw in call.keywords]:
                if isinstance(value, ast.Call):
                    inner, _ = self.resolve_call(func, value,
                                                 local_classes)
                    self.sim_callback_roots.update(inner)
        is_point = external in POOL_TASK_WRAPPERS \
            or (isinstance(node, ast.Name) and node.id == "Point") \
            or any(t.endswith(".Point.__init__") for t in targets)
        if is_point:
            fn_arg: Optional[ast.AST] = None
            for keyword in call.keywords:
                if keyword.arg == "fn":
                    fn_arg = keyword.value
            if fn_arg is None and call.args:
                fn_arg = call.args[0]
            if isinstance(fn_arg, ast.Name):
                target = self.resolve_name(module, fn_arg.id)
                if target in self.functions:
                    self.pool_task_roots.add(target)

    # -- reachability ------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Function qnames reachable from ``roots`` over all edges."""
        seen: Set[str] = set()
        queue = deque(root for root in roots
                      if root in self.functions)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.edges.get(current, ()))
        return seen

    def match_functions(self, patterns: Iterable[str]) -> Set[str]:
        """Functions whose qname matches one of ``patterns``.

        A pattern is a dotted qname; a trailing ``.*`` matches every
        function in that prefix.
        """
        matched: Set[str] = set()
        for pattern in patterns:
            if pattern.endswith(".*"):
                prefix = pattern[:-1]
                matched.update(q for q in self.functions
                               if q.startswith(prefix))
            elif pattern in self.functions:
                matched.add(pattern)
        return matched

    def function_at(self, path: str, line: int
                    ) -> Optional[FunctionInfo]:
        """The innermost indexed function containing ``path:line``."""
        best: Optional[FunctionInfo] = None
        for info in self.functions.values():
            if info.path != path:
                continue
            end = getattr(info.node, "end_lineno", info.lineno)
            if info.lineno <= line <= (end or info.lineno):
                if best is None or info.lineno >= best.lineno:
                    best = info
        return best
