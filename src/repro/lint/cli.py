"""The ``repro lint`` command.

Usage::

    python -m repro lint                      # whole tree vs baseline
    python -m repro lint src/repro/shard      # subtree
    python -m repro lint --changed            # files touched vs HEAD
    python -m repro lint --json               # machine-readable report
    python -m repro lint --sarif out.sarif    # SARIF 2.1.0 report file
    python -m repro lint --ratchet            # also fail on stale baseline
    python -m repro lint --write-baseline     # regenerate the baseline
    python -m repro lint --list-rules         # rule catalogue

Scoped runs (explicit paths, ``--changed``) still index the whole
``src/repro`` tree when any target lives inside it, so cross-module
taint flows into or out of the scope are seen; findings are only
*reported* for the targeted files.  Out-of-tree targets (ad-hoc
fixtures) form their own project.

Exit status: 0 when no *new* findings (baselined and pragma-suppressed
findings are fine), 1 when new findings exist (or, under ``--ratchet``,
when the baseline carries stale entries), 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Set, Tuple

from repro.lint.api import ProjectReport, check_project
from repro.lint.baseline import (
    BASELINE_FILENAME,
    fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.rules import RULES
from repro.lint.sarif import sarif_report

JSON_SCHEMA = "repro/maclint@2"


def repo_root() -> Path:
    """The repository root (best effort: package parent, else cwd)."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "pyproject.toml").exists():
        return candidate
    return Path.cwd()


def default_targets(root: Path) -> List[Path]:
    source_tree = root / "src" / "repro"
    if source_tree.is_dir():
        return [source_tree]
    return [Path.cwd()]


def discover_files(targets: List[Path]) -> List[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(
                path for path in sorted(target.rglob("*.py"))
                if "__pycache__" not in path.parts)
        else:
            files.append(target)
    seen = set()
    unique: List[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def display_path(path: Path, root: Path) -> str:
    """Root-relative POSIX path (stable fingerprints from any cwd)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def changed_files(root: Path) -> Optional[List[Path]]:
    """Python files touched vs HEAD (tracked diffs + untracked).

    Returns ``None`` when git itself fails (not a repository, no
    HEAD...); the caller turns that into a usage error.
    """
    listed: List[str] = []
    for command in (
            ["git", "diff", "--name-only", "HEAD"],
            ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                command, cwd=str(root), capture_output=True,
                text=True, check=True)
        except (OSError, subprocess.CalledProcessError):
            return None
        listed.extend(proc.stdout.splitlines())
    files: List[Path] = []
    seen: Set[str] = set()
    for name in listed:
        if not name.endswith(".py") or name in seen:
            continue
        seen.add(name)
        path = root / name
        if path.is_file():
            files.append(path)
    return sorted(files)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to check "
                             "(default: src/repro)")
    parser.add_argument("--changed", action="store_true",
                        help="check only .py files changed vs HEAD "
                             "(tracked diffs plus untracked files)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    parser.add_argument("--sarif", metavar="FILE", default=None,
                        help="also write a SARIF 2.1.0 report to FILE")
    parser.add_argument("--no-flow", action="store_true",
                        help="skip the whole-program taint/reachability "
                             "pass (v1 per-module rules only)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file (default: "
                             f"{BASELINE_FILENAME} at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every "
                             "finding as new")
    parser.add_argument("--ratchet", action="store_true",
                        help="also fail when baseline entries no "
                             "longer match any finding (full-tree "
                             "runs only)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather all current findings into "
                             "the baseline file and exit 0")
    parser.add_argument("--allow-baseline-growth", action="store_true",
                        help="let --write-baseline add entries beyond "
                             "the existing baseline (it refuses by "
                             "default: the baseline may only shrink)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def _list_rules(as_json: bool) -> int:
    if as_json:
        print(json.dumps({
            rule_id: {
                "family": rule.family,
                "name": rule.name,
                "summary": rule.summary,
                "rationale": rule.rationale,
            } for rule_id, rule in sorted(RULES.items())
        }, indent=2))
        return 0
    for rule_id, rule in sorted(RULES.items()):
        print(f"{rule_id} [{rule.family}] {rule.name}")
        print(f"    {rule.summary}")
        print(f"    {rule.rationale}")
    return 0


def _collect(files: List[Path], root: Path,
             flow: bool) -> Tuple[ProjectReport, List[str]]:
    """Run the project check over ``files``.

    The analysis universe is the target files plus -- whenever any
    target is inside ``src/repro`` -- the whole tree, so cross-module
    flows are visible from a scoped run; findings are reported for the
    targets only.
    """
    read_errors: List[str] = []
    targets: Set[str] = set()
    sources: List[Tuple[str, str]] = []
    loaded: Set[str] = set()
    for path in files:
        shown = display_path(path, root)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            read_errors.append(f"{shown}: {error}")
            continue
        targets.add(shown)
        loaded.add(shown)
        sources.append((shown, text))
    if flow and any(shown.startswith("src/repro/") for shown in targets):
        for path in discover_files([root / "src" / "repro"]):
            shown = display_path(path, root)
            if shown in loaded:
                continue
            try:
                sources.append(
                    (shown, path.read_text(encoding="utf-8")))
                loaded.add(shown)
            except OSError:
                continue  # context file only; targets already errored
    report = check_project(sources, targets=targets, flow=flow)
    return report, read_errors


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules(args.json)

    root = repo_root()
    if args.changed and args.paths:
        print("lint: --changed and explicit paths are mutually "
              "exclusive", file=sys.stderr)
        return 2
    if args.ratchet and (args.paths or args.changed):
        print("lint: --ratchet requires a full-tree run (no paths, "
              "no --changed)", file=sys.stderr)
        return 2

    if args.changed:
        changed = changed_files(root)
        if changed is None:
            print("lint: --changed requires a git checkout with a "
                  "HEAD commit", file=sys.stderr)
            return 2
        if not changed:
            print("lint: no changed python files")
            return 0
        files = changed
    else:
        targets = ([Path(path) for path in args.paths]
                   if args.paths else default_targets(root))
        missing = [str(path) for path in targets
                   if not path.exists()]
        if missing:
            print(f"lint: no such path: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        files = discover_files(targets)

    report, read_errors = _collect(files, root,
                                   flow=not args.no_flow)
    errors = read_errors + report.errors
    if errors:
        for message in errors:
            print(f"lint: {message}", file=sys.stderr)
        return 2
    findings = report.findings
    suppressed = report.suppressed

    baseline_path = Path(args.baseline) if args.baseline \
        else root / BASELINE_FILENAME
    if args.write_baseline:
        previous: "Counter[str]" = Counter()
        if baseline_path.exists() and not args.allow_baseline_growth:
            try:
                previous = load_baseline(str(baseline_path))
            except (ValueError, OSError, KeyError) as error:
                print(f"lint: bad baseline {baseline_path}: {error}",
                      file=sys.stderr)
                return 2
            current = Counter(fingerprint(finding)
                              for finding in findings)
            grown = sum((current - previous).values())
            if grown:
                print(f"lint: refusing to grow the baseline by "
                      f"{grown} finding(s); fix them or pass "
                      f"--allow-baseline-growth", file=sys.stderr)
                return 1
        count = write_baseline(str(baseline_path), findings)
        print(f"lint: wrote {count} baseline finding(s) to "
              f"{baseline_path}")
        return 0

    baseline: "Counter[str]" = Counter()
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(str(baseline_path))
        except (ValueError, OSError, KeyError) as error:
            print(f"lint: bad baseline {baseline_path}: {error}",
                  file=sys.stderr)
            return 2
    new, grandfathered = partition(findings, baseline)
    stale = sum(baseline.values()) - len(grandfathered)

    if args.sarif:
        document = sarif_report(new, grandfathered)
        try:
            with open(args.sarif, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
        except OSError as error:
            print(f"lint: cannot write SARIF report: {error}",
                  file=sys.stderr)
            return 2

    ratchet_failed = bool(args.ratchet and stale)
    if args.json:
        print(json.dumps({
            "schema": JSON_SCHEMA,
            "checked_files": report.checked_files,
            "new": [finding.to_json() for finding in new],
            "baselined": [finding.to_json()
                          for finding in grandfathered],
            "stale_baseline": stale,
            "suppressed": len(suppressed),
            "ok": not new and not ratchet_failed,
        }, indent=2))
    else:
        for finding in new:
            print(finding.format())
        status = "ok" if not new else f"{len(new)} new finding(s)"
        print(f"lint: {report.checked_files} files checked, {status} "
              f"({len(grandfathered)} baselined, "
              f"{len(suppressed)} pragma-suppressed)")
        if ratchet_failed:
            print(f"lint: ratchet: {stale} baseline entr"
                  f"{'y is' if stale == 1 else 'ies are'} stale -- "
                  f"shrink the baseline with --write-baseline",
                  file=sys.stderr)
    return 1 if (new or ratchet_failed) else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="maclint: protocol-aware static analysis guarding "
                    "determinism, parallel safety, and the paper's "
                    "constants.")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
