"""The ``repro lint`` command.

Usage::

    python -m repro lint                      # whole tree vs baseline
    python -m repro lint src/repro/phy        # subtree
    python -m repro lint --json               # machine-readable report
    python -m repro lint --write-baseline     # regenerate the baseline
    python -m repro lint --list-rules         # rule catalogue

Exit status: 0 when no *new* findings (baselined and pragma-suppressed
findings are fine), 1 when new findings exist, 2 on usage or parse
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint.baseline import (
    BASELINE_FILENAME,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.checker import (
    Finding,
    LintSyntaxError,
    check_file,
)
from repro.lint.rules import RULES

JSON_SCHEMA = "repro/maclint@1"


def repo_root() -> Path:
    """The repository root (best effort: package parent, else cwd)."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "pyproject.toml").exists():
        return candidate
    return Path.cwd()


def default_targets(root: Path) -> List[Path]:
    source_tree = root / "src" / "repro"
    if source_tree.is_dir():
        return [source_tree]
    return [Path.cwd()]


def discover_files(targets: List[Path]) -> List[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(
                path for path in sorted(target.rglob("*.py"))
                if "__pycache__" not in path.parts)
        else:
            files.append(target)
    seen = set()
    unique: List[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def display_path(path: Path, root: Path) -> str:
    """Root-relative POSIX path (stable fingerprints from any cwd)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to check "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file (default: "
                             f"{BASELINE_FILENAME} at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every "
                             "finding as new")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather all current findings into "
                             "the baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def _list_rules(as_json: bool) -> int:
    if as_json:
        print(json.dumps({
            rule_id: {
                "family": rule.family,
                "name": rule.name,
                "summary": rule.summary,
                "rationale": rule.rationale,
            } for rule_id, rule in sorted(RULES.items())
        }, indent=2))
        return 0
    for rule_id, rule in sorted(RULES.items()):
        print(f"{rule_id} [{rule.family}] {rule.name}")
        print(f"    {rule.summary}")
        print(f"    {rule.rationale}")
    return 0


def _collect(files: List[Path], root: Path,
             ) -> Tuple[List[Finding], List[Finding], List[str]]:
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    errors: List[str] = []
    for path in files:
        shown = display_path(path, root)
        try:
            report = check_file(str(path), display_path=shown)
        except LintSyntaxError as error:
            errors.append(f"{shown}: syntax error: {error}")
            continue
        except OSError as error:
            errors.append(f"{shown}: {error}")
            continue
        findings.extend(report.findings)
        suppressed.extend(report.suppressed)
        errors.extend(f"{shown}: {message}"
                      for message in report.pragma_errors)
    return findings, suppressed, errors


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules(args.json)

    root = repo_root()
    targets = ([Path(path) for path in args.paths]
               if args.paths else default_targets(root))
    missing = [str(path) for path in targets if not path.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    files = discover_files(targets)
    findings, suppressed, errors = _collect(files, root)
    if errors:
        for message in errors:
            print(f"lint: {message}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline \
        else root / BASELINE_FILENAME
    if args.write_baseline:
        count = write_baseline(str(baseline_path), findings)
        print(f"lint: wrote {count} baseline finding(s) to "
              f"{baseline_path}")
        return 0

    baseline: "Counter[str]" = Counter()
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(str(baseline_path))
        except (ValueError, OSError, KeyError) as error:
            print(f"lint: bad baseline {baseline_path}: {error}",
                  file=sys.stderr)
            return 2
    new, grandfathered = partition(findings, baseline)

    if args.json:
        print(json.dumps({
            "schema": JSON_SCHEMA,
            "checked_files": len(files),
            "new": [finding.to_json() for finding in new],
            "baselined": [finding.to_json()
                          for finding in grandfathered],
            "suppressed": len(suppressed),
            "ok": not new,
        }, indent=2))
    else:
        for finding in new:
            print(finding.format())
        status = "ok" if not new else f"{len(new)} new finding(s)"
        print(f"lint: {len(files)} files checked, {status} "
              f"({len(grandfathered)} baselined, "
              f"{len(suppressed)} pragma-suppressed)")
    return 1 if new else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="maclint: protocol-aware static analysis guarding "
                    "determinism, parallel safety, and the paper's "
                    "constants.")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
