"""Finding fingerprints and the checked-in baseline.

The baseline (``.maclint-baseline.json`` at the repository root) holds
the fingerprints of grandfathered findings so the CI gate fails only on
*new* violations.  A fingerprint hashes the rule id, the normalised
path, and the stripped source-line text -- deliberately **not** the
line number, so unrelated edits that shift code do not invalidate the
baseline.  Duplicate (rule, path, text) occurrences are matched as a
multiset: introducing a second copy of a baselined violation is still a
new finding.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.checker import Finding

BASELINE_SCHEMA = "repro/maclint-baseline@1"
BASELINE_FILENAME = ".maclint-baseline.json"


def fingerprint(finding: "Finding") -> str:
    """Stable identity of a finding across line-number drift."""
    payload = f"{finding.rule}|{finding.path}|{finding.text}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: str) -> "Counter[str]":
    """The fingerprint multiset stored at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema "
            f"{data.get('schema')!r} (expected {BASELINE_SCHEMA!r})")
    counts: "Counter[str]" = Counter()
    for entry in data.get("findings", []):
        counts[entry["fingerprint"]] += 1
    return counts


def write_baseline(path: str, findings: List["Finding"]) -> int:
    """Persist ``findings`` as the new baseline; returns the count."""
    entries = [
        {
            "fingerprint": fingerprint(finding),
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "text": finding.text,
        }
        for finding in sorted(findings,
                              key=lambda f: (f.path, f.line, f.rule))
    ]
    payload: Dict[str, object] = {
        "schema": BASELINE_SCHEMA,
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def partition(findings: List["Finding"],
              baseline: "Counter[str]",
              ) -> Tuple[List["Finding"], List["Finding"]]:
    """Split findings into (new, baselined) against the multiset."""
    remaining = Counter(baseline)
    new: List["Finding"] = []
    grandfathered: List["Finding"] = []
    for finding in findings:
        key = fingerprint(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
