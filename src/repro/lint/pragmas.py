"""Inline suppression pragmas.

Two forms are recognised, both as (part of) a ``#`` comment:

* ``# maclint: disable=DET001,PROTO001`` -- suppress the named rules on
  this source line only.
* ``# maclint: disable-file=PROTO001`` -- suppress the named rules for
  the whole file (place the comment anywhere, conventionally near the
  top with a justification).

Rule names may be full ids (``DET003``), whole families (``DET``), or
``all``.  Unknown names are reported as pragma errors so typos cannot
silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.rules import FAMILIES, RULES

_PRAGMA_RE = re.compile(
    r"#\s*maclint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


@dataclass
class PragmaSet:
    """Parsed suppressions for one file."""

    file_rules: Set[str] = field(default_factory=set)
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    def suppresses(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled at ``line``."""
        family = RULES[rule_id].family if rule_id in RULES else rule_id
        for selector in ("all", family, rule_id):
            if selector in self.file_rules:
                return True
            if selector in self.line_rules.get(line, ()):
                return True
        return False


def _validate(names: List[str], line: int, errors: List[str]) -> Set[str]:
    valid: Set[str] = set()
    for name in names:
        canonical = name.strip().upper() if name.lower() != "all" else "all"
        if canonical == "all" or canonical in FAMILIES \
                or canonical in RULES:
            valid.add(canonical)
        else:
            errors.append(
                f"line {line}: unknown rule {name!r} in maclint pragma")
    return valid


def _comments(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) for every ``#`` comment token in ``source``.

    Tokenizing (rather than scanning raw lines) keeps pragma text inside
    string literals from being misread as a pragma.  Tokenization errors
    are ignored here; the AST parse reports them properly.
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def parse_pragmas(source: str) -> PragmaSet:
    """Extract all maclint pragmas from ``source`` comments."""
    pragmas = PragmaSet()
    for lineno, text in _comments(source):
        if "maclint" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            if re.search(r"#\s*maclint\b", text):
                pragmas.errors.append(
                    f"line {lineno}: malformed maclint pragma "
                    f"(expected '# maclint: disable=RULE,...' or "
                    f"'# maclint: disable-file=RULE,...')")
            continue
        names = match.group("rules").split(",")
        rules = _validate(names, lineno, pragmas.errors)
        if match.group("kind") == "disable-file":
            pragmas.file_rules |= rules
        else:
            pragmas.line_rules.setdefault(lineno, set()).update(rules)
    return pragmas
