"""Declarative fault schedules.

A fault scenario is a tuple of :class:`FaultSpec` values stored in
``CellConfig.faults``.  Specs are frozen dataclasses of primitives, so a
config carrying them stays hashable and the run engine's content-hash
cache keys them exactly like any other parameter.

This module is deliberately standalone (no imports from ``repro.core``):
``CellConfig`` validates its ``faults`` field against :class:`FaultSpec`
lazily, and a module-level import in either direction would be circular.

Fault kinds
-----------

``crash``
    The targeted subscribers power off at the given cycle: volatile MAC
    and application state is lost, nothing is heard or transmitted.
``restart``
    Crashed targets power back on and re-enter the cell from SYNCING.
``fade``
    A deep-fade window: for ``duration_cycles`` cycles the targets'
    links lose each codeword with probability ``loss`` (the original
    error model is restored when the window closes).
``cf_storm``
    Control-field sets broadcast during the window are destroyed on the
    targets' forward links -- the "every subscriber misses the
    schedule" worst case of Section 3.4.

Targets are ``fnmatch`` patterns over subscriber names (``data-0``,
``gps-*``, ``*``); names follow ``repro.core.cell`` conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Sequence, Tuple

KIND_CRASH = "crash"
KIND_RESTART = "restart"
KIND_FADE = "fade"
KIND_CF_STORM = "cf_storm"

KINDS = (KIND_CRASH, KIND_RESTART, KIND_FADE, KIND_CF_STORM)

CHANNEL_FORWARD = "forward"
CHANNEL_REVERSE = "reverse"
CHANNEL_BOTH = "both"

CHANNELS = (CHANNEL_FORWARD, CHANNEL_REVERSE, CHANNEL_BOTH)


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault event.

    ``at_cycle`` counts notification cycles from the start of the run;
    the event fires just after that cycle's first control-field set
    begins, so the current cycle's schedule is already committed.
    """

    kind: str
    at_cycle: int
    target: str = "*"
    #: Window length for ``fade``/``cf_storm`` (ignored otherwise).
    duration_cycles: int = 1
    #: Per-codeword loss probability inside a ``fade`` window.
    loss: float = 1.0
    #: Which links a ``fade`` hits: 'forward', 'reverse' or 'both'.
    channel: str = CHANNEL_BOTH

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_cycle < 0:
            raise ValueError("at_cycle must be non-negative")
        if self.duration_cycles < 1:
            raise ValueError("duration_cycles must be >= 1")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError("loss must be in [0, 1]")
        if self.channel not in CHANNELS:
            raise ValueError(f"unknown channel {self.channel!r}")

    def matches(self, name: str) -> bool:
        """Does this fault target the subscriber called ``name``?"""
        return fnmatchcase(name, self.target)


# -- convenience builders ---------------------------------------------------

def crash(target: str, at_cycle: int) -> FaultSpec:
    return FaultSpec(kind=KIND_CRASH, at_cycle=at_cycle, target=target)


def restart(target: str, at_cycle: int) -> FaultSpec:
    return FaultSpec(kind=KIND_RESTART, at_cycle=at_cycle, target=target)


def fade(target: str, at_cycle: int, duration_cycles: int = 1,
         loss: float = 1.0, channel: str = CHANNEL_BOTH) -> FaultSpec:
    return FaultSpec(kind=KIND_FADE, at_cycle=at_cycle, target=target,
                     duration_cycles=duration_cycles, loss=loss,
                     channel=channel)


def cf_storm(at_cycle: int, duration_cycles: int = 1,
             target: str = "*") -> FaultSpec:
    return FaultSpec(kind=KIND_CF_STORM, at_cycle=at_cycle,
                     target=target, duration_cycles=duration_cycles)


# -- CLI parser ---------------------------------------------------------------

#: The legal schedule grammar, quoted verbatim in every parse error.
GRAMMAR = ("kind:target@cycle[+duration][*loss][/channel] entries "
           "separated by ',' or ';', where kind is one of "
           f"{'|'.join(KINDS)}, cycle/duration are non-negative "
           "integers, loss is a float in [0, 1], and channel is one of "
           f"{'|'.join(CHANNELS)} -- e.g. 'crash:data-0@40;"
           "restart:data-0@52;fade:gps-*@60+4*0.9/forward'")


class FaultParseError(ValueError):
    """A fault-schedule entry that does not match the grammar.

    Carries enough context to act on: the 1-based entry position, the
    entry text, the specific offending token, and the full grammar.
    """

    def __init__(self, entry: str, position: int, token: str,
                 reason: str):
        self.entry = entry
        self.position = position
        self.token = token
        self.reason = reason
        super().__init__(
            f"fault entry {position} ({entry!r}): bad token "
            f"{token!r} -- {reason}; expected {GRAMMAR}")


def format_fault(spec: FaultSpec) -> str:
    """Render one spec back into the ``parse_faults`` grammar.

    ``parse_faults(format_fault(spec)) == (spec,)`` for every legal
    spec -- the fuzzer relies on this round trip to keep generated
    schedules inside the user-facing grammar.
    """
    text = f"{spec.kind}:{spec.target}@{spec.at_cycle}"
    if spec.duration_cycles != 1:
        text += f"+{spec.duration_cycles}"
    if spec.loss != 1.0:
        text += f"*{spec.loss}"
    if spec.channel != CHANNEL_BOTH:
        text += f"/{spec.channel}"
    return text


def format_faults(specs: Sequence[FaultSpec]) -> str:
    """Render a whole schedule (the inverse of :func:`parse_faults`)."""
    return ";".join(format_fault(spec) for spec in specs)


def _parse_entry(entry: str, position: int) -> FaultSpec:
    if ":" not in entry:
        raise FaultParseError(entry, position, entry,
                              "missing ':' between kind and target")
    kind, rest = entry.split(":", 1)
    kind = kind.strip()
    if kind not in KINDS:
        raise FaultParseError(
            entry, position, kind,
            f"unknown fault kind (legal kinds: {', '.join(KINDS)})")
    if "@" not in rest:
        raise FaultParseError(entry, position, rest,
                              "missing '@cycle' after the target")
    target, when = rest.rsplit("@", 1)
    target = target.strip()
    if not target:
        raise FaultParseError(entry, position, rest,
                              "empty target pattern before '@'")
    channel = CHANNEL_BOTH
    if "/" in when:
        when, channel = when.split("/", 1)
        channel = channel.strip()
        if channel not in CHANNELS:
            raise FaultParseError(
                entry, position, channel,
                f"unknown channel (legal: {', '.join(CHANNELS)})")
    loss = 1.0
    if "*" in when:
        when, loss_text = when.split("*", 1)
        try:
            loss = float(loss_text)
        except ValueError:
            raise FaultParseError(
                entry, position, loss_text,
                "loss must be a float in [0, 1]") from None
        if not 0.0 <= loss <= 1.0:
            raise FaultParseError(entry, position, loss_text,
                                  "loss must be in [0, 1]")
    duration = 1
    if "+" in when:
        when, duration_text = when.split("+", 1)
        try:
            duration = int(duration_text)
        except ValueError:
            raise FaultParseError(
                entry, position, duration_text,
                "duration must be a positive integer") from None
        if duration < 1:
            raise FaultParseError(entry, position, duration_text,
                                  "duration must be >= 1")
    when = when.strip()
    try:
        at_cycle = int(when)
    except ValueError:
        raise FaultParseError(
            entry, position, when,
            "cycle must be a non-negative integer") from None
    if at_cycle < 0:
        raise FaultParseError(entry, position, when,
                              "cycle must be non-negative")
    return FaultSpec(kind=kind, at_cycle=at_cycle, target=target,
                     duration_cycles=duration, loss=loss,
                     channel=channel)


def parse_faults(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a compact fault-schedule string.

    Grammar (entries separated by ``,`` or ``;``)::

        kind:target@cycle[+duration][*loss][/channel]

    Examples::

        crash:data-0@40
        crash:data-0@40;restart:data-0@52
        fade:gps-*@60+4*0.9
        fade:data-1@30+2*0.95/reverse
        cf_storm:*@70+2

    Raises :class:`FaultParseError` (a ``ValueError``) naming the
    offending entry, its position, the bad token, and the grammar.
    """
    specs = []
    position = 0
    for raw in text.replace(";", ",").split(","):
        entry = raw.strip()
        if not entry:
            continue
        position += 1
        specs.append(_parse_entry(entry, position))
    return tuple(specs)
