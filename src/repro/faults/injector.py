"""Execute a fault schedule against a built cell.

The injector is armed at cell-construction time (``build_cell`` creates
one whenever ``config.faults`` is non-empty) and schedules every fault as
an ordinary simulator event, so fault runs remain fully deterministic:
the same config and seed produce bit-identical results regardless of
worker count.

Faults fire :data:`FAULT_OFFSET` seconds after the nominal cycle start,
i.e. after the base station has committed that cycle's schedule but
before any reverse slot opens -- the worst moment for a crash, since the
station will spend a whole cycle of slots on a subscriber that no longer
exists.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.config import CellConfig
from repro.faults.schedule import (
    CHANNEL_FORWARD,
    CHANNEL_REVERSE,
    FaultSpec,
    KIND_CF_STORM,
    KIND_CRASH,
    KIND_FADE,
    KIND_RESTART,
)
from repro.metrics import CellStats
from repro.phy import timing
from repro.phy.errors import OutageModel
from repro.sim.core import Simulator

#: Seconds after the nominal cycle start at which faults fire.
FAULT_OFFSET = 1e-4


class FaultInjector:
    """Arms ``config.faults`` against a cell's live objects."""

    def __init__(self, sim: Simulator, config: CellConfig,
                 subscribers: Sequence, stats: CellStats):
        self.sim = sim
        self.config = config
        self.subscribers = list(subscribers)
        self.stats = stats
        #: Log of fired faults: (time, spec, subscriber name or '*').
        self.fired: List[Tuple[float, FaultSpec, str]] = []
        #: link -> its pre-fade error model.
        self._fade_saved: Dict[int, object] = {}
        self._fade_links: Dict[int, object] = {}
        #: link -> absolute time its last fade window closes.
        self._fade_until: Dict[int, float] = {}
        #: subscriber name -> cf-storm windows (absolute start, end).
        self._storm_windows: Dict[str, List[Tuple[float, float]]] = {}
        self._arm()

    # -- arming ----------------------------------------------------------

    def _targets(self, spec: FaultSpec) -> List:
        return [sub for sub in self.subscribers
                if spec.matches(sub.name)]

    def _arm(self) -> None:
        for spec in self.config.faults:
            at = spec.at_cycle * timing.CYCLE_LENGTH + FAULT_OFFSET
            end = ((spec.at_cycle + spec.duration_cycles)
                   * timing.CYCLE_LENGTH + FAULT_OFFSET)
            targets = self._targets(spec)
            if spec.kind == KIND_CRASH:
                for sub in targets:
                    self.sim.call_at(at, lambda s=sub, f=spec:
                                     self._fire_crash(f, s))
            elif spec.kind == KIND_RESTART:
                for sub in targets:
                    self.sim.call_at(at, lambda s=sub, f=spec:
                                     self._fire_restart(f, s))
            elif spec.kind == KIND_FADE:
                self.sim.call_at(at, lambda f=spec, subs=targets,
                                 until=end: self._fire_fade(
                                     f, subs, until))
            elif spec.kind == KIND_CF_STORM:
                for sub in targets:
                    self._storm_windows.setdefault(
                        sub.name, []).append((at, end))
                self.sim.call_at(at, lambda f=spec:
                                 self._note(f, "*"))
        if self._storm_windows:
            self._wrap_storm_receivers()

    def _note(self, spec: FaultSpec, who: str) -> None:
        self.stats.faults_injected += 1
        self.fired.append((self.sim.now, spec, who))

    # -- crash / restart ---------------------------------------------------

    def _fire_crash(self, spec: FaultSpec, sub) -> None:
        if sub.alive:
            self._note(spec, sub.name)
            sub.crash()

    def _fire_restart(self, spec: FaultSpec, sub) -> None:
        if not sub.alive:
            self._note(spec, sub.name)
            sub.restart()

    # -- deep fades --------------------------------------------------------

    def _fade_targets(self, spec: FaultSpec, subs) -> List:
        links = []
        for sub in subs:
            if spec.channel != CHANNEL_REVERSE:
                links.append(sub.forward_link)
            if spec.channel != CHANNEL_FORWARD:
                links.append(sub.reverse_link)
        return links

    def _fire_fade(self, spec: FaultSpec, subs, until: float) -> None:
        for sub in subs:
            self._note(spec, sub.name)
        for link in self._fade_targets(spec, subs):
            key = id(link)
            if key not in self._fade_saved:
                # First fade on this link: remember the real model.
                self._fade_saved[key] = link.error_model
                self._fade_links[key] = link
            link.error_model = OutageModel(spec.loss)
            self._fade_until[key] = max(
                self._fade_until.get(key, 0.0), until)
            self.sim.call_at(until,
                             lambda k=key: self._maybe_restore(k))

    def _maybe_restore(self, key: int) -> None:
        # Overlapping windows extend ``_fade_until``; only the event
        # matching the furthest window end actually restores the model.
        if key not in self._fade_saved:
            return
        if self.sim.now + 1e-9 < self._fade_until[key]:
            return
        link = self._fade_links.pop(key)
        link.error_model = self._fade_saved.pop(key)
        self._fade_until.pop(key, None)

    # -- control-field storms ---------------------------------------------

    def _wrap_storm_receivers(self) -> None:
        """Interpose on targeted subscribers' forward-link callbacks.

        A storm destroys control-field codewords on the victim's link;
        data slots in the same window are left alone (the paper's CF
        sets are longer and more exposed than single data packets, and
        the interesting failure mode is losing the *schedule*).
        """
        for sub in self.subscribers:
            windows = self._storm_windows.get(sub.name)
            if not windows:
                continue
            channel = sub.forward_channel
            original = channel._receivers[sub.ein][1]

            def stormed(transmission, ok, _orig=original, _win=windows):
                if (ok and transmission.kind in ("cf1", "cf2")
                        and any(start <= transmission.start < end
                                for start, end in _win)):
                    self.stats.cf_storm_drops += 1
                    ok = False
                _orig(transmission, ok)

            channel.attach(sub.ein, sub.forward_link, stormed)
