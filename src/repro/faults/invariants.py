"""Continuous protocol-invariant checking.

A white-box monitor that inspects the base station's and subscribers'
internal state once per notification cycle (late in the cycle, after the
schedule is committed and the lease sweep has run) and records every
violated safety property.  Enabled via ``CellConfig.check_invariants``;
the chaos experiments run it under every fault scenario so that "the
protocol survived" means *all* of these held the whole time, not merely
that throughput stayed positive.

Checked every cycle:

* registry consistency -- EIN<->UID bijection, incremental per-service
  counters equal to an O(n) rescan
  (:meth:`RegistrationModule.check_invariants`);
* GPS slot legality -- no duplicate slots, R1-R3 prefix consolidation
  (:meth:`GpsSlotManager.check_invariants`), and slot-ownership exactly
  matching the set of registered GPS users;
* GPS service completeness -- every GPS user registered before this
  cycle started holds a slot in this cycle's schedule (the structural
  guarantee behind the 4-second access deadline);
* schedule/registry consistency -- every UID in the cycle's GPS and
  reverse-data schedules is currently registered;
* bookkeeping hygiene -- demand, duplicate-suppression and lease tables
  hold no unregistered UIDs (leaks here are exactly what the eviction
  path must prevent);
* subscriber/base-station agreement -- an alive ACTIVE subscriber whose
  EIN is registered believes the UID the registry assigned it;
* radio-timeline legality -- no new half-duplex turnaround violations
  appeared on any subscriber radio.

Violations are counted into ``stats.invariant_violations`` and kept,
with timestamps, in :attr:`InvariantMonitor.violations`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.base_station import BaseStation
from repro.core.config import CellConfig
from repro.core.packets import SERVICE_GPS
from repro.core.subscriber import ACTIVE
from repro.metrics import CellStats
from repro.phy import timing
from repro.sim.core import Simulator

#: Offset into each cycle at which the periodic check runs: late enough
#: that the cycle's schedule is committed and most slots have resolved.
CHECK_OFFSET = 0.9 * timing.CYCLE_LENGTH


class InvariantMonitor:
    """Per-cycle safety-property checker for one cell."""

    def __init__(self, sim: Simulator, config: CellConfig,
                 base_station: BaseStation, data_users: List,
                 gps_units: List, stats: CellStats):
        self.sim = sim
        self.config = config
        self.base_station = base_station
        # Live references, not copies: the service mode appends
        # runtime-joined subscribers to the cell's lists mid-run, and
        # they must fall under the monitor the moment they power on.
        self.data_users = data_users
        self.gps_units = gps_units
        self.stats = stats
        self.violations: List[Tuple[float, str]] = []
        self.checks_run = 0
        self._radio_seen = 0
        sim.process(self._run(), name="invariant-monitor")

    def _run(self):
        yield self.sim.timeout(CHECK_OFFSET)
        while True:
            self.check_now()
            yield self.sim.timeout(timing.CYCLE_LENGTH)

    # -- the actual checks -------------------------------------------------

    def check_now(self) -> List[str]:
        """Run every check once; returns (and records) new violations."""
        failures: List[str] = []
        bs = self.base_station
        registry = bs.registration

        try:
            registry.check_invariants()
        except AssertionError as exc:
            failures.append(f"registry: {exc}")
        try:
            bs.gps_mgr.check_invariants()
        except AssertionError as exc:
            failures.append(f"gps-slots: {exc}")

        records = registry.registrants()
        registered_uids = {record.uid for record in records}
        gps_uids = {record.uid for record in records
                    if record.service == SERVICE_GPS}

        # GPS slot ownership must exactly mirror the GPS registrants.
        for uid in gps_uids:
            if bs.gps_mgr.slot_of(uid) is None:
                failures.append(f"gps uid {uid} registered but slotless")
        owners = {uid for uid in bs.gps_mgr.schedule() if uid is not None}
        for uid in sorted(owners - gps_uids):
            failures.append(f"gps slot held by unregistered uid {uid}")

        # Schedules may only name registered subscribers, and every GPS
        # user admitted before the cycle started must be scheduled.
        record = bs.record_for(bs.cycle)
        if record is not None:
            for label, assignment in (
                    ("gps", record.gps_assignment),
                    ("reverse-data", record.data_assignment)):
                for uid in assignment:
                    if uid is not None and uid not in registered_uids:
                        failures.append(
                            f"{label} schedule lists unregistered "
                            f"uid {uid}")
            scheduled = {uid for uid in record.gps_assignment
                         if uid is not None}
            for reg in records:
                if (reg.service == SERVICE_GPS
                        and reg.registered_at <= record.start
                        and reg.uid not in scheduled):
                    failures.append(
                        f"gps uid {reg.uid} has no slot in cycle "
                        f"{record.cycle}")

        # Per-UID bookkeeping must not leak past deregistration.
        for label, table in (("demands", bs.demands),
                             ("recent-seqs", bs._recent_seqs),
                             ("last-heard", bs._last_heard)):
            for uid in sorted(set(table) - registered_uids):
                failures.append(
                    f"{label} table holds unregistered uid {uid}")

        # An alive ACTIVE subscriber's UID belief must match the
        # registry whenever its EIN is (still) registered.  (An evicted
        # subscriber that has not noticed yet has no registry record --
        # that zombie window is legal and bounded by detection.)
        for sub in self.data_users + self.gps_units:
            if not sub.alive or sub.state != ACTIVE or sub.uid is None:
                continue
            reg = registry.lookup_ein(sub.ein)
            if reg is not None and reg.uid != sub.uid:
                failures.append(
                    f"{sub.name} believes uid {sub.uid}, registry "
                    f"says {reg.uid}")

        # Radio-timeline legality: no new turnaround violations.
        total = sum(len(sub.radio.violations)
                    for sub in self.data_users + self.gps_units)
        if total > self._radio_seen:
            failures.append(
                f"{total - self._radio_seen} new radio timeline "
                f"violations")
            self._radio_seen = total

        self.checks_run += 1
        now = self.sim.now
        for message in failures:
            self.violations.append((now, message))
        self.stats.invariant_violations += len(failures)
        self._publish(len(failures))
        return failures

    def _publish(self, new_violations: int) -> None:
        """Mirror the check into the process-global metrics registry.

        Imported lazily (``repro.obs`` imports the cell module) and a
        couple of no-op calls when the registry is disabled.
        """
        from repro.obs.registry import default_registry

        registry = default_registry()
        if not registry.enabled:
            return
        registry.counter(
            "osu_invariant_checks_total",
            "Invariant-monitor sweeps").inc()
        registry.counter(
            "osu_invariant_violations_total",
            "Violated protocol safety properties"
        ).inc(new_violations)
