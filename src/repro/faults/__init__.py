"""Deterministic fault injection and continuous invariant checking.

The robustness story of OSU-MAC (churn, deep fades, silent subscribers)
is exercised by three cooperating pieces:

* :mod:`repro.faults.schedule` -- declarative, hashable
  :class:`FaultSpec` events carried inside ``CellConfig.faults`` so that
  fault scenarios flow through the run engine's cache unchanged.
* :mod:`repro.faults.injector` -- executes the schedule against a built
  cell: crashes/restarts subscribers, forces deep-fade windows on
  selected links, storms control-field codewords.
* :mod:`repro.faults.invariants` -- a per-cycle monitor asserting the
  protocol's safety properties (registry bijection, GPS slot
  consolidation, schedule/registry consistency, radio-timeline
  legality) while faults are being injected.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantMonitor
from repro.faults.schedule import (
    FaultParseError,
    FaultSpec,
    cf_storm,
    crash,
    fade,
    format_fault,
    format_faults,
    parse_faults,
    restart,
)

__all__ = [
    "FaultInjector",
    "FaultParseError",
    "FaultSpec",
    "InvariantMonitor",
    "cf_storm",
    "crash",
    "fade",
    "format_fault",
    "format_faults",
    "parse_faults",
    "restart",
]
