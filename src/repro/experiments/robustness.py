"""R2: parameter robustness (Section 5's explicit claim).

"In spite of several system parameters involved, the results are found
to be quite robust in the sense that the conclusion drawn from the
performance curves ... is valid over a wide range of parameter values."

The sweep varies the parameters the paper varies -- number of data users
(5-14), number of GPS users (1-8), fixed vs variable message lengths --
at a fixed mid load, and reports the headline metrics.  The conclusions
that must hold everywhere: utilization tracks the load, fairness stays
high, GPS QoS never breaks, and the radio timeline stays legal.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.config import CellConfig
from repro.engine import RunSpec, cell_point, execute, group_means
from repro.experiments.runner import ExperimentResult, cycles_for


def spec(quick: bool = False,
         seeds: Sequence[int] = (1, 2)) -> RunSpec:
    cycles, warmup = cycles_for(quick)
    points = []
    for data_users in (5, 9, 14):
        for gps_users in (1, 4, 8):
            for size in ("fixed", "uniform"):
                for seed in seeds:
                    config = CellConfig(
                        num_data_users=data_users,
                        num_gps_users=gps_users,
                        load_index=0.7, message_size=size,
                        cycles=cycles, warmup_cycles=warmup,
                        seed=seed)
                    points.append(cell_point(
                        config, data_users=data_users,
                        gps_users=gps_users, size=size, seed=seed))
    return RunSpec(
        name="robustness",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("data_users", "gps_users", "size")))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2),
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    result = execute(spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = [[point["data_users"], point["gps_users"], point["size"],
             point["utilization"], point["mean_message_delay_cycles"],
             point["fairness"], point["gps_deadline_misses"],
             point["radio_violations"]]
            for point in result.reduced]
    return ExperimentResult(
        experiment_id="R2",
        title="Parameter robustness at rho = 0.7 (Section 5 claim)",
        headers=["data_users", "gps_users", "msg_size", "utilization",
                 "delay_cycles", "fairness", "gps_misses",
                 "radio_violations"],
        rows=rows,
        notes=("Every configuration must show: utilization ~ 0.7 "
               "(tracking the load), fairness > 0.9, zero GPS deadline "
               "misses, zero half-duplex violations -- the paper's "
               "robustness claim."))
