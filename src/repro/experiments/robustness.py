"""R2: parameter robustness (Section 5's explicit claim).

"In spite of several system parameters involved, the results are found
to be quite robust in the sense that the conclusion drawn from the
performance curves ... is valid over a wide range of parameter values."

The sweep varies the parameters the paper varies -- number of data users
(5-14), number of GPS users (1-8), fixed vs variable message lengths --
at a fixed mid load, and reports the headline metrics.  The conclusions
that must hold everywhere: utilization tracks the load, fairness stays
high, GPS QoS never breaks, and the radio timeline stays legal.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cell import run_cell
from repro.core.config import CellConfig
from repro.experiments.runner import ExperimentResult, cycles_for


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2)) -> ExperimentResult:
    cycles, warmup = cycles_for(quick)
    scenarios = []
    for data_users in (5, 9, 14):
        for gps_users in (1, 4, 8):
            for size in ("fixed", "uniform"):
                scenarios.append((data_users, gps_users, size))
    rows = []
    for data_users, gps_users, size in scenarios:
        util = fairness = misses = violations = delay = 0.0
        for seed in seeds:
            stats = run_cell(CellConfig(
                num_data_users=data_users, num_gps_users=gps_users,
                load_index=0.7, message_size=size,
                cycles=cycles, warmup_cycles=warmup, seed=seed))
            util += stats.utilization()
            fairness += stats.fairness()
            misses += stats.gps_deadline_misses
            violations += stats.radio_violations
            delay += stats.mean_message_delay_cycles()
        n = len(seeds)
        rows.append([data_users, gps_users, size, util / n,
                     delay / n, fairness / n, misses / n,
                     violations / n])
    return ExperimentResult(
        experiment_id="R2",
        title="Parameter robustness at rho = 0.7 (Section 5 claim)",
        headers=["data_users", "gps_users", "msg_size", "utilization",
                 "delay_cycles", "fairness", "gps_misses",
                 "radio_violations"],
        rows=rows,
        notes=("Every configuration must show: utilization ~ 0.7 "
               "(tracking the load), fairness > 0.9, zero GPS deadline "
               "misses, zero half-duplex violations -- the paper's "
               "robustness claim."))
