"""Fig. 8(b): packet (e-mail message) delay vs load index.

Paper's finding: for rho <= 0.9 messages are delivered within a few
notification cycles even with variable-length packets; past the knee the
delay "increases dramatically" as traffic exceeds system capacity and
queues build.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.experiments.runner import (
    ExperimentResult,
    PAPER_LOADS,
    sweep_loads,
)


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        loads: Sequence[float] = PAPER_LOADS,
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    points = sweep_loads(loads=loads, seeds=seeds, quick=quick,
                         jobs=jobs, cache=cache)
    rows = [[point["load"], point["mean_message_delay_cycles"]]
            for point in points]
    return ExperimentResult(
        experiment_id="F8b",
        title="Message delay (notification cycles) vs load (Fig. 8b)",
        headers=["load", "delay_cycles"],
        rows=rows,
        notes=("Expected shape: a few cycles at light load, sharp "
               "queueing blow-up once the offered load crosses the "
               "~0.89 capacity of the 8 schedulable data slots."))
