"""Tables 1 and 2: regenerate the paper's parameter tables from the model.

These are not simulations -- they print the *derived* quantities our
timing model computes from the raw physical-layer constants, next to the
values the paper states, so any modelling drift is immediately visible.
"""

# The literals below are the values *printed in the paper*, kept
# verbatim on purpose so they can be compared against the computed
# repro.phy.timing constants; re-typing them is the whole point here.
# maclint: disable-file=PROTO001

from __future__ import annotations

from typing import Any, Optional

from repro.experiments.runner import ExperimentResult
from repro.phy import timing


def run_table1(quick: bool = False,
               jobs: Optional[int] = None,
               cache: Any = None) -> ExperimentResult:
    rows = [
        ["Channel symbol rate fwd (sym/s)", 3200,
         timing.FORWARD_SYMBOL_RATE],
        ["Channel symbol rate rev (sym/s)", 2400,
         timing.REVERSE_SYMBOL_RATE],
        ["Info symbols per pilot frame", 128,
         timing.PS_FRAME_INFO_SYMBOLS],
        ["Channel symbols per pilot frame", 150, timing.PS_FRAME_SYMBOLS],
        ["Info bits per RS(64,48) codeword", 384, timing.RS_INFO_BITS],
        ["Bits per RS(64,48) codeword", 512, timing.RS_CODED_BITS],
        ["Channel symbols per regular packet", 300,
         timing.REGULAR_PACKET_SYMBOLS],
        ["Time per regular packet fwd (s)", 0.09375,
         timing.REGULAR_PACKET_TIME_FORWARD],
        ["Time per regular packet rev (s)", 0.125,
         timing.REGULAR_PACKET_TIME_REVERSE],
        ["Cycle preamble (symbols)", 450,
         timing.FORWARD_PREAMBLE_TOTAL_SYMBOLS],
        ["Time per cycle preamble (s)", 0.140625,
         timing.CYCLE_PREAMBLE_TIME],
        ["GPS packet size (info bits)", 72, timing.GPS_PACKET_INFO_BITS],
        ["GPS packet size (symbols)", 128, timing.GPS_PACKET_SYMBOLS],
        ["GPS packet preamble (symbols)", 64, timing.GPS_PREAMBLE_SYMBOLS],
        ["Regular packet preamble (symbols)", 600,
         timing.REGULAR_PREAMBLE_SYMBOLS],
        ["Regular packet postamble (symbols)", 51,
         timing.REGULAR_POSTAMBLE_SYMBOLS],
        ["Packet guard time (s)", 0.0075, timing.GUARD_TIME],
        ["GPS slot total (symbols)", 210, timing.GPS_SLOT_SYMBOLS],
        ["GPS slot total (s)", 0.0875, timing.GPS_SLOT_TIME],
        ["Regular slot total (symbols)", 969, timing.REGULAR_SLOT_SYMBOLS],
        ["Regular slot total (s)", 0.40375, timing.DATA_SLOT_TIME],
    ]
    mismatches = [row[0] for row in rows
                  if abs(float(row[1]) - float(row[2])) > 1e-9]
    return ExperimentResult(
        experiment_id="T1",
        title="Physical-layer parameters (Table 1)",
        headers=["parameter", "paper", "model"],
        rows=rows,
        notes=("Mismatches: " + (", ".join(mismatches) if mismatches
                                 else "none -- all derived values match "
                                 "the paper exactly.")),
        extra={"mismatches": mismatches})


#: The access times the paper prints in Table 2.  Format-2 data slot 8 is
#: printed as 2.98625 in the paper (same as slot 7) and slot 9 as 3.39 --
#: an off-by-one-row typo; the arithmetic series gives slot 8 = 3.39,
#: slot 9 = 3.79375.
PAPER_TABLE2 = {
    ("format1", "gps"): [0.30125, 0.38875, 0.47625, 0.56375,
                         0.65125, 0.73875, 0.82625, 0.91375],
    ("format1", "data"): [1.00125, 1.40500, 1.80875, 2.21250,
                          2.61625, 3.02000, 3.42375, 3.82750],
    ("format2", "gps"): [0.30125, 0.38875, 0.47625],
    ("format2", "data"): [0.56375, 0.96750, 1.37125, 1.77500,
                          2.17875, 2.58250, 2.98625, 3.39000, 3.79375],
}


def run_table2(quick: bool = False,
               jobs: Optional[int] = None,
               cache: Any = None) -> ExperimentResult:
    rows = []
    mismatches = []
    layouts = {"format1": timing.FORMAT1, "format2": timing.FORMAT2}
    for (fmt, kind), paper_values in PAPER_TABLE2.items():
        layout = layouts[fmt]
        model_values = (layout.gps_offsets if kind == "gps"
                        else layout.data_offsets)
        for index, (paper, model) in enumerate(
                zip(paper_values, model_values), start=1):
            match = abs(paper - model) < 1e-9
            if not match:
                mismatches.append(f"{fmt} {kind} slot {index}")
            rows.append([f"{fmt} {kind} slot {index}", paper, model,
                         "ok" if match else "MISMATCH"])
    return ExperimentResult(
        experiment_id="T2",
        title="Reverse channel access times (Table 2)",
        headers=["slot", "paper", "model", "check"],
        rows=rows,
        notes=("Offsets are relative to the forward cycle start and "
               "include the 0.30125 s reverse shift.  Format-2 data "
               "slots 8-9 use the corrected arithmetic values (the "
               "paper's printed 2.98625/3.39 contain a typo)."),
        extra={"mismatches": mismatches})


def run(quick: bool = False,
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    return run_table2(quick=quick)
