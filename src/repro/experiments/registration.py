"""Registration latency (Section 2.1 design goal).

Design requirement: 80% of registration requests approved within two
notification cycles, 99% within ten.  Evaluated in the intended operating
regime -- subscribers arriving over time (Poisson) -- plus a worst-case
simultaneous-storm scenario showing the adaptive contention-slot
mechanism digging the cell out of a pile-up.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.core.cell import run_cell
from repro.core.config import CellConfig
from repro.engine import Point, RunSpec, execute, group_means
from repro.experiments.runner import ExperimentResult, cycles_for

SCENARIOS = (("poisson", 0.05), ("poisson", 0.15),
             ("simultaneous", None))


def registration_task(config: CellConfig) -> Dict[str, float]:
    """Task: one registration scenario -> latency CDF points."""
    stats = run_cell(config)
    return {"registered": float(stats.registrations_completed),
            "mean_cycles": stats.registration_latency_cycles.mean,
            "cdf2": stats.registration_cdf(2),
            "cdf10": stats.registration_cdf(10)}


def spec(quick: bool = False,
         seeds: Sequence[int] = (1, 2, 3)) -> RunSpec:
    cycles, _ = cycles_for(quick)
    points = []
    for mode, rate in SCENARIOS:
        label = mode if rate is None else f"{mode} ({rate}/s)"
        for seed in seeds:
            config = CellConfig(
                num_data_users=14, num_gps_users=8, load_index=0.5,
                registration_mode=mode,
                registration_rate=rate or 0.25,
                cycles=max(cycles, 120), warmup_cycles=30, seed=seed)
            points.append(Point(fn=registration_task, config=config,
                                label=dict(scenario=label, seed=seed)))
    return RunSpec(
        name="registration",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("scenario",)))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    result = execute(spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = [[point["scenario"], point["registered"],
             point["mean_cycles"], point["cdf2"], point["cdf10"]]
            for point in result.reduced]
    return ExperimentResult(
        experiment_id="R1",
        title="Registration latency vs the Section 2.1 design goals",
        headers=["arrival pattern", "registered", "mean_cycles",
                 "P[<=2 cycles]", "P[<=10 cycles]"],
        rows=rows,
        notes=("Goals: P[<=2] >= 0.80 and P[<=10] >= 0.99 for the "
               "sparse-arrival regimes.  The simultaneous storm (22 "
               "subscribers in cycle 0) is a stress case: persistence "
               "plus adaptive contention slots still converge, at "
               "higher latency."))
