"""Fig. 10 (prose: Fig. 9): contention collisions and reservation latency.

(a) probability that a used contention slot sees a collision, vs load;
(b) mean reservation latency (cycles from a subscriber's first
    reservation attempt to the base station receiving it), vs load.

Paper's finding: both *decrease* as load increases, for the same reason
as the control-overhead trend -- piggybacked reservations mean fewer
subscribers contend at once.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.experiments.runner import (
    ExperimentResult,
    PAPER_LOADS,
    sweep_loads,
)


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        loads: Sequence[float] = PAPER_LOADS,
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    points = sweep_loads(loads=loads, seeds=seeds, quick=quick,
                         jobs=jobs, cache=cache)
    rows = [[point["load"], point["collision_probability"],
             point["mean_reservation_latency_cycles"]]
            for point in points]
    return ExperimentResult(
        experiment_id="F10",
        title="Contention-slot collision probability and reservation "
              "latency vs load (Fig. 10)",
        headers=["load", "p_collision", "reservation_latency_cycles"],
        rows=rows,
        notes=("Expected shape: both high in the contention-heavy "
               "mid-load regime and low at heavy load, where almost all "
               "reservations are piggybacked on data packets.  (High-"
               "load points average very few contention events, so they "
               "are noisy.)"))
