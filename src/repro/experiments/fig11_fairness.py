"""Fig. 11: Jain's fairness index of per-subscriber bandwidth vs load.

Paper's finding: round-robin reverse-slot scheduling keeps the fairness
index above 0.99 under all traffic loads.

Note on run length: at light load the index is dominated by the Poisson
sampling noise of the *offered* traffic (each subscriber only generates a
handful of messages), so this experiment uses longer runs than the other
sweeps; the scheduler itself is exactly fair (see
tests/test_scheduler.py::TestRoundRobin).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.experiments.runner import ExperimentResult, PAPER_LOADS, \
    sweep_loads


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        loads: Sequence[float] = PAPER_LOADS,
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    cycles = (300, 40) if quick else (1200, 60)
    points = sweep_loads(loads=loads, seeds=seeds,
                         cycles=cycles[0], warmup_cycles=cycles[1],
                         jobs=jobs, cache=cache)
    rows = [[point["load"], point["fairness"]] for point in points]
    return ExperimentResult(
        experiment_id="F11",
        title="Jain fairness index vs load (Fig. 11)",
        headers=["load", "fairness"],
        rows=rows,
        notes=("Expected shape: ~1 at saturation (structural round-robin "
               "fairness); slightly lower at light load where finite-run "
               "arrival noise, not the scheduler, sets the index."))
