"""CLI: run experiment harnesses and print their reports.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig8a fig8b --quick
    python -m repro.experiments all --quick --jobs 4
    python -m repro.experiments fig8a --no-cache
    python -m repro.experiments chaos --jobs 4 --resume --retries 2

``--jobs N`` (or ``REPRO_JOBS=N``) runs the experiment's simulation grid
on a process pool; results are bit-identical to ``--jobs 1``.  Results
are cached under ``.repro-cache/`` (keyed by config + code version), so
reruns of an unchanged experiment skip the simulations entirely; disable
with ``--no-cache`` or ``REPRO_CACHE=0``.

Resilience flags (``REPRO_TIMEOUT``/``REPRO_RETRIES``/``REPRO_RESUME``/
``REPRO_FAIL_FAST`` env mirrors): ``--timeout``/``--retries`` bound and
retry slow or flaky points, ``--resume`` checkpoints each grid so an
interrupted run picks up where it was killed, and points that exhaust
their retries are reported (exit code 1) instead of aborting the sweep
-- unless ``--fail-fast`` asks for an immediate abort.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.engine import (
    PointFailureError,
    resolve_policy,
    set_default_policy,
    telemetry,
)
from repro.experiments import (
    ablation,
    baselines,
    calibration,
    chaos,
    fig8_delay,
    fig8_utilization,
    fig9_overhead,
    fig10_collision,
    fig11_fairness,
    fig12_gains,
    gps_qos,
    kernel_diff,
    qos_baselines,
    registration,
    robustness,
    tables,
)

EXPERIMENTS = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "fig8a": fig8_utilization.run,
    "fig8b": fig8_delay.run,
    "fig9": fig9_overhead.run,
    "fig10": fig10_collision.run,
    "fig11": fig11_fairness.run,
    "fig12a": fig12_gains.run_second_cf,
    "fig12b": fig12_gains.run_dynamic_adjustment,
    "registration": registration.run,
    "robustness": robustness.run,
    "chaos": chaos.run,
    "gps": gps_qos.run,
    "baselines": baselines.run,
    "qos-rqma": qos_baselines.run_rqma,
    "qos-fama": qos_baselines.run_fama,
    "qos-mcns": qos_baselines.run_mcns,
    "ablation": ablation.run,
    "calibration": calibration.run,
    "kernel-diff": kernel_diff.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("names", nargs="*",
                        help="experiment names (or 'all')")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--quick", action="store_true",
                        help="smaller runs (benchmark-sized)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="simulation points run in parallel on N "
                             "processes (default: REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write .repro-cache/")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="per-point wall-clock limit in seconds; "
                             "hung workers are killed and the point "
                             "retried (parallel executor; "
                             "REPRO_TIMEOUT)")
    parser.add_argument("--retries", type=int, default=None,
                        metavar="N",
                        help="extra attempts for failed or timed-out "
                             "points, with exponential backoff "
                             "(REPRO_RETRIES)")
    parser.add_argument("--resume", action="store_true",
                        help="checkpoint each grid to a journal and "
                             "resume an interrupted run, recomputing "
                             "only unfinished points (REPRO_RESUME=1)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first exhausted point "
                             "instead of salvaging partial results "
                             "(REPRO_FAIL_FAST=1)")
    parser.add_argument("--plot", action="store_true",
                        help="also render each result as an ASCII chart")
    parser.add_argument("--save-csv", metavar="DIR",
                        help="also write each result to DIR/<name>.csv")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write the metrics-registry samples "
                             "(engine counters etc.) to PATH as JSONL "
                             "plus manifest and Prometheus sidecars")
    parser.add_argument("--profile", action="store_true",
                        help="time each experiment end to end and "
                             "print a self-profile table to stderr")
    args = parser.parse_args(argv)

    if args.list or not args.names:
        for name in EXPERIMENTS:
            print(name)
        return 0

    cache = False if args.no_cache else None
    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    from repro.obs.profiler import PROFILER
    from repro.obs.registry import default_registry
    if args.metrics:
        default_registry().enable()
        default_registry().reset()
    if args.profile:
        PROFILER.enabled = True
        PROFILER.reset()
    # Install the resilience flags as the process-default policy so
    # every execute() call under every runner sees them (unset flags
    # still fall back to the REPRO_* environment mirrors).
    set_default_policy(resolve_policy(
        timeout_s=args.timeout, retries=args.retries,
        resume=args.resume or None,
        fail_fast=args.fail_fast or None))
    exit_code = 0
    try:
        for name in names:
            runner = EXPERIMENTS.get(name)
            if runner is None:
                print(f"unknown experiment {name!r}; use --list",
                      file=sys.stderr)
                return 2
            telemetry.reset()
            started = time.time()
            try:
                with PROFILER.section(f"experiment.{name}"):
                    result = runner(quick=args.quick, jobs=args.jobs,
                                    cache=cache)
            except PointFailureError as error:
                print(f"[{name} aborted by --fail-fast: {error}]",
                      file=sys.stderr)
                return 1
            print(result.format())
            if args.plot:
                _maybe_plot(result)
            if args.save_csv:
                import os
                os.makedirs(args.save_csv, exist_ok=True)
                path = os.path.join(args.save_csv, f"{name}.csv")
                result.save_csv(path)
                print(f"[wrote {path}]")
            if telemetry.records:
                print(telemetry.format())
            if telemetry.failures:
                _print_failure_report(name, telemetry.failures)
                exit_code = 1
            print(f"[{name} finished in {time.time() - started:.1f}s]")
            print()
    finally:
        set_default_policy(None)
        if args.profile:
            print(PROFILER.table(), file=sys.stderr)
            PROFILER.enabled = False
        if args.metrics:
            _write_metrics(args.metrics, names, argv)
    return exit_code


def _write_metrics(path: str, names, argv) -> None:
    """Dump the registry plus manifest/Prometheus sidecars."""
    from repro.obs.export import (
        build_manifest,
        sidecar_paths,
        write_jsonl,
        write_manifest,
        write_prometheus,
    )
    from repro.obs.registry import default_registry

    registry = default_registry()
    write_jsonl(path, registry.rows())
    paths = sidecar_paths(path)
    write_manifest(paths["manifest"], build_manifest(
        "experiments", argv=argv,
        extra={"experiments": list(names)}))
    write_prometheus(paths["prometheus"], registry)
    print(f"[metrics] registry -> {path} "
          f"(manifest: {paths['manifest']}, "
          f"prometheus: {paths['prometheus']})", file=sys.stderr)


def _print_failure_report(name: str, failures) -> None:
    """The structured report for points that exhausted their retries."""
    report = {"experiment": name,
              "failed_points": [failure.to_json()
                                for failure in failures]}
    print(f"[{name}: {len(failures)} point(s) exhausted their retries; "
          "the table above averages the surviving points]",
          file=sys.stderr)
    print(json.dumps(report, indent=2), file=sys.stderr)


def _maybe_plot(result) -> None:
    """Chart the result when its first column is numeric."""
    from repro.experiments.plots import render_result

    try:
        x_column = result.headers[0]
        float(result.rows[0][0])
        numeric = [header for header in result.headers[1:]
                   if isinstance(result.rows[0][
                       result.headers.index(header)], (int, float))]
        if not numeric:
            return
        print()
        print(render_result(result, x_column, numeric))
    except (TypeError, ValueError):
        return  # non-numeric table (e.g. Table 1): nothing to chart


if __name__ == "__main__":
    raise SystemExit(main())
