"""CLI: run experiment harnesses and print their reports.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig8a fig8b --quick
    python -m repro.experiments all --quick --jobs 4
    python -m repro.experiments fig8a --no-cache

``--jobs N`` (or ``REPRO_JOBS=N``) runs the experiment's simulation grid
on a process pool; results are bit-identical to ``--jobs 1``.  Results
are cached under ``.repro-cache/`` (keyed by config + code version), so
reruns of an unchanged experiment skip the simulations entirely; disable
with ``--no-cache`` or ``REPRO_CACHE=0``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.engine import telemetry
from repro.experiments import (
    ablation,
    baselines,
    calibration,
    chaos,
    fig8_delay,
    fig8_utilization,
    fig9_overhead,
    fig10_collision,
    fig11_fairness,
    fig12_gains,
    gps_qos,
    qos_baselines,
    registration,
    robustness,
    tables,
)

EXPERIMENTS = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "fig8a": fig8_utilization.run,
    "fig8b": fig8_delay.run,
    "fig9": fig9_overhead.run,
    "fig10": fig10_collision.run,
    "fig11": fig11_fairness.run,
    "fig12a": fig12_gains.run_second_cf,
    "fig12b": fig12_gains.run_dynamic_adjustment,
    "registration": registration.run,
    "robustness": robustness.run,
    "chaos": chaos.run,
    "gps": gps_qos.run,
    "baselines": baselines.run,
    "qos-rqma": qos_baselines.run_rqma,
    "qos-fama": qos_baselines.run_fama,
    "qos-mcns": qos_baselines.run_mcns,
    "ablation": ablation.run,
    "calibration": calibration.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("names", nargs="*",
                        help="experiment names (or 'all')")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--quick", action="store_true",
                        help="smaller runs (benchmark-sized)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="simulation points run in parallel on N "
                             "processes (default: REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write .repro-cache/")
    parser.add_argument("--plot", action="store_true",
                        help="also render each result as an ASCII chart")
    parser.add_argument("--save-csv", metavar="DIR",
                        help="also write each result to DIR/<name>.csv")
    args = parser.parse_args(argv)

    if args.list or not args.names:
        for name in EXPERIMENTS:
            print(name)
        return 0

    cache = False if args.no_cache else None
    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    for name in names:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; use --list",
                  file=sys.stderr)
            return 2
        telemetry.reset()
        started = time.time()
        result = runner(quick=args.quick, jobs=args.jobs, cache=cache)
        print(result.format())
        if args.plot:
            _maybe_plot(result)
        if args.save_csv:
            import os
            os.makedirs(args.save_csv, exist_ok=True)
            path = os.path.join(args.save_csv, f"{name}.csv")
            result.save_csv(path)
            print(f"[wrote {path}]")
        if telemetry.records:
            print(telemetry.format())
        print(f"[{name} finished in {time.time() - started:.1f}s]")
        print()
    return 0


def _maybe_plot(result) -> None:
    """Chart the result when its first column is numeric."""
    from repro.experiments.plots import render_result

    try:
        x_column = result.headers[0]
        float(result.rows[0][0])
        numeric = [header for header in result.headers[1:]
                   if isinstance(result.rows[0][
                       result.headers.index(header)], (int, float))]
        if not numeric:
            return
        print()
        print(render_result(result, x_column, numeric))
    except (TypeError, ValueError):
        return  # non-numeric table (e.g. Table 1): nothing to chart


if __name__ == "__main__":
    raise SystemExit(main())
