"""Fig. 9 (captioned; prose calls it Fig. 10): control overhead vs load.

The index of control overhead is the ratio of reservation packets
(transmitted in contention slots) to data packets (transmitted in data
slots).  Paper's finding -- "counter-intuitively the control overhead
decreases as the load increases": under load, reservation requests ride
the piggyback bit of uplink data packets instead of costing contention
transmissions.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.experiments.runner import (
    ExperimentResult,
    PAPER_LOADS,
    sweep_loads,
)


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        loads: Sequence[float] = PAPER_LOADS,
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    points = sweep_loads(loads=loads, seeds=seeds, quick=quick,
                         jobs=jobs, cache=cache)
    rows = [[point["load"], point["control_overhead"]]
            for point in points]
    return ExperimentResult(
        experiment_id="F9",
        title="Control overhead (reservation/data packets) vs load "
              "(Fig. 9)",
        headers=["load", "control_overhead"],
        rows=rows,
        notes=("Expected shape: decreasing in load -- piggybacked "
               "(implicit) reservations displace explicit reservation "
               "packets as queues stay non-empty."))
