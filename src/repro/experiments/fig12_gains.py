"""Fig. 12: the two protocol-specific bandwidth recovery mechanisms.

(a) Gain from the second control-field set: the fraction of uplink data
    packets carried by the *last* reverse data slot (which overlaps the
    next cycle's CF1 and is only usable because its owner listens to
    CF2).  Paper: between 5% and 14%.

(b) Gain from dynamic slot adjustment: average number of reverse data
    slots used per cycle, for 1 and 4 active GPS users, with and without
    the adjustment.  With <= 3 GPS users, 5 unused GPS slots merge into a
    9th data slot; the paper reports up to ~15% more usable bandwidth.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.engine import RunSpec, cell_point, execute, group_means
from repro.experiments.runner import (
    ExperimentResult,
    PAPER_LOADS,
    sweep_cell_config,
    sweep_loads,
)


def run_second_cf(quick: bool = False,
                  seeds: Sequence[int] = (1, 2, 3),
                  loads: Sequence[float] = PAPER_LOADS,
                  jobs: Optional[int] = None,
                  cache: Any = None) -> ExperimentResult:
    points = sweep_loads(loads=loads, seeds=seeds, quick=quick,
                         jobs=jobs, cache=cache)
    rows = [[point["load"], point["second_cf_gain"]] for point in points]
    return ExperimentResult(
        experiment_id="F12a",
        title="Bandwidth gain from the second control-field set "
              "(Fig. 12a)",
        headers=["load", "last_slot_share"],
        rows=rows,
        notes=("Share of delivered data packets carried by the last "
               "reverse data slot.  Paper: 5%-14%; the structural "
               "ceiling is 1/8 = 12.5% of a fully-loaded format-2 "
               "cycle's assignable slots."))


def dynamic_adjustment_spec(quick: bool = False,
                            seeds: Sequence[int] = (1, 2, 3),
                            loads: Sequence[float] = PAPER_LOADS
                            ) -> RunSpec:
    """Grid: load x {1,4} GPS users x {dynamic,static} x seed."""
    points = []
    for load in loads:
        for gps_users in (1, 4):
            for dynamic in (True, False):
                for seed in seeds:
                    config = sweep_cell_config(
                        load, seed, quick=quick,
                        num_gps_users=gps_users,
                        dynamic_slot_adjustment=dynamic)
                    points.append(cell_point(
                        config, load=load, gps=gps_users,
                        dynamic=dynamic, seed=seed))
    return RunSpec(
        name="fig12b",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("load", "gps", "dynamic")))


def run_dynamic_adjustment(quick: bool = False,
                           seeds: Sequence[int] = (1, 2, 3),
                           loads: Sequence[float] = PAPER_LOADS,
                           jobs: Optional[int] = None,
                           cache: Any = None) -> ExperimentResult:
    spec = dynamic_adjustment_spec(quick=quick, seeds=seeds, loads=loads)
    cells = {(point["load"], point["gps"], point["dynamic"]):
             point["mean_data_slots_used"]
             for point in execute(spec, jobs=jobs, cache=cache).reduced}
    rows = [[load,
             cells[(load, 1, True)], cells[(load, 1, False)],
             cells[(load, 4, True)], cells[(load, 4, False)]]
            for load in loads]
    return ExperimentResult(
        experiment_id="F12b",
        title="Data slots used per cycle with/without dynamic slot "
              "adjustment (Fig. 12b)",
        headers=["load", "gps1_dynamic", "gps1_static",
                 "gps4_dynamic", "gps4_static"],
        rows=rows,
        notes=("With 1 GPS user, dynamic adjustment converts the 5 "
               "unused GPS slots into a 9th data slot (format 2): up to "
               "~12-15% more slots served at saturation.  With 4 GPS "
               "users both variants run format 1, so the curves "
               "coincide -- exactly the paper's observation that the "
               "effect only appears when GPS slots go unused."))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    """Default entry point: Fig. 12(a)."""
    return run_second_cf(quick=quick, seeds=seeds, jobs=jobs,
                         cache=cache)
