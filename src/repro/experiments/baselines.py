"""X1: the surveyed baseline protocols under a common voice+data load.

The paper surveys PRMA, D-TDMA, RAMA and DRMA but does not simulate them
("a comparison among them would not be fair").  This extension experiment
quantifies the trade-offs the survey describes qualitatively:

* PRMA's contention-only access degrades at medium-to-heavy load;
* D-TDMA's dedicated ALOHA reservation minislots waste bandwidth when
  idle and collide when busy;
* RAMA's deterministic auction never wastes a reservation opportunity;
* DRMA converts slots to reservation bursts only on demand.

Slotted ALOHA is included as the classic lower bound.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentResult
from repro.protocols import DRMA, DynamicTDMA, PRMA, RAMA, SlottedAloha


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    frames = 400 if quick else 1500
    rows = []
    for arrival in (0.02, 0.06, 0.12, 0.25):
        for name in ("aloha", "prma", "dtdma", "rama", "drma"):
            throughput = drops = delay = 0.0
            for seed in seeds:
                stats = _run_one(name, arrival, frames, seed)
                throughput += stats.throughput()
                drops += stats.voice_drop_probability()
                delay += stats.mean_data_delay()
            n = len(seeds)
            rows.append([arrival, name, throughput / n, drops / n,
                         delay / n])
    return ExperimentResult(
        experiment_id="X1",
        title="Surveyed baselines: throughput / voice drops / data delay "
              "(extension)",
        headers=["data_arrival_p", "protocol", "throughput",
                 "voice_drop_p", "data_delay_slots"],
        rows=rows,
        notes=("20 voice + 20 data terminals, 20-slot frames (4 "
               "reservation/auction slots where applicable).  Expected "
               "ordering at heavy load: RAMA >= DRMA ~ D-TDMA > PRMA > "
               "ALOHA in throughput; PRMA's collapse under contention "
               "is the survey's central critique."))


def _run_one(name: str, arrival: float, frames: int, seed: int):
    common = dict(num_voice=20, num_data=20,
                  data_arrival_probability=arrival, seed=seed)
    if name == "aloha":
        protocol = SlottedAloha(num_terminals=20,
                                arrival_probability=arrival,
                                transmit_probability=0.1, seed=seed)
        return protocol.run(frames * 20)
    if name == "prma":
        return PRMA(slots_per_frame=20, **common).run(frames)
    if name == "dtdma":
        return DynamicTDMA(reservation_slots=4, voice_slots=10,
                           data_slots=6, **common).run(frames)
    if name == "rama":
        return RAMA(auction_slots=4, voice_slots=10, data_slots=6,
                    **common).run(frames)
    if name == "drma":
        return DRMA(slots_per_frame=20, **common).run(frames)
    raise ValueError(f"unknown protocol {name!r}")
