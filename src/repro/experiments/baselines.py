"""X1: the surveyed baseline protocols under a common voice+data load.

The paper surveys PRMA, D-TDMA, RAMA and DRMA but does not simulate them
("a comparison among them would not be fair").  This extension experiment
quantifies the trade-offs the survey describes qualitatively:

* PRMA's contention-only access degrades at medium-to-heavy load;
* D-TDMA's dedicated ALOHA reservation minislots waste bandwidth when
  idle and collide when busy;
* RAMA's deterministic auction never wastes a reservation opportunity;
* DRMA converts slots to reservation bursts only on demand.

Slotted ALOHA is included as the classic lower bound.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.engine import Point, RunSpec, execute, group_means
from repro.experiments.runner import ExperimentResult

PROTOCOLS = ("aloha", "prma", "dtdma", "rama", "drma")
ARRIVALS = (0.02, 0.06, 0.12, 0.25)


def baseline_task(config: Dict[str, Any]) -> Dict[str, float]:
    """Task: one baseline protocol run -> headline metrics."""
    stats = _run_one(config["name"], config["arrival"],
                     config["frames"], config["seed"])
    return {"throughput": stats.throughput(),
            "voice_drop_p": stats.voice_drop_probability(),
            "data_delay_slots": stats.mean_data_delay()}


def spec(quick: bool = False,
         seeds: Sequence[int] = (1, 2, 3)) -> RunSpec:
    frames = 400 if quick else 1500
    points = []
    for arrival in ARRIVALS:
        for name in PROTOCOLS:
            for seed in seeds:
                points.append(Point(
                    fn=baseline_task,
                    config=dict(name=name, arrival=arrival,
                                frames=frames, seed=seed),
                    label=dict(arrival=arrival, protocol=name,
                               seed=seed)))
    return RunSpec(
        name="baselines",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("arrival", "protocol")))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    result = execute(spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = [[point["arrival"], point["protocol"], point["throughput"],
             point["voice_drop_p"], point["data_delay_slots"]]
            for point in result.reduced]
    return ExperimentResult(
        experiment_id="X1",
        title="Surveyed baselines: throughput / voice drops / data delay "
              "(extension)",
        headers=["data_arrival_p", "protocol", "throughput",
                 "voice_drop_p", "data_delay_slots"],
        rows=rows,
        notes=("20 voice + 20 data terminals, 20-slot frames (4 "
               "reservation/auction slots where applicable).  Expected "
               "ordering at heavy load: RAMA >= DRMA ~ D-TDMA > PRMA > "
               "ALOHA in throughput; PRMA's collapse under contention "
               "is the survey's central critique."))


def _run_one(name: str, arrival: float, frames: int, seed: int):
    from repro.protocols import DRMA, DynamicTDMA, PRMA, RAMA, SlottedAloha

    common = dict(num_voice=20, num_data=20,
                  data_arrival_probability=arrival, seed=seed)
    if name == "aloha":
        protocol = SlottedAloha(num_terminals=20,
                                arrival_probability=arrival,
                                transmit_probability=0.1, seed=seed)
        return protocol.run(frames * 20)
    if name == "prma":
        return PRMA(slots_per_frame=20, **common).run(frames)
    if name == "dtdma":
        return DynamicTDMA(reservation_slots=4, voice_slots=10,
                           data_slots=6, **common).run(frames)
    if name == "rama":
        return RAMA(auction_slots=4, voice_slots=10, data_slots=6,
                    **common).run(frames)
    if name == "drma":
        return DRMA(slots_per_frame=20, **common).run(frames)
    raise ValueError(f"unknown protocol {name!r}")
