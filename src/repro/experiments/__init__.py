"""Experiment harnesses: one module per table/figure of the paper.

Every artifact of the paper's evaluation section has a module here that
regenerates it (see the per-experiment index in DESIGN.md):

========  ==========================================  =====================
artifact  what it shows                               module
========  ==========================================  =====================
Table 1   physical-layer timing parameters            ``tables``
Table 2   reverse-channel access times                ``tables``
Fig 8(a)  utilization vs load                         ``fig8_utilization``
Fig 8(b)  packet delay vs load                        ``fig8_delay``
Fig 9     control overhead vs load                    ``fig9_overhead``
Fig 10    contention collisions / reservation latency ``fig10_collision``
Fig 11    fairness vs load                            ``fig11_fairness``
Fig 12a   second-control-field bandwidth gain         ``fig12_gains``
Fig 12b   dynamic slot adjustment gain                ``fig12_gains``
(S 2.1)   registration latency CDF                    ``registration``
(S 3.3)   GPS temporal QoS                            ``gps_qos``
X1        surveyed baseline protocols                 ``baselines``
X2        design-choice ablations                     ``ablation``
========  ==========================================  =====================

Each module exposes ``run(quick=False, seeds=...) -> ExperimentResult``;
``python -m repro.experiments --list`` enumerates them and
``python -m repro.experiments <name>`` runs one and prints its report.
"""

from repro.experiments.runner import (
    ExperimentResult,
    PAPER_LOADS,
    average_summaries,
    sweep_cell_config,
    sweep_loads,
    sweep_spec,
)

__all__ = [
    "ExperimentResult",
    "PAPER_LOADS",
    "average_summaries",
    "sweep_cell_config",
    "sweep_loads",
    "sweep_spec",
]
