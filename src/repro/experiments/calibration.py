"""Calibration: symbol-level error models -> per-codeword outage rate.

The paper's field observation (Section 2.2) is that an RS(64,48)
codeword is either delivered error-free or lost.  The full-fidelity path
(Gilbert--Elliott symbol errors + the real RS decoder) reproduces this
dichotomy but costs a decoder run per codeword; the large evaluation
sweeps use the cheap :class:`~repro.phy.errors.OutageModel` instead.
This experiment measures the loss rate the symbol-level models induce so
the outage model can be configured to match.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Sequence

from repro.engine import Point, RunSpec, execute, group_means
from repro.experiments.runner import ExperimentResult
from repro.phy.errors import GilbertElliottModel, IndependentSymbolErrors
from repro.phy.rs import RS_64_48, RSDecodeFailure


def measure_loss_rate(model, trials: int, seed: int) -> float:
    """Fraction of codewords the RS decoder cannot recover."""
    rng = random.Random(seed)
    message = bytes(48)
    clean = RS_64_48.encode(message)
    lost = 0
    for _ in range(trials):
        received = model.corrupt(clean, rng)
        try:
            if RS_64_48.decode(received) != message:
                lost += 1  # miscorrection: counted as loss
        except RSDecodeFailure:
            lost += 1
    return lost / trials


def calibration_task(config: Dict[str, Any]) -> Dict[str, float]:
    """Task: one (channel model, seed) calibration measurement."""
    return {"codeword_loss_rate": measure_loss_rate(
        config["model"], config["trials"], config["seed"])}


def scenarios():
    return [
        ("GE default (1% bad state)", GilbertElliottModel()),
        ("GE deep fades",
         GilbertElliottModel(p_good=0.002, p_bad=0.4,
                             p_good_to_bad=1e-3, p_bad_to_good=1e-2)),
        ("iid SER=0.5%", IndependentSymbolErrors(0.005)),
        ("iid SER=2%", IndependentSymbolErrors(0.02)),
        ("iid SER=5%", IndependentSymbolErrors(0.05)),
        ("iid SER=10%", IndependentSymbolErrors(0.10)),
    ]


def spec(quick: bool = False,
         seeds: Sequence[int] = (1,)) -> RunSpec:
    trials = 300 if quick else 2000
    points = []
    for name, model in scenarios():
        for seed in seeds:
            points.append(Point(
                fn=calibration_task,
                config=dict(model=model, trials=trials, seed=seed),
                label=dict(scenario=name, seed=seed)))
    return RunSpec(
        name="calibration",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("scenario",)))


def run(quick: bool = False,
        seeds: Sequence[int] = (1,),
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    result = execute(spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = [[point["scenario"], point["codeword_loss_rate"]]
            for point in result.reduced]
    return ExperimentResult(
        experiment_id="C1",
        title="Codeword outage calibration: symbol models through the "
              "real RS(64,48) decoder",
        headers=["channel model", "codeword_loss_rate"],
        rows=rows,
        notes=("Feed the measured loss rate into "
               "CellConfig(error_model='outage', outage_loss=...) to run "
               "large sweeps with the same delivered/lost statistics as "
               "the full-fidelity path.  Note the RS(64,48) cliff: "
               "iid SER <= 2% is essentially lossless (t = 8 of 64 "
               "symbols), 10% is heavily lossy."))
