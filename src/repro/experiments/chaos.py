"""R3: graceful degradation under faults (chaos sweep).

The paper's deployment story (Section 2) is a metropolitan fleet of
buses and portable subscribers: units power-cycle, drive through deep
fades, and silently vanish.  This experiment injects scripted faults --
crash/restart churn, deep-fade windows, control-field storms -- at
increasing intensities and verifies that the protocol *degrades* instead
of breaking: every restarted subscriber re-registers (through the
liveness-lease eviction/recovery path), no UID or GPS slot leaks, and
the continuous invariant monitor (:mod:`repro.faults.invariants`) stays
silent.  The last column of the table must be all zeros.

The fault plan for each grid point is derived deterministically from the
(intensity, churn, seed) coordinate, so points remain cacheable and the
sweep is bit-identical under any ``--jobs`` setting.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence, Tuple

from repro.core.config import CellConfig
from repro.engine import RunSpec, cell_point, execute, group_means
from repro.experiments.runner import ExperimentResult, cycles_for
from repro.faults import schedule

#: Scenario population: Section 5's mid-size cell.
DATA_USERS = 9
GPS_USERS = 4

INTENSITIES = (0.0, 0.5, 1.0)
CHURNS = (0.0, 0.5, 1.0)

#: Registrants silent for this many cycles are deregistered.
LEASE_CYCLES = 8


def fault_plan(intensity: float, churn: float, seed: int,
               cycles: int, warmup: int,
               num_data: int = DATA_USERS,
               num_gps: int = GPS_USERS,
               ) -> Tuple[schedule.FaultSpec, ...]:
    """A deterministic fault schedule for one grid coordinate.

    ``churn`` scales the number of crash/restart pairs; ``intensity``
    scales deep-fade windows and control-field storms.  The plan is a
    pure function of the arguments (its own ``random.Random`` instance
    seeded from the coordinate), so the enclosing config hashes -- and
    caches -- deterministically.
    """
    rng = random.Random(f"chaos/{intensity}/{churn}/{seed}")
    population = ([f"data-{index}" for index in range(num_data)]
                  + [f"gps-{index}" for index in range(num_gps)])
    first = warmup + 2
    # Leave room at the end so every restart can finish re-registering
    # inside the measured window.
    last = max(first + 1, cycles - 3 * LEASE_CYCLES)
    specs = []
    for _ in range(round(churn * 6)):
        target = rng.choice(population)
        down_at = rng.randrange(first, last)
        downtime = rng.randrange(2, 2 * LEASE_CYCLES)
        specs.append(schedule.crash(target, down_at))
        specs.append(schedule.restart(target, down_at + downtime))
    for _ in range(round(intensity * 4)):
        target = rng.choice(population + ["data-*", "gps-*"])
        specs.append(schedule.fade(
            target, rng.randrange(first, last),
            duration_cycles=rng.randrange(1, 4),
            loss=rng.choice((0.8, 0.95, 1.0))))
    for _ in range(round(intensity * 2)):
        specs.append(schedule.cf_storm(
            rng.randrange(first, last),
            duration_cycles=rng.randrange(1, 3)))
    return tuple(specs)


def chaos_config(intensity: float, churn: float, seed: int,
                 quick: bool = False) -> CellConfig:
    cycles, warmup = cycles_for(quick)
    return CellConfig(
        num_data_users=DATA_USERS, num_gps_users=GPS_USERS,
        load_index=0.7, cycles=cycles, warmup_cycles=warmup,
        seed=seed,
        faults=fault_plan(intensity, churn, seed, cycles, warmup),
        liveness_lease_cycles=LEASE_CYCLES,
        check_invariants=True)


def spec(quick: bool = False,
         seeds: Sequence[int] = (1, 2)) -> RunSpec:
    points = []
    for intensity in INTENSITIES:
        for churn in CHURNS:
            for seed in seeds:
                points.append(cell_point(
                    chaos_config(intensity, churn, seed, quick=quick),
                    intensity=intensity, churn=churn, seed=seed))
    return RunSpec(
        name="chaos",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("intensity", "churn")))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2),
        jobs: Optional[int] = None,
        cache: Any = None,
        policy: Any = None) -> ExperimentResult:
    # The full (non-quick) grid is the longest sweep in the suite;
    # start it with --resume so a kill/reboot only costs the points
    # that had not yet been journaled.
    result = execute(spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache, policy=policy)
    rows = [[point["intensity"], point["churn"],
             point["faults_injected"], point["lease_evictions"],
             point["evictions_detected"], point["recoveries"],
             point["mean_recovery_cycles"],
             point["max_recovery_cycles"], point["messages_dropped"],
             point["gps_deadline_misses"], point["utilization"],
             point["invariant_violations"]]
            for point in result.reduced]
    return ExperimentResult(
        experiment_id="R3",
        title="Graceful degradation under fault injection "
              "(rho = 0.7, lease = 8 cycles)",
        headers=["intensity", "churn", "faults", "evictions",
                 "detected", "recoveries", "mean_rec_cy", "max_rec_cy",
                 "msg_lost", "gps_misses", "utilization",
                 "inv_violations"],
        rows=rows,
        notes=("Degradation must be graceful: message losses and GPS "
               "deadline misses may grow with fault intensity and "
               "churn, but every crashed subscriber recovers (the "
               "eviction/re-registration path), utilization stays "
               "positive, and the invariant monitor -- checking the "
               "registry bijection, GPS slot rules, schedule "
               "consistency and radio legality every cycle -- must "
               "report zero violations (last column all zeros)."))
