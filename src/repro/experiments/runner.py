"""Shared experiment machinery: load sweeps and result containers.

The sweep itself is delegated to :mod:`repro.engine`: every (load, seed)
pair becomes one engine point, so sweeps run serial or parallel
(``jobs``/``REPRO_JOBS``) and hit the on-disk result cache
transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.cell import run_cell
from repro.core.config import CellConfig
from repro.engine import RunSpec, cell_point, execute, group_means
from repro.engine.spec import Point, mean_of_summaries
from repro.metrics import CellStats

#: The load indices the paper sweeps (Section 5).
PAPER_LOADS = (0.3, 0.5, 0.8, 0.9, 1.0, 1.1)

#: Scenario defaults matching Section 5: up to 8 GPS buses, 5-14 data
#: users, variable-length (uniform 40-500 byte) e-mails.
EVAL_DEFAULTS = dict(num_data_users=9, num_gps_users=2,
                     message_size="uniform")


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Plain-text rendering of the table."""
        columns = [self.headers] + [
            [_fmt(cell) for cell in row] for row in self.rows]
        widths = [max(len(row[index]) for row in columns)
                  for index in range(len(self.headers))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(header.ljust(width) for header, width
                               in zip(self.headers, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(
                _fmt(cell).ljust(width)
                for cell, width in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def series(self, column: str) -> List[Any]:
        """One column of the table by header name."""
        index = self.headers.index(column)
        return [row[index] for row in self.rows]

    def to_csv(self) -> str:
        """The table as CSV text (for offline plotting/analysis)."""
        import csv
        import io
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.to_csv())


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def run_config(config: CellConfig) -> CellStats:
    return run_cell(config)


def cycles_for(quick: bool) -> "tuple[int, int]":
    """(cycles, warmup) for quick (bench) vs full experiment runs."""
    return (140, 25) if quick else (400, 40)


def sweep_cell_config(load: float, seed: int, quick: bool = False,
                      **config_overrides) -> CellConfig:
    """The Section-5 scenario config for one (load, seed) point."""
    cycles, warmup = cycles_for(quick)
    kwargs = dict(EVAL_DEFAULTS)
    kwargs.update(config_overrides)
    kwargs.setdefault("cycles", cycles)
    kwargs.setdefault("warmup_cycles", warmup)
    return CellConfig(load_index=load, seed=seed, **kwargs)


def _cell_summary_with_metric(payload) -> Dict[str, float]:
    """Task: cell summary plus a caller-supplied derived metric."""
    config, metric = payload
    stats = run_cell(config)
    summary = stats.summary()
    summary["metric"] = metric(stats)
    return summary


def sweep_spec(loads: Sequence[float] = PAPER_LOADS,
               seeds: Sequence[int] = (1, 2, 3),
               quick: bool = False,
               metric: Optional[Callable[[CellStats], float]] = None,
               **config_overrides) -> RunSpec:
    """The declarative spec behind :func:`sweep_loads`."""
    points = []
    for load in loads:
        for seed in seeds:
            config = sweep_cell_config(load, seed, quick=quick,
                                       **config_overrides)
            if metric is None:
                points.append(cell_point(config, load=load, seed=seed))
            else:
                points.append(Point(fn=_cell_summary_with_metric,
                                    config=(config, metric),
                                    label=dict(load=load, seed=seed)))
    return RunSpec(
        name="sweep_loads",
        points=tuple(points),
        reducer=lambda values, pts: group_means(values, pts, by=("load",)))


def _observed_reducer(values: Sequence[Dict[str, Any]],
                      points: Sequence[Point]) -> List[Dict[str, Any]]:
    """The normal per-load table, folded from observed results."""
    return group_means([value["summary"] for value in values],
                       points, by=("load",))


def observed_sweep_spec(loads: Sequence[float] = PAPER_LOADS,
                        seeds: Sequence[int] = (1, 2, 3),
                        quick: bool = False,
                        profile: bool = False,
                        **config_overrides) -> RunSpec:
    """:func:`sweep_spec` with per-cycle observability attached.

    Each point runs :func:`repro.obs.observe.run_cell_observed`, so its
    value carries the summary *plus* the per-cycle timeline, the
    timeline digest, and (with ``profile=True``) the self-profile
    sections -- all JSON-serializable, so caching, parallel execution,
    and resume work exactly as for a plain sweep.  The reducer still
    yields the familiar per-load table.
    """
    from repro.obs.observe import run_cell_observed

    points = []
    for load in loads:
        for seed in seeds:
            config = sweep_cell_config(load, seed, quick=quick,
                                       **config_overrides)
            points.append(Point(fn=run_cell_observed,
                                config=(config, bool(profile)),
                                label=dict(load=load, seed=seed)))
    return RunSpec(name="sweep_loads_observed", points=tuple(points),
                   reducer=_observed_reducer)


def sweep_loads(loads: Sequence[float] = PAPER_LOADS,
                seeds: Sequence[int] = (1, 2, 3),
                quick: bool = False,
                metric: Optional[Callable[[CellStats], float]] = None,
                jobs: Optional[int] = None,
                cache: Any = None,
                policy: Any = None,
                **config_overrides) -> List[Dict[str, Any]]:
    """Run the Section-5 scenario across load indices.

    Returns one dict per load with every headline metric averaged over
    the seeds (plus ``load``); when ``metric`` is given its value is
    added under the key ``"metric"``.  ``jobs`` selects the engine
    executor; ``cache`` controls the on-disk result cache (a ``metric``
    callable disables caching, since its code is not part of the cache
    key -- and must be a module-level function to run with jobs > 1).
    ``policy`` is an optional :class:`repro.engine.RunPolicy` with the
    resilience knobs (timeouts, retries, resume, fail-fast).
    """
    spec = sweep_spec(loads=loads, seeds=seeds, quick=quick,
                      metric=metric, **config_overrides)
    if metric is not None:
        cache = False
    return execute(spec, jobs=jobs, cache=cache, policy=policy).reduced


def average_summaries(summaries: List[Dict[str, float]]) -> Dict[str, float]:
    """Field-wise mean of several summary dicts.

    Keys are intersected across the summaries, so a field present in
    only some of them (e.g. ``metric`` set for part of the seeds) is
    dropped instead of raising ``KeyError``.
    """
    return mean_of_summaries(summaries)
