"""Shared experiment machinery: load sweeps and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.cell import run_cell
from repro.core.config import CellConfig
from repro.metrics import CellStats

#: The load indices the paper sweeps (Section 5).
PAPER_LOADS = (0.3, 0.5, 0.8, 0.9, 1.0, 1.1)

#: Scenario defaults matching Section 5: up to 8 GPS buses, 5-14 data
#: users, variable-length (uniform 40-500 byte) e-mails.
EVAL_DEFAULTS = dict(num_data_users=9, num_gps_users=2,
                     message_size="uniform")


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Plain-text rendering of the table."""
        columns = [self.headers] + [
            [_fmt(cell) for cell in row] for row in self.rows]
        widths = [max(len(row[index]) for row in columns)
                  for index in range(len(self.headers))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(header.ljust(width) for header, width
                               in zip(self.headers, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(
                _fmt(cell).ljust(width)
                for cell, width in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def series(self, column: str) -> List[Any]:
        """One column of the table by header name."""
        index = self.headers.index(column)
        return [row[index] for row in self.rows]

    def to_csv(self) -> str:
        """The table as CSV text (for offline plotting/analysis)."""
        import csv
        import io
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.to_csv())


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def run_config(config: CellConfig) -> CellStats:
    return run_cell(config)


def cycles_for(quick: bool) -> "tuple[int, int]":
    """(cycles, warmup) for quick (bench) vs full experiment runs."""
    return (140, 25) if quick else (400, 40)


def sweep_loads(loads: Sequence[float] = PAPER_LOADS,
                seeds: Sequence[int] = (1, 2, 3),
                quick: bool = False,
                metric: Optional[Callable[[CellStats], float]] = None,
                **config_overrides) -> List[Dict[str, Any]]:
    """Run the Section-5 scenario across load indices.

    Returns one dict per load with every headline metric averaged over
    the seeds (plus ``load``); when ``metric`` is given its value is
    added under the key ``"metric"``.
    """
    cycles, warmup = cycles_for(quick)
    points: List[Dict[str, Any]] = []
    for load in loads:
        summaries = []
        for seed in seeds:
            kwargs = dict(EVAL_DEFAULTS)
            kwargs.update(config_overrides)
            kwargs.setdefault("cycles", cycles)
            kwargs.setdefault("warmup_cycles", warmup)
            stats = run_cell(CellConfig(load_index=load, seed=seed,
                                        **kwargs))
            summary = stats.summary()
            if metric is not None:
                summary["metric"] = metric(stats)
            summaries.append(summary)
        point = average_summaries(summaries)
        point["load"] = load
        points.append(point)
    return points


def average_summaries(summaries: List[Dict[str, float]]) -> Dict[str, float]:
    """Field-wise mean of several summary dicts."""
    if not summaries:
        return {}
    keys = summaries[0].keys()
    return {key: sum(summary[key] for summary in summaries)
            / len(summaries) for key in keys}
