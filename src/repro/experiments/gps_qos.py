"""GPS temporal QoS (Sections 2.1 and 3.3).

Claim under test: every active GPS user gets at least one GPS slot in any
4-second interval, so a location report is transmitted within 4 s of its
arrival -- including across R1-R3 slot reassignment churn and format
switches.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.core.cell import build_cell
from repro.core.config import CellConfig
from repro.engine import Point, RunSpec, execute
from repro.experiments.runner import ExperimentResult, cycles_for
from repro.phy import timing

SCENARIOS = (("steady, 8 GPS users", False),
             ("churn: 5 of 8 sign off", True))


def gps_qos_task(config: Dict[str, Any]) -> Dict[str, float]:
    """Task: one GPS-QoS scenario (optionally with sign-off churn)."""
    cell_config = CellConfig(num_data_users=9, num_gps_users=8,
                             load_index=0.8, cycles=config["cycles"],
                             warmup_cycles=config["warmup"],
                             seed=config["seed"])
    run_obj = build_cell(cell_config)
    if config["churn"]:
        bs = run_obj.base_station
        for index, unit in enumerate(run_obj.gps_units[:5]):
            when = ((config["warmup"] + 20 + 12 * index)
                    * timing.CYCLE_LENGTH)

            def sign_off(unit=unit):
                if unit.uid is not None:
                    bs.sign_off(unit.uid)

            run_obj.sim.call_at(when, sign_off)
    run_obj.sim.run(until=cell_config.duration)
    stats = run_obj.stats
    return {"reports_sent": float(stats.gps_packets_sent),
            "deadline_misses": float(stats.gps_deadline_misses),
            "max_access_delay_s": stats.gps_access_delay.max or 0.0,
            "reassignments": float(
                len(run_obj.base_station.gps_mgr.reassignments))}


def spec(quick: bool = False,
         seeds: Sequence[int] = (1, 2, 3)) -> RunSpec:
    cycles, warmup = cycles_for(quick)
    points = []
    for scenario, churn in SCENARIOS:
        for seed in seeds:
            points.append(Point(
                fn=gps_qos_task,
                config=dict(churn=churn, cycles=cycles, warmup=warmup,
                            seed=seed),
                label=dict(scenario=scenario, seed=seed)))
    return RunSpec(name="gps_qos", points=tuple(points))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    result = execute(spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = []
    for scenario, _churn in SCENARIOS:
        group = [value for value, point
                 in zip(result.values, result.spec.points)
                 if point.label["scenario"] == scenario]
        n = len(group)
        rows.append([
            scenario,
            sum(value["reports_sent"] for value in group) / n,
            sum(value["deadline_misses"] for value in group) / n,
            max(value["max_access_delay_s"] for value in group),
            sum(value["reassignments"] for value in group) / n])
    return ExperimentResult(
        experiment_id="Q1",
        title="GPS access-delay QoS (4 s deadline)",
        headers=["scenario", "reports_sent", "deadline_misses",
                 "max_access_delay_s", "R3_reassignments"],
        rows=rows,
        notes=("Expected: zero deadline misses and max access delay "
               "< 4.0 s in both scenarios; the churn scenario must show "
               "R3 reassignments actually firing."))
