"""GPS temporal QoS (Sections 2.1 and 3.3).

Claim under test: every active GPS user gets at least one GPS slot in any
4-second interval, so a location report is transmitted within 4 s of its
arrival -- including across R1-R3 slot reassignment churn and format
switches.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cell import build_cell
from repro.core.config import CellConfig
from repro.experiments.runner import ExperimentResult, cycles_for
from repro.phy import timing


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    cycles, warmup = cycles_for(quick)
    rows = []
    for scenario, churn in (("steady, 8 GPS users", False),
                            ("churn: 5 of 8 sign off", True)):
        sent = misses = reassignments = 0.0
        max_delay = 0.0
        for seed in seeds:
            config = CellConfig(num_data_users=9, num_gps_users=8,
                                load_index=0.8, cycles=cycles,
                                warmup_cycles=warmup, seed=seed)
            run_obj = build_cell(config)
            if churn:
                bs = run_obj.base_station
                for index, unit in enumerate(run_obj.gps_units[:5]):
                    when = (warmup + 20 + 12 * index) * timing.CYCLE_LENGTH

                    def sign_off(unit=unit):
                        if unit.uid is not None:
                            bs.sign_off(unit.uid)

                    run_obj.sim.call_at(when, sign_off)
            run_obj.sim.run(until=config.duration)
            stats = run_obj.stats
            sent += stats.gps_packets_sent
            misses += stats.gps_deadline_misses
            max_delay = max(max_delay, stats.gps_access_delay.max or 0.0)
            reassignments += len(
                run_obj.base_station.gps_mgr.reassignments)
        n = len(seeds)
        rows.append([scenario, sent / n, misses / n,
                     max_delay, reassignments / n])
    return ExperimentResult(
        experiment_id="Q1",
        title="GPS access-delay QoS (4 s deadline)",
        headers=["scenario", "reports_sent", "deadline_misses",
                 "max_access_delay_s", "R3_reassignments"],
        rows=rows,
        notes=("Expected: zero deadline misses and max access delay "
               "< 4.0 s in both scenarios; the churn scenario must show "
               "R3 reassignments actually firing."))
