"""X2: ablations of OSU-MAC's two signature design choices.

1. **Two control-field sets vs one** -- with a single CF set the last
   reverse data slot (which overlaps the next cycle's CF1) can never be
   assigned, so 1 of 8 schedulable slots is lost; throughput and delay at
   saturation should visibly suffer.
2. **Dynamic slot adjustment vs static format 1** -- with few GPS users
   the adjustment recovers the unused GPS region as a 9th data slot.
3. **Data-in-contention vs reservation-only** -- the paper allows a
   subscriber to gamble a data packet directly in a contention slot;
   ablating it shows the effect on light-load message delay.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.engine import RunSpec, cell_point, execute, group_means
from repro.experiments.runner import ExperimentResult, sweep_cell_config

#: (row label, load index, config overrides) -- one grid axis per variant.
VARIANTS = (
    ("two CF sets (rho=1.1)", 1.1, {}),
    ("single CF set (rho=1.1)", 1.1, {"use_second_cf": False}),
    ("dynamic adjustment (1 GPS, rho=1.1)", 1.1, {"num_gps_users": 1}),
    ("static format 1 (1 GPS, rho=1.1)", 1.1,
     {"num_gps_users": 1, "dynamic_slot_adjustment": False}),
    ("data-in-contention on (rho=0.3)", 0.3, {}),
    ("data-in-contention off (rho=0.3)", 0.3,
     {"data_in_contention": False}),
)


def spec(quick: bool = False,
         seeds: Sequence[int] = (1, 2, 3)) -> RunSpec:
    points = []
    for label, load, overrides in VARIANTS:
        for seed in seeds:
            config = sweep_cell_config(load, seed, quick=quick,
                                       **overrides)
            points.append(cell_point(config, variant=label, seed=seed))
    return RunSpec(
        name="ablation",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("variant",)))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    result = execute(spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = [[point["variant"], point["utilization"],
             point["mean_message_delay_cycles"]]
            for point in result.reduced]
    return ExperimentResult(
        experiment_id="X2",
        title="Design-choice ablations (extension)",
        headers=["variant", "utilization", "delay_cycles"],
        rows=rows,
        notes=("Expected: removing the second CF set costs ~1/9 of "
               "saturated utilization; removing dynamic adjustment with "
               "1 GPS user costs the 9th data slot; removing "
               "data-in-contention slightly increases light-load "
               "delay (single-packet messages pay an extra reservation "
               "round trip)."))
