"""X2: ablations of OSU-MAC's two signature design choices.

1. **Two control-field sets vs one** -- with a single CF set the last
   reverse data slot (which overlaps the next cycle's CF1) can never be
   assigned, so 1 of 8 schedulable slots is lost; throughput and delay at
   saturation should visibly suffer.
2. **Dynamic slot adjustment vs static format 1** -- with few GPS users
   the adjustment recovers the unused GPS region as a 9th data slot.
3. **Data-in-contention vs reservation-only** -- the paper allows a
   subscriber to gamble a data packet directly in a contention slot;
   ablating it shows the effect on light-load message delay.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cell import run_cell
from repro.core.config import CellConfig
from repro.experiments.runner import (
    EVAL_DEFAULTS,
    ExperimentResult,
    average_summaries,
    cycles_for,
)


def _point(load: float, seeds: Sequence[int], cycles: int, warmup: int,
           **overrides) -> dict:
    summaries = []
    for seed in seeds:
        kwargs = dict(EVAL_DEFAULTS)
        kwargs.update(overrides)
        stats = run_cell(CellConfig(load_index=load, seed=seed,
                                    cycles=cycles, warmup_cycles=warmup,
                                    **kwargs))
        summaries.append(stats.summary())
    return average_summaries(summaries)


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    cycles, warmup = cycles_for(quick)
    rows = []

    # 1. second control-field set, at saturation
    with_cf2 = _point(1.1, seeds, cycles, warmup)
    without_cf2 = _point(1.1, seeds, cycles, warmup, use_second_cf=False)
    rows.append(["two CF sets (rho=1.1)", with_cf2["utilization"],
                 with_cf2["mean_message_delay_cycles"]])
    rows.append(["single CF set (rho=1.1)", without_cf2["utilization"],
                 without_cf2["mean_message_delay_cycles"]])

    # 2. dynamic slot adjustment, 1 GPS user, at saturation
    dynamic = _point(1.1, seeds, cycles, warmup, num_gps_users=1)
    static = _point(1.1, seeds, cycles, warmup, num_gps_users=1,
                    dynamic_slot_adjustment=False)
    rows.append(["dynamic adjustment (1 GPS, rho=1.1)",
                 dynamic["utilization"],
                 dynamic["mean_message_delay_cycles"]])
    rows.append(["static format 1 (1 GPS, rho=1.1)",
                 static["utilization"],
                 static["mean_message_delay_cycles"]])

    # 3. data-in-contention, light load
    with_dic = _point(0.3, seeds, cycles, warmup)
    without_dic = _point(0.3, seeds, cycles, warmup,
                         data_in_contention=False)
    rows.append(["data-in-contention on (rho=0.3)",
                 with_dic["utilization"],
                 with_dic["mean_message_delay_cycles"]])
    rows.append(["data-in-contention off (rho=0.3)",
                 without_dic["utilization"],
                 without_dic["mean_message_delay_cycles"]])

    return ExperimentResult(
        experiment_id="X2",
        title="Design-choice ablations (extension)",
        headers=["variant", "utilization", "delay_cycles"],
        rows=rows,
        notes=("Expected: removing the second CF set costs ~1/9 of "
               "saturated utilization; removing dynamic adjustment with "
               "1 GPS user costs the 9th data slot; removing "
               "data-in-contention slightly increases light-load "
               "delay (single-packet messages pay an extra reservation "
               "round trip)."))
