"""ASCII rendering of experiment series (terminal-only environments).

The benchmark environment has no display, so the figure harnesses can
render their series as simple ASCII scatter/line charts.  This is
intentionally dependency-free; anyone with matplotlib can feed the same
:class:`~repro.experiments.runner.ExperimentResult` rows into it instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def ascii_chart(xs: Sequence[float], ys: Sequence[float],
                width: int = 60, height: int = 16,
                x_label: str = "x", y_label: str = "y",
                title: str = "",
                marker: str = "*") -> str:
    """Render one (x, y) series as an ASCII chart."""
    return ascii_multi_chart(xs, [(y_label, list(ys), marker)],
                             width=width, height=height,
                             x_label=x_label, title=title)


def ascii_multi_chart(xs: Sequence[float],
                      series: List[Tuple[str, Sequence[float], str]],
                      width: int = 60, height: int = 16,
                      x_label: str = "x",
                      title: str = "") -> str:
    """Render several named series over a shared x axis.

    ``series`` is a list of (label, values, marker-character).
    """
    if not xs or not series:
        raise ValueError("nothing to plot")
    for label, values, _marker in series:
        if len(values) != len(xs):
            raise ValueError(f"series {label!r} length mismatch")
    all_ys = [value for _label, values, _marker in series
              for value in values]
    y_min = min(all_ys)
    y_max = max(all_ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for _label, values, marker in series:
        for x, y in zip(xs, values):
            column = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    gutter = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(gutter)
        elif index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_axis = (f"{x_min:.4g}".ljust(width - 8) + f"{x_max:.4g}")
    lines.append(" " * gutter + "  " + x_axis)
    lines.append(" " * gutter + "  " + x_label)
    legend = "   ".join(f"{marker} = {label}"
                        for label, _values, marker in series)
    if len(series) > 1:
        lines.append(legend)
    return "\n".join(lines)


def render_result(result, x_column: str,
                  y_columns: Optional[List[str]] = None,
                  **kwargs) -> str:
    """Chart columns of an ExperimentResult by header name."""
    xs = [float(value) for value in result.series(x_column)]
    if y_columns is None:
        y_columns = [header for header in result.headers
                     if header != x_column]
    markers = "*o+x#@"
    series = [(column,
               [float(value) for value in result.series(column)],
               markers[index % len(markers)])
              for index, column in enumerate(y_columns)]
    kwargs.setdefault("x_label", x_column)
    kwargs.setdefault("title", result.title)
    return ascii_multi_chart(xs, series, **kwargs)
