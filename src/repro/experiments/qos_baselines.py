"""X3: the QoS-oriented survey protocols -- RQMA and FAMA (extension).

Two claims from the paper's Section 4 survey, quantified:

* RQMA's "most desirable feature" is its a-priori *real-time
  retransmission session*: errored time-critical packets are re-sent
  within their deadline.  We sweep the channel error rate and measure
  the real-time deadline-miss rate with and without the feature.
* FAMA's floor acquisition makes collisions cost a control mini-slot
  rather than a packet time; its efficiency therefore grows with packet
  length (overhead amortization), unlike slotted ALOHA whose ceiling is
  1/e regardless.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.engine import Point, RunSpec, execute, group_means
from repro.experiments.runner import ExperimentResult

RQMA_ERROR_RATES = (0.0, 0.05, 0.10, 0.20, 0.30)
FAMA_PACKET_LENGTHS = (2, 5, 10, 25, 50)


def rqma_task(config: Dict[str, Any]) -> Dict[str, float]:
    """Task: one RQMA run -> deadline-miss rate and retransmissions."""
    from repro.protocols import RQMA

    protocol = RQMA(num_rt_sessions=6, num_best_effort=6,
                    be_arrival_probability=0.2,
                    slot_error_probability=config["error_rate"],
                    rt_retransmission=config["retransmission"],
                    seed=config["seed"])
    stats = protocol.run(config["frames"])
    return {"rt_miss_rate": stats.rt_miss_rate(),
            "retransmissions": float(stats.rt_retransmissions)}


def rqma_spec(quick: bool = False,
              seeds: Sequence[int] = (1, 2, 3)) -> RunSpec:
    frames = 400 if quick else 1500
    points = []
    for error_rate in RQMA_ERROR_RATES:
        for retransmission in (True, False):
            for seed in seeds:
                points.append(Point(
                    fn=rqma_task,
                    config=dict(error_rate=error_rate,
                                retransmission=retransmission,
                                frames=frames, seed=seed),
                    label=dict(error_rate=error_rate,
                               retransmission=retransmission,
                               seed=seed)))
    return RunSpec(
        name="qos-rqma",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("error_rate", "retransmission")))


def run_rqma(quick: bool = False,
             seeds: Sequence[int] = (1, 2, 3),
             jobs: Optional[int] = None,
             cache: Any = None) -> ExperimentResult:
    result = execute(rqma_spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = [[point["error_rate"],
             "with rtx session" if point["retransmission"]
             else "no rtx session",
             point["rt_miss_rate"], point["retransmissions"]]
            for point in result.reduced]
    return ExperimentResult(
        experiment_id="X3a",
        title="RQMA real-time deadline misses vs channel error rate "
              "(extension)",
        headers=["slot_error_p", "variant", "rt_miss_rate",
                 "retransmissions"],
        rows=rows,
        notes=("RQMA's pre-established retransmission session recovers "
               "errored time-critical packets within their deadlines; "
               "without it every channel error is a deadline miss."))


def fama_task(config: Dict[str, Any]) -> Dict[str, float]:
    """Task: one FAMA (or slotted-ALOHA reference) run -> throughput."""
    from repro.protocols import FAMA, SlottedAloha

    if config["protocol"] == "fama":
        protocol = FAMA(num_terminals=20, arrival_probability=1.0,
                        persistence=0.1,
                        data_minislots=config["data_minislots"],
                        seed=config["seed"])
    else:
        protocol = SlottedAloha(num_terminals=20,
                                arrival_probability=1.0,
                                transmit_probability=1 / 20,
                                seed=config["seed"])
    return {"throughput": protocol.run(config["minislots"]).throughput()}


def fama_spec(quick: bool = False,
              seeds: Sequence[int] = (1, 2, 3)) -> RunSpec:
    minislots = 20000 if quick else 60000
    points = []
    for data_minislots in FAMA_PACKET_LENGTHS:
        for seed in seeds:
            points.append(Point(
                fn=fama_task,
                config=dict(protocol="fama",
                            data_minislots=data_minislots,
                            minislots=minislots, seed=seed),
                label=dict(length=data_minislots, protocol="fama",
                           seed=seed)))
    for seed in seeds:
        points.append(Point(
            fn=fama_task,
            config=dict(protocol="aloha", data_minislots=0,
                        minislots=minislots, seed=seed),
            label=dict(length="any", protocol="slotted aloha",
                       seed=seed)))
    return RunSpec(
        name="qos-fama",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("length", "protocol")))


def run_fama(quick: bool = False,
             seeds: Sequence[int] = (1, 2, 3),
             jobs: Optional[int] = None,
             cache: Any = None) -> ExperimentResult:
    result = execute(fama_spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = [[point["length"], point["protocol"], point["throughput"]]
            for point in result.reduced]
    return ExperimentResult(
        experiment_id="X3b",
        title="FAMA throughput vs packet length (extension)",
        headers=["packet_minislots", "protocol", "throughput"],
        rows=rows,
        notes=("FAMA collisions cost one control mini-slot, so its "
               "saturated throughput approaches L/(L+overhead) as the "
               "packet length L grows; slotted ALOHA is pinned near "
               "1/e = 0.368 regardless."))


def mcns_task(config: Dict[str, Any]) -> Dict[str, float]:
    """Task: one MCNS run -> piggyback fraction and throughput."""
    from repro.protocols import MCNS

    protocol = MCNS(num_modems=10,
                    arrival_probability=config["arrival"],
                    seed=config["seed"])
    stats = protocol.run(config["maps"])
    return {"piggyback_fraction": protocol.piggyback_fraction(),
            "throughput": stats.throughput()}


def mcns_spec(quick: bool = False,
              seeds: Sequence[int] = (1, 2, 3)) -> RunSpec:
    maps = 1000 if quick else 4000
    points = []
    for arrival in (0.02, 0.05, 0.1, 0.2, 0.4):
        for seed in seeds:
            points.append(Point(
                fn=mcns_task,
                config=dict(arrival=arrival, maps=maps, seed=seed),
                label=dict(arrival=arrival, seed=seed)))
    return RunSpec(
        name="qos-mcns",
        points=tuple(points),
        reducer=lambda values, pts: group_means(
            values, pts, by=("arrival",)))


def run_mcns(quick: bool = False,
             seeds: Sequence[int] = (1, 2, 3),
             jobs: Optional[int] = None,
             cache: Any = None) -> ExperimentResult:
    """X3c: DOCSIS piggyback requests mirror OSU-MAC's Fig. 9 trend."""
    result = execute(mcns_spec(quick=quick, seeds=seeds), jobs=jobs,
                     cache=cache)
    rows = [[point["arrival"], point["piggyback_fraction"],
             point["throughput"]] for point in result.reduced]
    return ExperimentResult(
        experiment_id="X3c",
        title="MCNS/DOCSIS: piggyback request share vs load (extension)",
        headers=["arrival_p", "piggyback_fraction", "throughput"],
        rows=rows,
        notes=("The paper notes MCNS's similarity to OSU-MAC; both show "
               "the same counter-intuitive trend as Fig. 9: under load, "
               "bandwidth requests ride piggyback on granted "
               "transmissions and contention overhead falls."))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    return run_rqma(quick=quick, seeds=seeds, jobs=jobs, cache=cache)
