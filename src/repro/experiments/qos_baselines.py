"""X3: the QoS-oriented survey protocols -- RQMA and FAMA (extension).

Two claims from the paper's Section 4 survey, quantified:

* RQMA's "most desirable feature" is its a-priori *real-time
  retransmission session*: errored time-critical packets are re-sent
  within their deadline.  We sweep the channel error rate and measure
  the real-time deadline-miss rate with and without the feature.
* FAMA's floor acquisition makes collisions cost a control mini-slot
  rather than a packet time; its efficiency therefore grows with packet
  length (overhead amortization), unlike slotted ALOHA whose ceiling is
  1/e regardless.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentResult
from repro.protocols import FAMA, MCNS, RQMA, SlottedAloha


def run_rqma(quick: bool = False,
             seeds: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    frames = 400 if quick else 1500
    rows = []
    for error_rate in (0.0, 0.05, 0.10, 0.20, 0.30):
        for retransmission in (True, False):
            miss = retx = 0.0
            for seed in seeds:
                protocol = RQMA(num_rt_sessions=6, num_best_effort=6,
                                be_arrival_probability=0.2,
                                slot_error_probability=error_rate,
                                rt_retransmission=retransmission,
                                seed=seed)
                stats = protocol.run(frames)
                miss += stats.rt_miss_rate()
                retx += stats.rt_retransmissions
            n = len(seeds)
            rows.append([error_rate,
                         "with rtx session" if retransmission
                         else "no rtx session",
                         miss / n, retx / n])
    return ExperimentResult(
        experiment_id="X3a",
        title="RQMA real-time deadline misses vs channel error rate "
              "(extension)",
        headers=["slot_error_p", "variant", "rt_miss_rate",
                 "retransmissions"],
        rows=rows,
        notes=("RQMA's pre-established retransmission session recovers "
               "errored time-critical packets within their deadlines; "
               "without it every channel error is a deadline miss."))


def run_fama(quick: bool = False,
             seeds: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    minislots = 20000 if quick else 60000
    rows = []
    for data_minislots in (2, 5, 10, 25, 50):
        fama_throughput = 0.0
        for seed in seeds:
            protocol = FAMA(num_terminals=20, arrival_probability=1.0,
                            persistence=0.1,
                            data_minislots=data_minislots, seed=seed)
            fama_throughput += protocol.run(minislots).throughput()
        rows.append([data_minislots, "fama",
                     fama_throughput / len(seeds)])
    aloha_throughput = 0.0
    for seed in seeds:
        protocol = SlottedAloha(num_terminals=20,
                                arrival_probability=1.0,
                                transmit_probability=1 / 20, seed=seed)
        aloha_throughput += protocol.run(minislots).throughput()
    rows.append(["any", "slotted aloha", aloha_throughput / len(seeds)])
    return ExperimentResult(
        experiment_id="X3b",
        title="FAMA throughput vs packet length (extension)",
        headers=["packet_minislots", "protocol", "throughput"],
        rows=rows,
        notes=("FAMA collisions cost one control mini-slot, so its "
               "saturated throughput approaches L/(L+overhead) as the "
               "packet length L grows; slotted ALOHA is pinned near "
               "1/e = 0.368 regardless."))


def run_mcns(quick: bool = False,
             seeds: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    """X3c: DOCSIS piggyback requests mirror OSU-MAC's Fig. 9 trend."""
    maps = 1000 if quick else 4000
    rows = []
    for arrival in (0.02, 0.05, 0.1, 0.2, 0.4):
        piggyback_fraction = throughput = 0.0
        for seed in seeds:
            protocol = MCNS(num_modems=10,
                            arrival_probability=arrival, seed=seed)
            stats = protocol.run(maps)
            piggyback_fraction += protocol.piggyback_fraction()
            throughput += stats.throughput()
        n = len(seeds)
        rows.append([arrival, piggyback_fraction / n, throughput / n])
    return ExperimentResult(
        experiment_id="X3c",
        title="MCNS/DOCSIS: piggyback request share vs load (extension)",
        headers=["arrival_p", "piggyback_fraction", "throughput"],
        rows=rows,
        notes=("The paper notes MCNS's similarity to OSU-MAC; both show "
               "the same counter-intuitive trend as Fig. 9: under load, "
               "bandwidth requests ride piggyback on granted "
               "transmissions and contention overhead falls."))


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    return run_rqma(quick=quick, seeds=seeds)
