"""Fig. 8(a): reverse-link utilization vs load index.

Paper's finding: for rho < 0.9 most packets get through and utilization
tracks the traffic load; near and beyond rho = 1 buffers overflow and
utilization saturates below the load (the ceiling is (d-1)/d because one
data slot per cycle is a contention slot).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.experiments.runner import (
    ExperimentResult,
    PAPER_LOADS,
    sweep_loads,
)


def run(quick: bool = False,
        seeds: Sequence[int] = (1, 2, 3),
        loads: Sequence[float] = PAPER_LOADS,
        jobs: Optional[int] = None,
        cache: Any = None) -> ExperimentResult:
    points = sweep_loads(loads=loads, seeds=seeds, quick=quick,
                         jobs=jobs, cache=cache)
    rows = [[point["load"], point["utilization"],
             point["message_loss_rate"]] for point in points]
    return ExperimentResult(
        experiment_id="F8a",
        title="Reverse-link utilization vs load index (Fig. 8a)",
        headers=["load", "utilization", "message_loss_rate"],
        rows=rows,
        notes=("Expected shape: utilization ~ load for rho < 0.9, "
               "saturating near 8/9 = 0.889 (one contention slot per "
               "9-slot cycle); message losses appear beyond rho ~ 1."))
