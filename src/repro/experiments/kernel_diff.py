"""Differential harness: legacy heap kernel vs calendar kernel.

The calendar-queue rewrite of :mod:`repro.sim.core` promises *bit
identical* results to the original ``(time, sequence)`` heap kernel
(preserved verbatim as :class:`repro.sim.legacy.LegacySimulator`).  This
harness is the acceptance test for that promise: it runs the same
experiment grids -- the fig8 quick sweep and the chaos quick grid --
through both kernels and asserts every per-point summary is identical,
byte for byte, after canonical JSON serialisation.

Run it from the CLI::

    python -m repro.experiments kernel-diff --quick
    python -m repro.experiments kernel-diff --quick --jobs 4

``--jobs 4`` additionally exercises the process-pool executor, proving
the identity holds under parallel scheduling too (the legacy task
function is a module-level callable, so it pickles by reference).
Caching is always disabled here: the point of a differential run is to
*execute* both kernels.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine import Point, RunSpec, execute
from repro.experiments import chaos
from repro.experiments.runner import ExperimentResult, sweep_spec


def run_cell_summary_legacy(config) -> Dict[str, float]:
    """Task: simulate one cell on the *legacy* heap kernel."""
    from repro.core.cell import build_cell, finalize_run
    from repro.sim.legacy import LegacySimulator

    run = build_cell(config, sim=LegacySimulator())
    run.sim.run(until=config.duration)
    finalize_run(run)
    return run.stats.summary()


def legacy_variant(spec: RunSpec) -> RunSpec:
    """The same grid with every point re-targeted at the legacy kernel."""
    points = tuple(
        Point(fn=run_cell_summary_legacy, config=point.config,
              label=dict(point.label))
        for point in spec.points)
    return RunSpec(name=f"{spec.name}-legacy", points=points, reducer=None)


def diff_grids(quick: bool = True,
               jobs: Optional[int] = None,
               ) -> List[Tuple[str, int, int]]:
    """Run both kernels over both grids; returns per-grid match counts.

    Raises :class:`AssertionError` on the first summary mismatch,
    including the grid name and point index so the offending
    configuration can be replayed directly.
    """
    grids = [
        ("fig8-quick", sweep_spec(quick=quick)),
        ("chaos-quick", chaos.spec(quick=quick)),
    ]
    report = []
    for name, spec in grids:
        new_result = execute(
            RunSpec(name=f"{spec.name}-calendar", points=spec.points,
                    reducer=None),
            jobs=jobs, cache=False)
        legacy_result = execute(legacy_variant(spec), jobs=jobs,
                                cache=False)
        matches = 0
        for index, (new_summary, legacy_summary) in enumerate(
                zip(new_result.values, legacy_result.values)):
            new_blob = json.dumps(new_summary, sort_keys=True)
            legacy_blob = json.dumps(legacy_summary, sort_keys=True)
            if new_blob != legacy_blob:
                raise AssertionError(
                    f"kernel divergence in grid {name!r} at point "
                    f"{index} (label={spec.points[index].label!r}): "
                    f"calendar={new_blob} legacy={legacy_blob}")
            matches += 1
        report.append((name, len(spec.points), matches))
    return report


def run(quick: bool = False,
        seeds: Sequence[int] = (),  # unused; uniform runner signature
        jobs: Optional[int] = None,
        cache: Any = None,
        policy: Any = None) -> ExperimentResult:
    """CLI entry: run the differential grids and report the verdict.

    ``cache``/``policy`` are accepted for signature uniformity with the
    other experiment runners; caching is always off for a differential
    run and the default policy applies.
    """
    del quick, seeds, cache, policy
    report = diff_grids(quick=True, jobs=jobs)
    rows = [[name, points, matches,
             "identical" if matches == points else "DIVERGED"]
            for name, points, matches in report]
    return ExperimentResult(
        experiment_id="KDIFF",
        title="Kernel differential: calendar queue vs legacy heap",
        headers=["grid", "points", "identical", "verdict"],
        rows=rows,
        notes=("Every per-point summary must serialize byte-identically "
               "under both kernels; a divergence raises before this "
               "table is printed.  Grids run quick-sized regardless of "
               "--quick (the identity property does not depend on "
               "cycle count)."))
