"""Configuration of a sharded city: cell grid, shard layout, EINs.

A *city* is a rectangular grid of ``rows x cols`` OSU-MAC cells joined
by the wired backbone (the paper's Section 2.2 wide-area system), far
too many to run on one simulator.  The grid is partitioned into
``num_shards`` contiguous *shard groups*; each shard simulates its
cells on its own :class:`~repro.sim.core.Simulator` and the whole city
advances in lockstep **epochs** of ``cycles_per_epoch`` MAC cycles
(see :mod:`repro.shard.coordinator`).

Everything here is a pure function of the config, because both the
serial coordinator and the pool's replaying shard tasks must derive the
exact same layout: which cells a shard owns, which shard owns a cell,
every subscriber's EIN and home cell, and the grid adjacency the
mobility model walks over.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import CellConfig
from repro.phy import timing

#: EIN block stride between cells.  ``build_cell`` derives EINs as
#: ``0x1000 + offset + i`` (data) and ``0x2000 + offset + j`` (GPS);
#: a stride wider than both bases plus any index keeps every cell's
#: data *and* GPS blocks disjoint city-wide, at the cost of EINs beyond
#: the paper's 16-bit space (the logical-object simulation never packs
#: them, and city mode rejects ``full_fidelity``, which would).
EIN_CELL_STRIDE = 0x4000


@dataclass(frozen=True)
class MobilityConfig:
    """The seed-deterministic mobility model (bus routes over the grid).

    The first ``movers_per_cell`` data subscribers and the first
    ``gps_movers_per_cell`` GPS units of every cell ride routes: random
    walks over grid-adjacent cells with seeded exponential dwell times.
    ``hops_per_epoch`` is the expected number of cell transitions per
    mover per epoch; ``rush_multipliers`` (one factor per epoch,
    truncated or 1.0-padded) shapes that rate into e.g. a rush-hour
    wave.
    """

    movers_per_cell: int = 1
    gps_movers_per_cell: int = 0
    hops_per_epoch: float = 0.5
    rush_multipliers: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.movers_per_cell < 0 or self.gps_movers_per_cell < 0:
            raise ValueError("mover counts must be non-negative")
        if self.hops_per_epoch < 0:
            raise ValueError("hops_per_epoch must be non-negative")
        if self.rush_multipliers is not None:
            object.__setattr__(self, "rush_multipliers",
                               tuple(float(m)
                                     for m in self.rush_multipliers))
            if any(m < 0 for m in self.rush_multipliers):
                raise ValueError("rush multipliers must be >= 0")

    def multiplier(self, epoch: int) -> float:
        if not self.rush_multipliers:
            return 1.0
        if epoch < len(self.rush_multipliers):
            return self.rush_multipliers[epoch]
        return 1.0


@dataclass(frozen=True)
class CityConfig:
    """All knobs of one sharded city run."""

    rows: int = 4
    cols: int = 4
    num_shards: int = 2
    #: Per-cell template.  ``load_index``/``forward_load_index`` must be
    #: zero (the city generates the addressed workload itself, exactly
    #: like :class:`~repro.network.multicell.MultiCellConfig`) and its
    #: ``cycles``/``warmup_cycles`` are overridden by the epoch grid
    #: below.
    cell: CellConfig = field(default_factory=lambda: CellConfig(
        num_data_users=4, num_gps_users=1, load_index=0.0))
    #: Target uplink load index per cell for the addressed workload.
    load_index: float = 0.4
    #: Fraction of messages addressed to a data subscriber elsewhere in
    #: the city (the rest terminate at the local base station).
    inter_cell_fraction: float = 0.5
    backbone_latency: float = 0.005
    backbone_bandwidth: float = 1_250_000.0
    epochs: int = 4
    cycles_per_epoch: int = 25
    warmup_cycles: int = 10
    mobility: MobilityConfig = field(default_factory=MobilityConfig)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("the cell grid must be at least 1x1")
        if not 1 <= self.num_shards <= self.num_cells:
            raise ValueError(
                f"num_shards must be in [1, {self.num_cells}]")
        if not 0.0 <= self.inter_cell_fraction <= 1.0:
            raise ValueError("inter_cell_fraction must be in [0, 1]")
        if self.epochs < 1 or self.cycles_per_epoch < 1:
            raise ValueError("epochs and cycles_per_epoch must be >= 1")
        if self.total_cycles <= self.warmup_cycles:
            raise ValueError(
                "epochs * cycles_per_epoch must exceed warmup_cycles")
        if self.cell.load_index != 0.0 \
                or self.cell.forward_load_index != 0.0:
            raise ValueError(
                "set CityConfig.load_index, not cell.load_index "
                "(the city generates the addressed workload itself)")
        if self.cell.full_fidelity:
            raise ValueError(
                "city mode is logical-object only (its EIN blocks "
                "exceed the 16-bit wire field full_fidelity packs)")
        if self.cell.faults:
            raise ValueError("city mode does not take cell-level fault "
                             "schedules (yet)")
        if self.mobility.movers_per_cell > self.cell.num_data_users:
            raise ValueError("movers_per_cell exceeds num_data_users")
        if self.mobility.gps_movers_per_cell > self.cell.num_gps_users:
            raise ValueError(
                "gps_movers_per_cell exceeds num_gps_users")

    # -- derived layout -----------------------------------------------------

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    @property
    def total_cycles(self) -> int:
        return self.epochs * self.cycles_per_epoch

    @property
    def epoch_duration(self) -> float:
        return self.cycles_per_epoch * timing.CYCLE_LENGTH

    @property
    def duration(self) -> float:
        return self.total_cycles * timing.CYCLE_LENGTH

    def cell_config(self) -> CellConfig:
        """The effective per-cell config (epoch grid folded in)."""
        return dataclasses.replace(
            self.cell, cycles=self.total_cycles,
            warmup_cycles=self.warmup_cycles, seed=self.seed)

    def shard_of_cell(self, cell_id: int) -> int:
        """The shard owning ``cell_id`` (contiguous balanced blocks)."""
        if not 0 <= cell_id < self.num_cells:
            raise ValueError(f"no such cell {cell_id}")
        return cell_id * self.num_shards // self.num_cells

    def cells_of_shard(self, shard_id: int) -> List[int]:
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"no such shard {shard_id}")
        return [cell for cell in range(self.num_cells)
                if self.shard_of_cell(cell) == shard_id]

    def neighbors(self, cell_id: int) -> List[int]:
        """Grid-adjacent cells (4-neighbourhood), sorted."""
        row, col = divmod(cell_id, self.cols)
        out = []
        if row > 0:
            out.append(cell_id - self.cols)
        if row < self.rows - 1:
            out.append(cell_id + self.cols)
        if col > 0:
            out.append(cell_id - 1)
        if col < self.cols - 1:
            out.append(cell_id + 1)
        return sorted(out)

    # -- subscriber identity ------------------------------------------------

    def data_ein(self, cell_id: int, index: int) -> int:
        return 0x1000 + cell_id * EIN_CELL_STRIDE + index

    def gps_ein(self, cell_id: int, index: int) -> int:
        return 0x2000 + cell_id * EIN_CELL_STRIDE + index

    def home_cell_of_ein(self, ein: int) -> int:
        return ein // EIN_CELL_STRIDE

    def is_gps_ein(self, ein: int) -> bool:
        return ein % EIN_CELL_STRIDE >= 0x2000

    def all_data_eins(self) -> List[int]:
        return [self.data_ein(cell, index)
                for cell in range(self.num_cells)
                for index in range(self.cell.num_data_users)]

    def all_eins(self) -> List[int]:
        out = self.all_data_eins()
        out.extend(self.gps_ein(cell, index)
                   for cell in range(self.num_cells)
                   for index in range(self.cell.num_gps_users))
        return sorted(out)

    def mover_eins(self) -> List[int]:
        """EINs riding mobility routes, in canonical order."""
        movers = [self.data_ein(cell, index)
                  for cell in range(self.num_cells)
                  for index in range(self.mobility.movers_per_cell)]
        movers.extend(
            self.gps_ein(cell, index)
            for cell in range(self.num_cells)
            for index in range(self.mobility.gps_movers_per_cell))
        return sorted(movers)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON round-trippable projection (engine tasks, journals)."""
        out = dataclasses.asdict(self)
        out["cell"] = dataclasses.asdict(self.cell)
        out["cell"]["faults"] = []
        mobility = dataclasses.asdict(self.mobility)
        if mobility["rush_multipliers"] is not None:
            mobility["rush_multipliers"] = list(
                mobility["rush_multipliers"])
        out["mobility"] = mobility
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CityConfig":
        payload = dict(data)
        cell = dict(payload.pop("cell"))
        cell["faults"] = ()
        mobility = dict(payload.pop("mobility"))
        if mobility.get("rush_multipliers") is not None:
            mobility["rush_multipliers"] = tuple(
                mobility["rush_multipliers"])
        return cls(cell=CellConfig(**cell),
                   mobility=MobilityConfig(**mobility), **payload)

    def digest(self) -> str:
        """Stable config fingerprint (journal identity, run naming)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def demo_config(seed: int = 1) -> CityConfig:
    """The ``repro city --demo`` scenario: a rush-hour bus wave.

    64 cells in an 8x8 grid over 8 shards, 448 subscribers (5 data + 2
    GPS buses per cell), with mobility ramping through a rush-hour peak
    and back down across 6 epochs.
    """
    return CityConfig(
        rows=8, cols=8, num_shards=8,
        cell=CellConfig(num_data_users=5, num_gps_users=2,
                        load_index=0.0),
        load_index=0.45, inter_cell_fraction=0.5,
        epochs=6, cycles_per_epoch=25, warmup_cycles=10,
        mobility=MobilityConfig(
            movers_per_cell=2, gps_movers_per_cell=1,
            hops_per_epoch=0.4,
            rush_multipliers=(0.25, 1.0, 3.0, 3.0, 1.0, 0.25)),
        seed=seed)
