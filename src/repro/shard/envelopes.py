"""Cross-shard envelopes and their canonical ordering.

Envelopes are the *only* channel between shards: everything a shard
wants the rest of the city to see must be folded into plain-JSON dicts
emitted at the epoch barrier.  Two kinds exist:

* ``message`` -- a reassembled inter-cell message in flight on the
  backbone toward a cell another shard owns.
* ``handoff`` -- a subscriber that departed one shard for another,
  carrying its transfer state (uplink queue, sequence counters) from
  :meth:`repro.core.subscriber.SubscriberBase.transfer_state`.  Handoff
  envelopes double as directory updates and are broadcast to every
  shard.

Determinism rests on the ordering contract: before any envelope crosses
a barrier it is sorted by :func:`canonical_sort_key`, so the coordinator
merge and each shard's inbound application see one well-defined
sequence regardless of which worker produced what first.
"""

from __future__ import annotations

from typing import Any, Dict, List

MESSAGE = "message"
HANDOFF = "handoff"

_TYPE_RANK = {HANDOFF: 0, MESSAGE: 1}


def message_envelope(*, dest_ein: int, dest_cell: int, message_id: int,
                     size_bytes: int, created_at: float, src_cell: int,
                     sent_at: float, hops: int = 0) -> Dict[str, Any]:
    return {"type": MESSAGE, "dest_ein": dest_ein,
            "dest_cell": dest_cell, "message_id": message_id,
            "size_bytes": size_bytes, "created_at": created_at,
            "src_cell": src_cell, "sent_at": sent_at, "hops": hops}


def handoff_envelope(*, ein: int, from_cell: int, to_cell: int,
                     depart_time: float, hop: int,
                     state: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": HANDOFF, "ein": ein, "from_cell": from_cell,
            "to_cell": to_cell, "depart_time": depart_time,
            "hop": hop, "state": state}


def canonical_sort_key(env: Dict[str, Any]):
    """Total order over envelopes, stable across producers.

    Handoffs sort before messages so directory updates land before the
    messages that consult the directory; within a kind the key is
    (time, ein, cells, id) which is unique for any one epoch's traffic.
    """
    rank = _TYPE_RANK[env["type"]]
    if env["type"] == HANDOFF:
        return (rank, env["depart_time"], env["ein"],
                env["from_cell"], env["to_cell"], env["hop"], 0)
    return (rank, env["sent_at"], env["dest_ein"], env["src_cell"],
            env["dest_cell"], env["hops"], env["message_id"])


def canonical_order(envelopes: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return sorted(envelopes, key=canonical_sort_key)
