"""One shard: a group of cells on its own simulator, advanced by epochs.

A :class:`ShardSim` owns the cells of one shard group.  Within an epoch
it is a self-contained multi-cell network (uplink reassembly, a local
wired backbone between its own base stations, buffering for
mid-registration destinations -- the same model as
:class:`repro.network.multicell.MultiCellNetwork`).  Anything that must
leave the shard -- a message for a cell another shard owns, a subscriber
whose mobility route crosses the shard boundary -- is *captured* as an
envelope and held until the epoch barrier, where the coordinator
redistributes it (:mod:`repro.shard.coordinator`).

Determinism contract
--------------------
Every random draw comes from a stream whose name is a pure function of
(config, subscriber EIN, hop count), never of shard topology or
wall-clock scheduling.  The epoch report -- census, counters, per-cell
summaries, outbound envelopes, all canonically ordered -- is digested,
so the same (config, seed) yields bit-identical digests whether shards
run serially in one process or replayed in a pool
(:func:`shard_epoch_task`).

The mobility schedule is shared: every shard schedules *all* of the
city's transition events and acts only on subscribers it currently
hosts.  A subscriber in flight between shards (departed but not yet
materialized at the barrier) simply misses events that fire mid-flight;
the walk resynchronizes at its next executed event.  Message traffic
for an EIN follows the directory, which is updated immediately for
local knowledge and via broadcast handoff envelopes at barriers for
remote knowledge; deliveries re-resolve the directory on arrival and
re-emit (with a bounded hop count) when the destination moved again.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.cell import CellRun, _make_error_model, build_cell
from repro.core.gps_unit import GpsSubscriber
from repro.core.packets import PAYLOAD_BYTES, DataPacket, ForwardPacket
from repro.core.subscriber import DataSubscriber
from repro.network.backbone import Backbone
from repro.phy import timing
from repro.phy.channel import Link
from repro.shard.config import EIN_CELL_STRIDE, CityConfig
from repro.shard.envelopes import (
    HANDOFF,
    canonical_order,
    handoff_envelope,
    message_envelope,
)
from repro.shard.mobility import MobilityEvent, build_schedule
from repro.sim import RandomStreams, Simulator
from repro.traffic.messages import (
    Message,
    PoissonMessageSource,
    interarrival_for_load,
    make_size_distribution,
)

#: A message that keeps chasing a mover across shards is dropped after
#: this many barrier re-emissions (it would otherwise ping-pong forever
#: between two shards that each learn of the next move one epoch late).
MAX_MESSAGE_HOPS = 8

#: City-unique deterministic message ids: ``ein * 2**20 + counter``.
#: :class:`PoissonMessageSource` numbers messages from a process-global
#: counter, which depends on how many sources share the process -- i.e.
#: on shard topology -- so the shard overwrites every id with this
#: per-subscriber scheme before the message enters the MAC.
_MSG_ID_STRIDE = 1 << 20


@dataclass
class _PartialMessage:
    bytes_received: int = 0
    created_at: float = 0.0
    destination_ein: Optional[int] = None


class ShardSim:
    """The cells of one shard group, advanced one epoch at a time."""

    def __init__(self, city: CityConfig, shard_id: int):
        self.city = city
        self.shard_id = shard_id
        self.sim = Simulator()
        self.cell_ids = city.cells_of_shard(shard_id)
        self._cell_set = frozenset(self.cell_ids)
        self.backbone = Backbone(self.sim, city.backbone_latency,
                                 city.backbone_bandwidth)
        #: City-wide view: ein -> cell currently hosting it.  Exact for
        #: local subscribers; for remote ones it lags by at most one
        #: epoch (updated from broadcast handoff envelopes).
        self.directory: Dict[int, int] = {
            ein: city.home_cell_of_ein(ein) for ein in city.all_eins()}
        self.runs: Dict[int, CellRun] = {}
        self._local: Dict[int, Any] = {}  # ein -> live subscriber
        self._sources: Dict[int, PoissonMessageSource] = {}
        self._msg_counter: Dict[int, int] = {}
        self._hop: Dict[int, int] = {}  # ein -> moves so far
        self._partial: Dict[Any, _PartialMessage] = {}
        self._waiting: Dict[int, List[Message]] = {}
        self._outbound: List[Dict[str, Any]] = []
        self._forward_seq = 0
        self._ein_streams_cache: Dict[int, RandomStreams] = {}
        self.counters: Dict[str, Any] = {
            "messages_routed": 0,
            "messages_delivered_local": 0,
            "messages_forwarded": 0,
            "messages_cross_shard": 0,
            "messages_buffered_for_registration": 0,
            "messages_hop_dropped": 0,
            "messages_received": 0,
            "end_to_end_delay_total": 0.0,
            "handoffs_local": 0,
            "handoffs_out": 0,
            "handoffs_in": 0,
            "handoffs_by_cell": {},  # "cell/kind" -> count
            "cross_shard_bytes": {},  # str(dst shard) -> bytes
        }

        self._cell_cfg = city.cell_config()
        self._root_streams = RandomStreams(city.seed)
        self._data_eins = city.all_data_eins()
        self._sizes = None
        self._interarrival = None
        if city.load_index > 0 and self._cell_cfg.num_data_users:
            cfg = self._cell_cfg
            self._sizes = make_size_distribution(
                cfg.message_size, cfg.fixed_message_bytes,
                cfg.uniform_low, cfg.uniform_high)
            self._interarrival = interarrival_for_load(
                city.load_index, cfg.num_data_users,
                self._sizes.mean_mac_bytes(PAYLOAD_BYTES),
                timing.CYCLE_LENGTH, cfg.data_slots_per_cycle,
                PAYLOAD_BYTES)

        for cell_id in self.cell_ids:
            run = build_cell(
                self._cell_cfg, sim=self.sim,
                streams=self._root_streams.spawn(f"cell-{cell_id}"),
                ein_offset=cell_id * EIN_CELL_STRIDE,
                name_prefix=f"c{cell_id}-")
            self.runs[cell_id] = run
            bs = run.base_station
            bs.on_data_packet = self._make_uplink_handler(cell_id)
            bs.on_registration = self._make_registration_handler(cell_id)
            for subscriber in run.data_users:
                self._adopt(subscriber)
                self._start_source(subscriber, hop=0,
                                   start_at=subscriber.entry_time)
            for unit in run.gps_units:
                self._adopt(unit)

        for event in build_schedule(city):
            self.sim.call_at(
                event.time,
                lambda ev=event: self._on_mobility(ev))

    def _adopt(self, subscriber: Any) -> None:
        self._local[subscriber.ein] = subscriber
        self._hop.setdefault(subscriber.ein, 0)
        if isinstance(subscriber, DataSubscriber):
            subscriber.on_message_received = self._make_receiver(
                subscriber.ein)

    def _ein_streams(self, ein: int) -> RandomStreams:
        streams = self._ein_streams_cache.get(ein)
        if streams is None:
            streams = self._root_streams.spawn(f"ein-{ein}")
            self._ein_streams_cache[ein] = streams
        return streams

    # -- workload -----------------------------------------------------------

    def _start_source(self, subscriber: DataSubscriber, hop: int,
                      start_at: float) -> None:
        if self._interarrival is None:
            return
        ein = subscriber.ein
        # Interarrival, sizes and addressing all draw from one per-hop
        # stream, in a fixed per-message order, so the workload of a
        # subscriber is a pure function of (seed, ein, hop) -- identical
        # whichever shard hosts it.
        rng = self._ein_streams(ein)[f"traffic-hop{hop}"]

        def deliver(message: Message,
                    sub: DataSubscriber = subscriber) -> None:
            counter = self._msg_counter.get(ein, 0)
            self._msg_counter[ein] = counter + 1
            message.message_id = ein * _MSG_ID_STRIDE + counter
            if rng.random() < self.city.inter_cell_fraction:
                candidates = [e for e in self._data_eins if e != ein]
                if candidates:
                    message.destination_ein = rng.choice(candidates)
            sub.submit_message(message)

        self._sources[ein] = PoissonMessageSource(
            self.sim, rng, self._interarrival, self._sizes,
            deliver=deliver, start_at=start_at)

    # -- uplink -> routing --------------------------------------------------

    def _make_uplink_handler(self, cell_id: int) -> Callable:
        def handler(frame: Any, packet: DataPacket) -> None:
            key = (cell_id, packet.uid, packet.message_id)
            partial = self._partial.setdefault(key, _PartialMessage(
                created_at=packet.created_at,
                destination_ein=packet.destination_ein))
            partial.bytes_received += packet.payload_len
            if packet.destination_ein is not None:
                partial.destination_ein = packet.destination_ein
            if packet.more:
                return
            del self._partial[key]
            self.counters["messages_routed"] += 1
            if partial.destination_ein is None:
                return  # terminates at the base station (wired egress)
            message = Message(message_id=packet.message_id,
                              size_bytes=partial.bytes_received,
                              created_at=partial.created_at,
                              destination_ein=partial.destination_ein)
            self._route(cell_id, message)
        return handler

    def _route(self, src_cell: int, message: Message) -> None:
        dest_cell = self.directory.get(message.destination_ein)
        if dest_cell is None:
            return
        if dest_cell == src_cell:
            self.counters["messages_delivered_local"] += 1
            self._deliver_down(dest_cell, message)
        elif dest_cell in self._cell_set:
            self.counters["messages_forwarded"] += 1
            self.backbone.send(
                src_cell, dest_cell, message, message.size_bytes,
                lambda msg, src=src_cell: self._backbone_arrival(
                    src, msg))
        else:
            self.counters["messages_forwarded"] += 1
            self._emit_message(message, dest_cell, src_cell)

    def _backbone_arrival(self, src_cell: int,
                          message: Message) -> None:
        # The destination may have moved while the message was on the
        # local wire; re-resolve (and hand off to another shard if it
        # left entirely).
        dest_cell = self.directory.get(message.destination_ein)
        if dest_cell is None:
            return
        if dest_cell in self._cell_set:
            self._deliver_down(dest_cell, message)
        else:
            self._emit_message(message, dest_cell, src_cell)

    def _emit_message(self, message: Message, dest_cell: int,
                      src_cell: int, hops: int = 0) -> None:
        if hops > MAX_MESSAGE_HOPS:
            self.counters["messages_hop_dropped"] += 1
            return
        self.counters["messages_cross_shard"] += 1
        dst_shard = str(self.city.shard_of_cell(dest_cell))
        xbytes = self.counters["cross_shard_bytes"]
        xbytes[dst_shard] = (xbytes.get(dst_shard, 0)
                             + message.size_bytes)
        self._outbound.append(message_envelope(
            dest_ein=message.destination_ein, dest_cell=dest_cell,
            message_id=message.message_id,
            size_bytes=message.size_bytes,
            created_at=message.created_at, src_cell=src_cell,
            sent_at=self.sim.now, hops=hops))

    # -- downlink delivery --------------------------------------------------

    def _deliver_down(self, cell_id: int, message: Message) -> None:
        bs = self.runs[cell_id].base_station
        record = bs.registration.lookup_ein(message.destination_ein)
        if record is None:
            # Mid-handoff or still registering: buffer until the
            # registration completes (the paging field's job).
            self.counters["messages_buffered_for_registration"] += 1
            self._waiting.setdefault(message.destination_ein,
                                     []).append(message)
            return
        self._fragment_down(bs, record.uid, message)

    def _fragment_down(self, bs: Any, uid: int,
                       message: Message) -> None:
        fragments = message.fragments(PAYLOAD_BYTES)
        remaining = message.size_bytes
        for index in range(fragments):
            chunk = min(PAYLOAD_BYTES, remaining)
            remaining -= chunk
            bs.submit_forward(uid, ForwardPacket(
                uid=uid, seq=self._forward_seq % 4096,
                payload_len=chunk, message_id=message.message_id,
                more=index < fragments - 1,
                created_at=message.created_at))
            self._forward_seq += 1

    def _make_registration_handler(self, cell_id: int) -> Callable:
        def handler(record: Any) -> None:
            waiting = self._waiting.pop(record.ein, None)
            if not waiting:
                return
            bs = self.runs[cell_id].base_station
            for message in waiting:
                self._fragment_down(bs, record.uid, message)
        return handler

    def _make_receiver(self, ein: int) -> Callable:
        def on_received(packet: DataPacket) -> None:
            self.counters["messages_received"] += 1
            self.counters["end_to_end_delay_total"] += (
                self.sim.now - packet.created_at)
        return on_received

    # -- mobility -----------------------------------------------------------

    def _on_mobility(self, event: MobilityEvent) -> None:
        subscriber = self._local.get(event.ein)
        if subscriber is None:
            return  # hosted elsewhere (or in flight between shards)
        from_cell = self.directory[event.ein]
        to_cell = event.to_cell
        if to_cell == from_cell:
            return  # missed hops resynchronized the walk here already
        bs = self.runs[from_cell].base_station
        if subscriber.uid is not None:
            bs.sign_off(subscriber.uid)
        hop = self._hop[event.ein] + 1
        self._hop[event.ein] = hop
        kind = ("gps" if isinstance(subscriber, GpsSubscriber)
                else "data")
        self._count_handoff(to_cell, kind)
        if to_cell in self._cell_set:
            self._relocate_local(subscriber, to_cell, hop)
        else:
            self._capture_departure(subscriber, from_cell, to_cell,
                                    hop)

    def _count_handoff(self, to_cell: int, kind: str) -> None:
        by_cell = self.counters["handoffs_by_cell"]
        key = f"{to_cell}/{kind}"
        by_cell[key] = by_cell.get(key, 0) + 1

    def _hop_link(self, ein: int, hop: int, direction: str) -> Link:
        stream = self._ein_streams(ein)[f"link-{hop}-{direction}"]
        return Link(_make_error_model(self._cell_cfg, stream), stream,
                    full_fidelity=self._cell_cfg.full_fidelity)

    def _relocate_local(self, subscriber: Any, to_cell: int,
                        hop: int) -> None:
        target = self.runs[to_cell]
        subscriber.relocate(
            target.base_station.forward, target.base_station.reverse,
            forward_link=self._hop_link(subscriber.ein, hop, "fwd"),
            reverse_link=self._hop_link(subscriber.ein, hop, "rev"))
        self.directory[subscriber.ein] = to_cell
        self.counters["handoffs_local"] += 1

    def _capture_departure(self, subscriber: Any, from_cell: int,
                           to_cell: int, hop: int) -> None:
        ein = subscriber.ein
        state = subscriber.transfer_state()
        if state.get("kind") == "data":
            state["msg_counter"] = self._msg_counter.get(ein, 0)
            source = self._sources.pop(ein, None)
            if source is not None:
                source.stop_at = self.sim.now
        subscriber.depart()
        del self._local[ein]
        self.directory[ein] = to_cell
        self.counters["handoffs_out"] += 1
        self._outbound.append(handoff_envelope(
            ein=ein, from_cell=from_cell, to_cell=to_cell,
            depart_time=self.sim.now, hop=hop, state=state))
        # Messages buffered for the departed subscriber chase it to the
        # destination shard.
        waiting = self._waiting.pop(ein, None)
        if waiting:
            for message in waiting:
                self._emit_message(message, to_cell, from_cell)

    # -- epoch barrier ------------------------------------------------------

    def apply_inbound(self, epoch: int,
                      envelopes: List[Dict[str, Any]]) -> None:
        """Apply the coordinator's merged envelopes before ``epoch``."""
        t0 = epoch * self.city.epoch_duration
        for env in canonical_order(envelopes):
            if env["type"] == HANDOFF:
                self.directory[env["ein"]] = env["to_cell"]
                self._hop[env["ein"]] = env["hop"]
                if env["to_cell"] in self._cell_set:
                    self._materialize(env, t0)
            else:
                arrive_at = t0 + self.city.backbone_latency
                message = Message(
                    message_id=env["message_id"],
                    size_bytes=env["size_bytes"],
                    created_at=env["created_at"],
                    destination_ein=env["dest_ein"])
                self.sim.call_at(
                    arrive_at,
                    lambda m=message, src=env["src_cell"],
                    hops=env["hops"]: self._inbound_arrival(
                        m, src, hops))

    def _materialize(self, env: Dict[str, Any], t0: float) -> None:
        ein = env["ein"]
        to_cell = env["to_cell"]
        hop = env["hop"]
        state = env["state"]
        run = self.runs[to_cell]
        bs = run.base_station
        streams = self._ein_streams(ein)
        cls = GpsSubscriber if state.get("kind") == "gps" \
            else DataSubscriber
        subscriber = cls(
            self.sim, self._cell_cfg, ein, bs.forward, bs.reverse,
            forward_link=self._hop_link(ein, hop, "fwd"),
            reverse_link=self._hop_link(ein, hop, "rev"),
            stats=run.stats, rng=streams[f"sub-hop{hop}"],
            entry_time=t0, name=f"c{to_cell}-h{hop}-ein{ein:x}")
        subscriber.restore_transfer_state(state)
        self.counters["handoffs_in"] += 1
        if isinstance(subscriber, GpsSubscriber):
            run.gps_units.append(subscriber)
        else:
            run.data_users.append(subscriber)
            self._msg_counter[ein] = int(state.get("msg_counter", 0))
        self._adopt(subscriber)
        self._hop[ein] = hop
        if isinstance(subscriber, DataSubscriber):
            self._start_source(subscriber, hop=hop, start_at=t0)

    def _inbound_arrival(self, message: Message, src_cell: int,
                         hops: int) -> None:
        dest_cell = self.directory.get(message.destination_ein)
        if dest_cell is None:
            return
        if dest_cell in self._cell_set:
            self._deliver_down(dest_cell, message)
        else:
            # Moved again while the envelope crossed the barrier.
            self._emit_message(message, dest_cell, src_cell, hops + 1)

    def run_epoch(self, epoch: int) -> Dict[str, Any]:
        """Advance to the end of ``epoch`` and report canonically."""
        self.sim.run(until=(epoch + 1) * self.city.epoch_duration)
        outbound = canonical_order(self._outbound)
        self._outbound = []
        counters = json.loads(json.dumps(self.counters))
        counters["radio_violations"] = sum(
            len(sub.radio.violations)
            for run in self.runs.values()
            for sub in run.data_users + run.gps_units)
        counters["backbone_bytes_local"] = self.backbone.total_bytes
        cells = {str(cell_id): self.runs[cell_id].stats.summary()
                 for cell_id in self.cell_ids}
        report = {
            "shard": self.shard_id,
            "epoch": epoch,
            "census": sorted(self._local),
            "counters": counters,
            "cells": cells,
            "outbound": outbound,
        }
        report["digest"] = report_digest(report)
        return report


def report_digest(report: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of a report (minus the digest)."""
    payload = {key: value for key, value in report.items()
               if key != "digest"}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def shard_epoch_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Engine point: replay one shard through epoch ``task['epoch']``.

    The engine pool is stateless between points, so the epoch-k task
    rebuilds the shard from its config and *replays* epochs 0..k,
    feeding each epoch the same merged inbound envelopes the coordinator
    distributed at that barrier.  Replay of a deterministic simulation
    is the identity, so the returned epoch-k report is bit-identical to
    the live serial shard's -- that equivalence is exactly what the
    jobs-1-vs-N digest check in the tests and CI smoke verifies.
    """
    city = CityConfig.from_dict(task["city"])
    shard = ShardSim(city, task["shard"])
    epoch = task["epoch"]
    inbound = task["inbound"]
    report: Dict[str, Any] = {}
    for k in range(epoch + 1):
        shard.apply_inbound(k, inbound[k] if k < len(inbound) else [])
        report = shard.run_epoch(k)
    return report
