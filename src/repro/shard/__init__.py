"""City-scale sharded simulation: epoch-synchronized cell shards.

Partitions a grid of OSU-MAC cells into shard groups, runs each shard
on its own simulator (serially, or as engine points in the process
pool), and advances the city in lockstep epochs with deterministic
cross-shard envelopes at every barrier.  See ``docs/SCALING.md`` for
the model and the determinism contract.
"""

from repro.shard.config import (
    EIN_CELL_STRIDE,
    CityConfig,
    MobilityConfig,
    demo_config,
)
from repro.shard.coordinator import (
    CityCoordinator,
    CityIntegrityError,
    CityResult,
    city_digest,
    epoch_digest,
    run_city,
)
from repro.shard.mobility import MobilityEvent, build_schedule
from repro.shard.shard import ShardSim, report_digest, shard_epoch_task

__all__ = [
    "EIN_CELL_STRIDE",
    "CityConfig",
    "CityCoordinator",
    "CityIntegrityError",
    "CityResult",
    "MobilityConfig",
    "MobilityEvent",
    "ShardSim",
    "build_schedule",
    "city_digest",
    "demo_config",
    "epoch_digest",
    "report_digest",
    "run_city",
    "shard_epoch_task",
]
