"""The city journal: per-epoch checkpoints so a killed run resumes.

One JSONL file per (config digest) under the engine's journal root
(``REPRO_JOURNAL_DIR`` or ``<cache>/journal``), guarded by the same
pidfile :class:`~repro.engine.checkpoint.JournalLock` the sweep journal
uses.  The first line is a header identifying the schema and the exact
config; each subsequent line is one completed epoch's full set of shard
reports (including their outbound envelopes), flushed as the barrier
commits.  A resumed run replays the journaled epochs through the *same*
merge code the live run uses, re-deriving digests and the directory --
and verifies the recomputed digests against the journaled ones, so a
corrupted or mismatched journal fails loudly instead of silently
diverging.

A torn final line (SIGKILL mid-append) is skipped on load: that epoch
never committed, and the resumed run recomputes it.  The journal is
deleted when the run finishes cleanly.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.engine.checkpoint import (
    JournalLock,
    default_journal_dir,
    fsync_directory,
)

SCHEMA = "repro/city-journal@1"


class CityJournal:
    """Crash-safe epoch checkpoint log for one city run."""

    def __init__(self, config_digest: str,
                 root: Optional[str] = None):
        self.root = root or default_journal_dir()
        self.config_digest = config_digest
        self.path = os.path.join(
            self.root, f"city-{config_digest[:16]}.jsonl")
        self.lock = JournalLock(self.path + ".lock")
        self._handle = None
        self._dir_synced = False

    def acquire(self) -> None:
        self.lock.acquire()

    def load(self) -> List[Dict[str, Any]]:
        """Committed epoch records, in epoch order.

        Returns ``[]`` when there is no usable journal.  Records must be
        consecutive from epoch 0 and carry the matching config digest;
        anything else (a different config hashed to the same truncated
        filename, an out-of-order tail) is discarded rather than
        resumed.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        records = []
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn tail from a mid-write kill
            if not isinstance(record, dict):
                break
            records.append(record)
        if not records:
            return []
        header = records[0]
        if (header.get("schema") != SCHEMA
                or header.get("config_sha256") != self.config_digest):
            return []
        epochs = records[1:]
        for index, record in enumerate(epochs):
            if record.get("epoch") != index:
                return epochs[:index]
        return epochs

    def write_header(self) -> None:
        self._append({"schema": SCHEMA,
                      "config_sha256": self.config_digest})

    def append_epoch(self, epoch: int,
                     reports: List[Dict[str, Any]],
                     epoch_digest: str) -> None:
        self._append({"epoch": epoch, "epoch_digest": epoch_digest,
                      "reports": reports})

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            os.makedirs(self.root, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:
            pass
        if not self._dir_synced:
            fsync_directory(self.root)
            self._dir_synced = True

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
        self.lock.release()

    def discard(self) -> None:
        """Remove the journal (the run finished cleanly)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass
