"""The city coordinator: lockstep epochs, barrier merges, checkpoints.

The coordinator advances every shard one epoch at a time.  At each
barrier it gathers the shards' canonically ordered outbound envelopes,
merges them into one city-wide sequence, applies the handoffs to its
own directory, re-addresses in-flight messages against that directory
(the destination may have moved again), and distributes the next
epoch's inbound sets: handoffs broadcast to every shard (they double as
directory updates), messages to the shard owning the destination cell.

Two execution paths produce bit-identical results:

* ``jobs <= 1`` -- one live :class:`~repro.shard.shard.ShardSim` per
  shard in this process, stepped serially;
* ``jobs >= 2`` -- each (shard, epoch) is an engine
  :class:`~repro.engine.spec.Point` running
  :func:`~repro.shard.shard.shard_epoch_task` in the process pool,
  which replays the shard's deterministic history up to that epoch.

Every committed barrier is appended to a :class:`CityJournal`.  A
killed run restarted with ``resume=True`` replays deterministically
from epoch 0 (live shards cannot be unpickled mid-flight; with the
engine result cache enabled, pool points short-circuit instead of
re-simulating) and *verifies* each recomputed epoch digest against the
journaled one before continuing past the crash point -- so a resumed
run either bit-matches the original or fails loudly.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.spec import Point, RunSpec, execute
from repro.shard.config import CityConfig
from repro.shard.envelopes import HANDOFF, canonical_order
from repro.shard.journal import CityJournal
from repro.shard.shard import ShardSim, report_digest, shard_epoch_task


class CityIntegrityError(RuntimeError):
    """A resumed epoch did not reproduce its journaled digest."""


@dataclass
class CityResult:
    """What a city run returns."""

    config: CityConfig
    digest: str
    epoch_digests: List[str]
    #: Final cumulative counters summed over shards (nested dicts merged
    #: key-wise).
    counters: Dict[str, Any]
    #: Final ein -> cell directory.
    directory: Dict[int, int]
    #: Last epoch's full shard reports, in shard order.
    reports: List[Dict[str, Any]] = field(default_factory=list)
    #: Epochs verified against a resumed journal (0 on a fresh run).
    verified_epochs: int = 0
    wall_s: float = 0.0


def epoch_digest(reports: List[Dict[str, Any]]) -> str:
    """One digest per barrier: the shard digests, in shard order."""
    blob = json.dumps([report["digest"] for report in reports],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def city_digest(config: CityConfig, epoch_digests: List[str],
                directory: Dict[int, int]) -> str:
    """The city-state digest the determinism contract is stated over."""
    blob = json.dumps({
        "config": config.digest(),
        "epochs": epoch_digests,
        "directory": [[ein, cell]
                      for ein, cell in sorted(directory.items())],
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def aggregate_counters(reports: List[Dict[str, Any]]
                       ) -> Dict[str, Any]:
    """Sum cumulative shard counters (nested dicts merged key-wise)."""
    total: Dict[str, Any] = {}
    for report in reports:
        for key, value in report["counters"].items():
            if isinstance(value, dict):
                bucket = total.setdefault(key, {})
                for sub_key, sub_value in value.items():
                    bucket[sub_key] = bucket.get(sub_key, 0) + sub_value
            else:
                total[key] = total.get(key, 0) + value
    return total


class CityCoordinator:
    """Run one sharded city to completion (or resume one)."""

    def __init__(self, config: CityConfig, jobs: int = 1,
                 cache: Any = False, checkpoint: bool = True,
                 journal_root: Optional[str] = None,
                 resume: bool = False):
        self.config = config
        self.jobs = jobs
        self.cache = cache
        self.checkpoint = checkpoint
        self.journal_root = journal_root
        self.resume = resume
        self.directory: Dict[int, int] = {
            ein: config.home_cell_of_ein(ein)
            for ein in config.all_eins()}
        #: Per shard: the inbound envelope list of every epoch so far.
        self._history: List[List[List[Dict[str, Any]]]] = [
            [] for _ in range(config.num_shards)]
        self._shards: List[ShardSim] = []
        self._metric_prev: Dict[int, Dict[str, Any]] = {}

    # -- barrier merge ------------------------------------------------------

    def _merge(self, reports: List[Dict[str, Any]]
               ) -> List[List[Dict[str, Any]]]:
        """Merge outbound envelopes into each shard's next inbound set."""
        config = self.config
        merged = canonical_order(
            [env for report in reports for env in report["outbound"]])
        inbound: List[List[Dict[str, Any]]] = [
            [] for _ in range(config.num_shards)]
        for env in merged:
            if env["type"] == HANDOFF:
                self.directory[env["ein"]] = env["to_cell"]
                for shard_inbound in inbound:
                    shard_inbound.append(env)
        for env in merged:
            if env["type"] != HANDOFF:
                # Re-address against the post-handoff directory: the
                # mover the message chases may have crossed another
                # boundary this very epoch.
                dest_cell = self.directory.get(env["dest_ein"],
                                               env["dest_cell"])
                if dest_cell != env["dest_cell"]:
                    env = dict(env)
                    env["dest_cell"] = dest_cell
                inbound[config.shard_of_cell(dest_cell)].append(env)
        return [canonical_order(envs) for envs in inbound]

    # -- epoch execution ----------------------------------------------------

    def _run_epoch_live(self, epoch: int):
        if not self._shards:
            self._shards = [ShardSim(self.config, shard_id)
                            for shard_id
                            in range(self.config.num_shards)]
        reports = []
        seconds = []
        for shard_id, shard in enumerate(self._shards):
            shard.apply_inbound(epoch, self._history[shard_id][epoch])
            started = time.perf_counter()
            reports.append(shard.run_epoch(epoch))
            seconds.append(time.perf_counter() - started)
        lag = max(seconds) - min(seconds) if len(seconds) > 1 else 0.0
        return reports, lag

    def _run_epoch_pool(self, epoch: int):
        config_dict = self.config.to_dict()
        points = tuple(
            Point(fn=shard_epoch_task,
                  config={"city": config_dict, "shard": shard_id,
                          "epoch": epoch,
                          "inbound": self._history[shard_id]},
                  label={"shard": shard_id, "epoch": epoch})
            for shard_id in range(self.config.num_shards))
        spec = RunSpec(
            name=f"city-{self.config.digest()[:8]}-epoch{epoch}",
            points=points)
        result = execute(spec, jobs=self.jobs, cache=self.cache,
                         resume=self.resume)
        if result.failures:
            raise RuntimeError(
                "city epoch failed: "
                + json.dumps(result.failure_report()))
        executed = [s for s in result.stats.point_seconds if s > 0]
        lag = max(executed) - min(executed) if len(executed) > 1 \
            else 0.0
        return list(result.values), lag

    # -- the run loop -------------------------------------------------------

    def run(self) -> CityResult:
        started = time.perf_counter()
        config = self.config
        journal: Optional[CityJournal] = None
        journaled: List[Dict[str, Any]] = []
        if self.checkpoint:
            journal = CityJournal(config.digest(),
                                  root=self.journal_root)
            journal.acquire()
            if self.resume:
                journaled = journal.load()
            # Rewrite from a clean header: a fresh run drops any stale
            # journal; a resumed one re-commits its verified prefix as
            # each epoch replays below.
            try:
                os.unlink(journal.path)
            except OSError:
                pass
            journal.write_header()

        epoch_digests: List[str] = []
        verified = 0
        reports: List[Dict[str, Any]] = []
        next_inbound: List[List[Dict[str, Any]]] = [
            [] for _ in range(config.num_shards)]
        try:
            for epoch in range(config.epochs):
                for shard_id in range(config.num_shards):
                    self._history[shard_id].append(
                        next_inbound[shard_id])
                if self.jobs and self.jobs > 1:
                    reports, lag = self._run_epoch_pool(epoch)
                else:
                    reports, lag = self._run_epoch_live(epoch)
                digest = epoch_digest(reports)
                if epoch < len(journaled):
                    committed = journaled[epoch].get("epoch_digest")
                    if digest != committed:
                        raise CityIntegrityError(
                            f"epoch {epoch} replayed to {digest[:12]} "
                            f"but the journal committed "
                            f"{str(committed)[:12]}; refusing to "
                            f"resume past a divergent prefix")
                    verified += 1
                if journal is not None:
                    journal.append_epoch(epoch, reports, digest)
                epoch_digests.append(digest)
                self._publish_metrics(reports, lag)
                next_inbound = self._merge(reports)
        except BaseException:
            if journal is not None:
                journal.close()  # keep the journal for a resume
            raise
        if journal is not None:
            journal.discard()
        return CityResult(
            config=config,
            digest=city_digest(config, epoch_digests, self.directory),
            epoch_digests=epoch_digests,
            counters=aggregate_counters(reports),
            directory=dict(self.directory),
            reports=reports,
            verified_epochs=verified,
            wall_s=time.perf_counter() - started)

    # -- observability ------------------------------------------------------

    def _publish_metrics(self, reports: List[Dict[str, Any]],
                         barrier_lag: float) -> None:
        from repro.obs.registry import default_registry

        registry = default_registry()
        if not registry.enabled:
            return
        handoffs = registry.counter(
            "osu_city_handoffs_total",
            "Cell transitions completed, by destination cell",
            ("shard", "cell", "kind"))
        pages = registry.counter(
            "osu_city_buffered_pages_total",
            "Messages buffered (and paged) awaiting registration",
            ("shard",))
        backbone = registry.counter(
            "osu_city_backbone_bytes_total",
            "Message bytes crossing shard boundaries",
            ("src_shard", "dst_shard"))
        messages = registry.counter(
            "osu_city_messages_total",
            "City messages by disposition", ("shard", "kind"))
        lag_gauge = registry.gauge(
            "osu_city_epoch_barrier_lag_seconds",
            "Wall-clock spread between fastest and slowest shard "
            "at the last epoch barrier")
        scalar_kinds = (
            ("messages_routed", "routed"),
            ("messages_forwarded", "forwarded"),
            ("messages_delivered_local", "delivered_local"),
            ("messages_cross_shard", "cross_shard"),
            ("messages_received", "received"),
            ("messages_hop_dropped", "hop_dropped"),
        )
        for report in reports:
            shard = str(report["shard"])
            current = report["counters"]
            previous = self._metric_prev.get(report["shard"], {})
            for key, kind in scalar_kinds:
                delta = current[key] - previous.get(key, 0)
                if delta:
                    messages.labels(shard, kind).inc(delta)
            delta = (current["messages_buffered_for_registration"]
                     - previous.get("messages_buffered_for_registration",
                                    0))
            if delta:
                pages.labels(shard).inc(delta)
            prev_cells = previous.get("handoffs_by_cell", {})
            for key, count in current["handoffs_by_cell"].items():
                delta = count - prev_cells.get(key, 0)
                if delta:
                    cell, kind = key.split("/")
                    handoffs.labels(shard, cell, kind).inc(delta)
            prev_bytes = previous.get("cross_shard_bytes", {})
            for dst, total in current["cross_shard_bytes"].items():
                delta = total - prev_bytes.get(dst, 0)
                if delta:
                    backbone.labels(shard, dst).inc(delta)
            self._metric_prev[report["shard"]] = current
        lag_gauge.set(barrier_lag)


def run_city(config: CityConfig, jobs: int = 1, cache: Any = False,
             checkpoint: bool = True,
             journal_root: Optional[str] = None,
             resume: bool = False) -> CityResult:
    """Build a coordinator and run the city to completion."""
    coordinator = CityCoordinator(
        config, jobs=jobs, cache=cache, checkpoint=checkpoint,
        journal_root=journal_root, resume=resume)
    return coordinator.run()


__all__ = [
    "CityCoordinator",
    "CityIntegrityError",
    "CityResult",
    "aggregate_counters",
    "city_digest",
    "epoch_digest",
    "report_digest",
    "run_city",
]
