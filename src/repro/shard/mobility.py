"""Seed-deterministic mobility: bus routes over the cell grid.

The schedule is a pure function of the :class:`CityConfig`: every
shard (and the coordinator) computes the identical, totally ordered
event list, so mobility never needs to cross the barrier as data --
each shard simply ignores events for subscribers it does not currently
host.

Each mover walks the grid's 4-neighbourhood with exponential dwell
times.  The per-epoch hop rate is ``hops_per_epoch`` scaled by the
epoch's rush multiplier, which makes a "rush hour" a wave of handoffs
sweeping the city mid-run.  Every mover draws from its own named
stream, so adding a mover never perturbs another's route.

Transition times are quantized up to the next MAC cycle boundary: a
subscriber finishes the cycle it is in and then moves.  A mid-cycle
teardown would strand scheduled radio claims from the old cell against
the new cell's, breaking the zero-half-duplex-violation invariant the
whole simulator is audited for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.phy import timing
from repro.shard.config import CityConfig
from repro.sim import RandomStreams


@dataclass(frozen=True)
class MobilityEvent:
    """One cell transition: ``ein`` leaves ``from_cell`` at ``time``."""

    time: float
    ein: int
    from_cell: int
    to_cell: int


def build_schedule(config: CityConfig) -> List[MobilityEvent]:
    """All cell transitions of the run, sorted by (time, ein)."""
    streams = RandomStreams(config.seed).spawn("mobility")
    epoch_duration = config.epoch_duration
    events: List[MobilityEvent] = []
    for ein in config.mover_eins():
        rng = streams[f"route-{ein}"]
        cell = config.home_cell_of_ein(ein)
        for epoch in range(config.epochs):
            rate = (config.mobility.hops_per_epoch
                    * config.mobility.multiplier(epoch))
            if rate <= 0:
                continue
            # Exponential gaps in epoch-fraction units: expected number
            # of hops in the epoch equals the rate.
            frac = rng.expovariate(rate)
            while frac < 1.0:
                neighbors = config.neighbors(cell)
                dest = rng.choice(neighbors)
                cycle = math.ceil(
                    (epoch + frac) * config.cycles_per_epoch)
                events.append(MobilityEvent(
                    time=cycle * timing.CYCLE_LENGTH, ein=ein,
                    from_cell=cell, to_cell=dest))
                cell = dest
                frac += rng.expovariate(rate)
    events.sort(key=lambda ev: (ev.time, ev.ein))
    return events
