"""``repro city``: run a sharded city on the engine pool.

Examples::

    python -m repro city --demo --jobs 4
    python -m repro city --rows 4 --cols 4 --shards 2 --epochs 4
    python -m repro city --demo --digest-only          # CI determinism
    python -m repro city --demo --resume               # after a kill
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Tuple

from repro.core.config import CellConfig
from repro.shard.config import CityConfig, MobilityConfig, demo_config
from repro.shard.coordinator import CityResult, run_city


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--demo", action="store_true",
                        help="run the demo grid: 64 cells x 8 shards, "
                             "448 subscribers, a rush-hour mobility "
                             "wave")
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--cols", type=int, default=4)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--epoch-cycles", type=int, default=25,
                        help="MAC cycles per epoch (default 25)")
    parser.add_argument("--warmup", type=int, default=10)
    parser.add_argument("--data-users", type=int, default=4,
                        help="data subscribers per cell")
    parser.add_argument("--gps-users", type=int, default=1,
                        help="GPS units per cell")
    parser.add_argument("--load", type=float, default=0.4,
                        help="per-cell uplink load index")
    parser.add_argument("--inter-cell", type=float, default=0.5,
                        help="fraction of messages addressed across "
                             "cells")
    parser.add_argument("--movers", type=int, default=1,
                        help="mobile data subscribers per cell")
    parser.add_argument("--gps-movers", type=int, default=0,
                        help="mobile GPS units (buses) per cell")
    parser.add_argument("--hops-per-epoch", type=float, default=0.5,
                        help="expected cell transitions per mover per "
                             "epoch")
    parser.add_argument("--rush", default="",
                        help="comma-separated per-epoch mobility "
                             "multipliers, e.g. 0.25,1,3,3,1,0.25")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1,
                        help="1 = serial in-process shards, N >= 2 = "
                             "engine process pool")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed run from its epoch "
                             "journal (verifying the committed prefix)")
    parser.add_argument("--no-checkpoint", action="store_true",
                        help="skip the per-epoch city journal")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the engine result cache for pool "
                             "epochs")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write osu_city_* metric families to PATH "
                             "in Prometheus text format")
    parser.add_argument("--digest-only", action="store_true",
                        help="print only the city-state digest")
    parser.add_argument("--json", action="store_true",
                        help="print the full result as JSON")


def build_config(args: argparse.Namespace) -> CityConfig:
    if args.demo:
        return demo_config(seed=args.seed)
    rush: Optional[Tuple[float, ...]] = None
    if args.rush:
        rush = tuple(float(item) for item in args.rush.split(","))
    return CityConfig(
        rows=args.rows, cols=args.cols, num_shards=args.shards,
        cell=CellConfig(num_data_users=args.data_users,
                        num_gps_users=args.gps_users,
                        load_index=0.0),
        load_index=args.load, inter_cell_fraction=args.inter_cell,
        epochs=args.epochs, cycles_per_epoch=args.epoch_cycles,
        warmup_cycles=args.warmup,
        mobility=MobilityConfig(
            movers_per_cell=args.movers,
            gps_movers_per_cell=args.gps_movers,
            hops_per_epoch=args.hops_per_epoch,
            rush_multipliers=rush),
        seed=args.seed)


def _print_human(config: CityConfig, result: CityResult) -> None:
    counters = result.counters
    print(f"{config.num_cells} cells ({config.rows}x{config.cols}) "
          f"in {config.num_shards} shards, "
          f"{config.epochs} epochs x {config.cycles_per_epoch} cycles, "
          f"{len(config.all_eins())} subscribers")
    handoffs = (counters["handoffs_local"] + counters["handoffs_out"])
    received = counters["messages_received"]
    delay = (counters["end_to_end_delay_total"] / received
             if received else 0.0)
    print(f"  messages routed      {counters['messages_routed']}")
    print(f"  delivered in-cell    "
          f"{counters['messages_delivered_local']}")
    print(f"  forwarded            {counters['messages_forwarded']} "
          f"({counters['messages_cross_shard']} cross-shard)")
    print(f"  received end-to-end  {received} "
          f"(mean delay {delay:.1f} s)")
    print(f"  buffered for reg.    "
          f"{counters['messages_buffered_for_registration']}")
    print(f"  handoffs             {handoffs} "
          f"({counters['handoffs_out']} cross-shard)")
    print(f"  radio violations     {counters['radio_violations']}")
    if result.verified_epochs:
        print(f"  resumed: verified {result.verified_epochs} journaled "
              f"epoch(s)")
    print(f"  wall time            {result.wall_s:.1f} s")
    print(f"city digest {result.digest}")


def run(args: argparse.Namespace) -> int:
    try:
        config = build_config(args)
    except ValueError as error:
        print(f"city: {error}", file=sys.stderr)
        return 2
    if args.metrics:
        from repro.obs.registry import default_registry

        default_registry().enable()
    result = run_city(
        config, jobs=args.jobs,
        cache=False if args.no_cache else None,
        checkpoint=not args.no_checkpoint,
        resume=args.resume)
    if args.metrics:
        from repro.obs.export import write_prometheus
        from repro.obs.registry import default_registry

        write_prometheus(args.metrics, default_registry())
        print(f"[metrics] osu_city_* -> {args.metrics}",
              file=sys.stderr)
    if args.digest_only:
        print(result.digest)
        return 0
    if args.json:
        print(json.dumps({
            "digest": result.digest,
            "epoch_digests": result.epoch_digests,
            "counters": result.counters,
            "verified_epochs": result.verified_epochs,
            "wall_s": result.wall_s,
        }, indent=2))
        return 0
    _print_human(config, result)
    return 0
