"""Structured event tracing for debugging and analysis.

:class:`CellTracer` instruments a built (not yet run) cell through its
public hooks only -- the reverse channel's delivery listener, a wildcard
receiver on the forward channel, and the base station's registration
hook -- so the protocol code runs unmodified.  Every on-air event becomes
a :class:`TraceEvent` that can be filtered, summarized, or dumped as
JSON lines for offline analysis.

Example::

    run = build_cell(config)
    tracer = CellTracer(run)
    run.sim.run(until=config.duration)
    for event in tracer.query(category="uplink", event="collision"):
        print(event)
    tracer.write_jsonl("trace.jsonl")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.core.cell import CellRun
from repro.core.frames import DownlinkFrame, UplinkFrame
from repro.phy.channel import Link, Transmission


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    time: float
    category: str  # 'uplink' | 'downlink' | 'control'
    event: str  # e.g. 'data', 'collision', 'cf1', 'registration'
    actor: str  # transmitting entity
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"time": self.time, "category": self.category,
                   "event": self.event, "actor": self.actor}
        payload.update(self.detail)
        return json.dumps(payload, sort_keys=True)


class CellTracer:
    """Records every on-air event of one cell."""

    def __init__(self, run: CellRun, max_events: int = 1_000_000):
        self.run = run
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0
        run.base_station.reverse.add_listener(self._on_uplink)
        run.base_station.forward.attach(
            f"tracer-{id(self)}", Link(), self._on_downlink)
        self._chain_registration_hook(run)

    def _chain_registration_hook(self, run: CellRun) -> None:
        previous = run.base_station.on_registration

        def hook(record):
            self._record(TraceEvent(
                time=run.sim.now, category="control",
                event="registration", actor=f"uid-{record.uid}",
                detail={"ein": record.ein, "service": record.service}))
            if previous is not None:
                previous(record)

        run.base_station.on_registration = hook

    # -- recording ------------------------------------------------------------

    def _record(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def _on_uplink(self, transmission: Transmission, ok: bool) -> None:
        frame: UplinkFrame = transmission.payload
        if transmission.collided:
            event = "collision"
        elif not ok:
            event = "loss"
        else:
            event = frame.kind
        self._record(TraceEvent(
            time=self.run.sim.now, category="uplink", event=event,
            actor=str(transmission.sender),
            detail={"cycle": frame.cycle,
                    "slot_kind": frame.slot_kind,
                    "slot": frame.slot_index,
                    "contention": frame.contention,
                    "kind": frame.kind,
                    "ok": ok}))

    def _on_downlink(self, transmission: Transmission, ok: bool) -> None:
        frame: DownlinkFrame = transmission.payload
        detail: Dict[str, Any] = {"cycle": frame.cycle, "ok": ok}
        if frame.kind == "data":
            detail["slot"] = frame.slot_index
            detail["uid"] = frame.uid
        self._record(TraceEvent(
            time=self.run.sim.now, category="downlink",
            event=frame.kind, actor="base-station", detail=detail))

    # -- querying -------------------------------------------------------------

    def query(self, category: Optional[str] = None,
              event: Optional[str] = None,
              actor: Optional[str] = None,
              since: float = 0.0) -> Iterator[TraceEvent]:
        """Filtered view of the recorded events."""
        for item in self.events:
            if category is not None and item.category != category:
                continue
            if event is not None and item.event != event:
                continue
            if actor is not None and item.actor != actor:
                continue
            if item.time < since:
                continue
            yield item

    def count(self, **filters) -> int:
        return sum(1 for _ in self.query(**filters))

    def summary(self) -> Dict[str, int]:
        """Event counts keyed by 'category/event'."""
        counts: Dict[str, int] = {}
        for item in self.events:
            key = f"{item.category}/{item.event}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def write_jsonl(self, path: str) -> int:
        """Dump all events as JSON lines; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            for item in self.events:
                handle.write(item.to_json())
                handle.write("\n")
        return len(self.events)
