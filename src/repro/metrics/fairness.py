"""Jain's fairness index (Fig. 11; reference [11] of the paper).

For per-subscriber bandwidth shares ``u_1 .. u_m``::

    F = (sum u_i)^2 / (m * sum u_i^2)

F = 1 means perfectly equal shares; F = 1/m means one subscriber takes
everything.
"""

from __future__ import annotations

from typing import Iterable


def jain_fairness_index(shares: Iterable[float]) -> float:
    """Jain's fairness index of the given bandwidth shares.

    Returns 1.0 for an empty population (vacuously fair).
    """
    values = [float(value) for value in shares]
    if not values:
        return 1.0
    if any(value < 0 for value in values):
        raise ValueError("shares must be non-negative")
    total = sum(values)
    squares = sum(value * value for value in values)
    if total == 0 or squares == 0:  # all-zero (or denormal) shares
        return 1.0
    return (total * total) / (len(values) * squares)
