"""Counters and summaries recorded during a cell simulation.

Every figure in the paper's evaluation section is computed from the
fields collected here; the accessor methods at the bottom map one-to-one
onto the figures (see DESIGN.md section 4).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.fairness import jain_fairness_index


class SummaryStats:
    """Streaming summary (count/mean/std/min/max) with retained samples."""

    def __init__(self, keep_samples: bool = True):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: Optional[List[float]] = [] if keep_samples else None

    def push(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self.samples is not None:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Empirical quantile ``q`` in [0, 1] (needs retained samples)."""
        if self.samples is None:
            raise ValueError("samples were not retained")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1,
                    max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def fraction_at_most(self, threshold: float) -> float:
        """Fraction of samples <= threshold (needs retained samples)."""
        if self.samples is None:
            raise ValueError("samples were not retained")
        if not self.samples:
            return 0.0
        return (sum(1 for sample in self.samples if sample <= threshold)
                / len(self.samples))

    def __repr__(self) -> str:
        return (f"SummaryStats(count={self.count}, mean={self.mean:.4g}, "
                f"std={self.std:.4g}, min={self.min}, max={self.max})")


@dataclass
class CellStats:
    """Everything a cell simulation measures.

    ``warmup_until`` gates the steady-state counters: events before that
    time are ignored (registration statistics are exempt because
    registration happens during warmup by design).
    """

    cycle_length: float = 0.0
    warmup_until: float = 0.0
    measured_cycles: int = 0
    data_slots_per_cycle: int = 0
    payload_bytes_per_slot: int = 0

    # -- data plane -------------------------------------------------------
    data_packets_sent: int = 0
    data_packets_delivered: int = 0
    data_packets_in_last_slot: int = 0
    payload_bytes_delivered: int = 0
    per_user_bytes: Dict[int, int] = field(
        default_factory=lambda: defaultdict(int))
    message_delay: SummaryStats = field(default_factory=SummaryStats)
    packet_delay: SummaryStats = field(default_factory=SummaryStats)
    messages_generated: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_offered: int = 0

    # -- reverse-slot occupancy ------------------------------------------
    reverse_data_slots_total: int = 0
    reverse_data_slots_assigned: int = 0
    reverse_data_slots_used: int = 0

    # -- contention ---------------------------------------------------------
    reservation_packets_sent: int = 0
    reservation_packets_received: int = 0
    data_in_contention_sent: int = 0
    data_in_contention_received: int = 0
    contention_attempts: int = 0
    contention_attempts_collided: int = 0
    contention_slots_total: int = 0
    contention_slots_used: int = 0
    contention_slots_collided: int = 0
    contention_slots_idle: int = 0
    reservation_latency_cycles: SummaryStats = field(
        default_factory=SummaryStats)

    # -- registration (not warmup-gated) -------------------------------------
    registration_attempts: int = 0
    registration_latency_cycles: SummaryStats = field(
        default_factory=SummaryStats)
    registrations_completed: int = 0
    registrations_failed: int = 0
    #: Admission failures, split by cause so chaos tables can report
    #: admission pressure instead of hiding it.
    registrations_rejected_capacity: int = 0
    registrations_rejected_gps_slot: int = 0

    # -- robustness: faults, leases, recovery (not warmup-gated) -----------
    faults_injected: int = 0
    lease_evictions: int = 0  # base station: lease expired, deregistered
    evictions_detected: int = 0  # subscribers: noticed and re-registered
    unknown_uid_drops: int = 0  # uplink from a UID not in the registry
    cf_storm_drops: int = 0  # control-field sets killed by a CF storm
    invariant_violations: int = 0  # from repro.faults.invariants
    #: Restart/eviction -> re-registered latency, in notification cycles.
    recovery_latency_cycles: SummaryStats = field(
        default_factory=SummaryStats)

    # -- GPS ----------------------------------------------------------------
    gps_packets_sent: int = 0
    gps_packets_delivered: int = 0
    gps_packets_skipped: int = 0  # cycles a GPS unit could not transmit
    gps_access_delay: SummaryStats = field(default_factory=SummaryStats)
    gps_deadline_misses: int = 0

    # -- forward channel ------------------------------------------------------
    forward_packets_sent: int = 0
    forward_packets_delivered: int = 0
    forward_slots_total: int = 0
    forward_slots_assigned: int = 0
    forward_delay: SummaryStats = field(default_factory=SummaryStats)

    # -- radio audit ----------------------------------------------------------
    radio_violations: int = 0
    cf_losses: int = 0

    def in_measurement(self, now: float) -> bool:
        return now >= self.warmup_until

    # -- figure accessors --------------------------------------------------

    def utilization(self) -> float:
        """Fig. 8(a): MAC-level bytes delivered / reverse data capacity.

        Each delivered packet occupies one slot of
        ``payload_bytes_per_slot`` capacity, so this equals (packets
        delivered) / (data slots available) and is directly comparable to
        the load index (which is computed against MAC-level bytes too).
        """
        capacity = self.measured_cycles * self.data_slots_per_cycle
        return self.data_packets_delivered / capacity if capacity else 0.0

    def goodput_utilization(self) -> float:
        """Application bytes delivered / reverse data byte capacity."""
        capacity = (self.measured_cycles * self.data_slots_per_cycle
                    * self.payload_bytes_per_slot)
        return self.payload_bytes_delivered / capacity if capacity else 0.0

    def slot_utilization(self) -> float:
        """Reverse data slots that carried a delivered packet."""
        if not self.reverse_data_slots_total:
            return 0.0
        return self.reverse_data_slots_used / self.reverse_data_slots_total

    def mean_message_delay_cycles(self) -> float:
        """Fig. 8(b): mean e-mail message delay in notification cycles."""
        if not self.cycle_length:
            return 0.0
        return self.message_delay.mean / self.cycle_length

    def control_overhead(self) -> float:
        """Fig. 9/10: reservation packets / data packets (in data slots)."""
        if not self.data_packets_delivered:
            return 0.0
        return self.reservation_packets_sent / self.data_packets_delivered

    def collision_probability(self) -> float:
        """Fig. 10(a)/9(a): P[a used contention slot sees a collision]."""
        engaged = self.contention_slots_used + self.contention_slots_collided
        if not engaged:
            return 0.0
        return self.contention_slots_collided / engaged

    def attempt_collision_probability(self) -> float:
        """Alternative: P[a contention attempt collides]."""
        if not self.contention_attempts:
            return 0.0
        return self.contention_attempts_collided / self.contention_attempts

    def mean_reservation_latency_cycles(self) -> float:
        """Fig. 10(b)/9(b)."""
        return self.reservation_latency_cycles.mean

    def fairness(self) -> float:
        """Fig. 11: Jain index over per-subscriber delivered bytes."""
        return jain_fairness_index(self.per_user_bytes.values())

    def second_cf_gain(self) -> float:
        """Fig. 12(a): share of data packets carried by the last slot."""
        if not self.data_packets_delivered:
            return 0.0
        return self.data_packets_in_last_slot / self.data_packets_delivered

    def mean_data_slots_used(self) -> float:
        """Fig. 12(b): average reverse data slots used per cycle."""
        if not self.measured_cycles:
            return 0.0
        return self.reverse_data_slots_used / self.measured_cycles

    def registration_cdf(self, cycles: int) -> float:
        """Section 2.1 goal: P[registration latency <= ``cycles``]."""
        return self.registration_latency_cycles.fraction_at_most(cycles)

    def message_loss_rate(self) -> float:
        if not self.messages_generated:
            return 0.0
        return self.messages_dropped / self.messages_generated

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers (for reports/benches)."""
        return {
            "utilization": self.utilization(),
            "slot_utilization": self.slot_utilization(),
            "mean_message_delay_cycles": self.mean_message_delay_cycles(),
            "control_overhead": self.control_overhead(),
            "collision_probability": self.collision_probability(),
            "mean_reservation_latency_cycles":
                self.mean_reservation_latency_cycles(),
            "fairness": self.fairness(),
            "second_cf_gain": self.second_cf_gain(),
            "mean_data_slots_used": self.mean_data_slots_used(),
            "message_loss_rate": self.message_loss_rate(),
            "gps_max_access_delay": self.gps_access_delay.max or 0.0,
            "gps_deadline_misses": float(self.gps_deadline_misses),
            "radio_violations": float(self.radio_violations),
            "messages_dropped": float(self.messages_dropped),
            "registrations_rejected": float(
                self.registrations_rejected_capacity
                + self.registrations_rejected_gps_slot),
            "lease_evictions": float(self.lease_evictions),
            "faults_injected": float(self.faults_injected),
            "evictions_detected": float(self.evictions_detected),
            "recoveries": float(self.recovery_latency_cycles.count),
            "mean_recovery_cycles": self.recovery_latency_cycles.mean,
            "max_recovery_cycles":
                self.recovery_latency_cycles.max or 0.0,
            "invariant_violations": float(self.invariant_violations),
        }
