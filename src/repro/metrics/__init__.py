"""Statistics collection for OSU-MAC simulations."""

from repro.metrics.stats import CellStats, SummaryStats
from repro.metrics.fairness import jain_fairness_index

__all__ = ["CellStats", "SummaryStats", "jain_fairness_index"]
