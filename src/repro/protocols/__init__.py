"""Baseline wireless MAC protocols surveyed in Section 4 of the paper.

The paper compares OSU-MAC *qualitatively* against PRMA, D-TDMA, RAMA,
DRMA, FAMA, RQMA and MCNS, and deliberately omits a simulation comparison
("a comparison among them would not be fair" -- different design goals).
This package implements slot-level simulation models of the reservation
protocols anyway, so the repository can quantify the trade-offs the
survey discusses (extension experiment X1 in DESIGN.md):

* :mod:`repro.protocols.aloha` -- slotted ALOHA (the common ancestor and
  the contention mechanism inside D-TDMA's reservation slots),
* :mod:`repro.protocols.prma` -- Packet Reservation Multiple Access,
* :mod:`repro.protocols.dtdma` -- Dynamic TDMA with dedicated reservation
  minislots,
* :mod:`repro.protocols.rama` -- Resource Auction Multiple Access with
  its deterministic bit-by-bit ID auction,
* :mod:`repro.protocols.drma` -- Dynamic Reservation Multiple Access
  (reservation piggybacked into otherwise-unused information slots),
* :mod:`repro.protocols.fama` -- Floor Acquisition Multiple Access
  (CSMA/CD-style RTS/CTS floor acquisition),
* :mod:`repro.protocols.rqma` -- Remote-Queueing Multiple Access
  (deadline-scheduled real-time sessions with retransmission sessions),
* :mod:`repro.protocols.mcns` -- the MCNS/DOCSIS cable-modem MAC
  (MAP-based request/grant with piggyback requests).

All models share the frame/slot abstractions and statistics in
:mod:`repro.protocols.base`.
"""

from repro.protocols.base import ProtocolStats, VoiceModel
from repro.protocols.aloha import SlottedAloha
from repro.protocols.prma import PRMA
from repro.protocols.dtdma import DynamicTDMA
from repro.protocols.rama import RAMA
from repro.protocols.drma import DRMA
from repro.protocols.fama import FAMA
from repro.protocols.rqma import RQMA, RqmaStats
from repro.protocols.mcns import MCNS

__all__ = [
    "DRMA",
    "DynamicTDMA",
    "FAMA",
    "MCNS",
    "PRMA",
    "ProtocolStats",
    "RAMA",
    "RQMA",
    "RqmaStats",
    "SlottedAloha",
    "VoiceModel",
]
