"""Packet Reservation Multiple Access (PRMA) [Nanda, Goodman, Timor 1991].

Fig. 5(1) of the paper: time is divided into slots, several slots form a
frame.  There is no dedicated reservation bandwidth:

* A voice terminal with a new talk spurt contends for any *available*
  (unreserved) slot with permission probability ``p_voice``.  On success
  the slot is *reserved* for it in subsequent frames until the talk spurt
  ends.
* Data terminals must contend for every single packet (no reservations),
  with permission probability ``p_data``.

Voice packets that wait longer than ``max_delay_slots`` are dropped
(speech is useless late).  The paper's critique -- "due to its CSMA
nature, PRMA suffers from low utilization in medium to heavy traffic
loads" -- shows up directly in this model's throughput curve.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.protocols.base import (
    DataTerminal,
    ProtocolStats,
    VoiceModel,
    VoiceTerminal,
    resolve_contention,
)
from repro.sim.rng import RandomStreams


class PRMA:
    """Frame-based PRMA with reserved / available slot states."""

    def __init__(self,
                 num_voice: int,
                 num_data: int,
                 slots_per_frame: int = 20,
                 data_arrival_probability: float = 0.01,
                 p_voice: float = 0.3,
                 p_data: float = 0.1,
                 max_delay_frames: int = 2,
                 voice_model: Optional[VoiceModel] = None,
                 seed: int = 1):
        if slots_per_frame <= 0:
            raise ValueError("slots_per_frame must be positive")
        self.rng = RandomStreams(seed).stream("prma")
        self.slots_per_frame = slots_per_frame
        self.p_voice = p_voice
        self.p_data = p_data
        model = voice_model or VoiceModel()
        self.voice: List[VoiceTerminal] = [
            VoiceTerminal(index, model,
                          max_delay_slots=max_delay_frames
                          * slots_per_frame)
            for index in range(num_voice)]
        self.data: List[DataTerminal] = [
            DataTerminal(index, data_arrival_probability)
            for index in range(num_data)]
        #: slot index within frame -> voice terminal holding it.
        self.reservations: Dict[int, VoiceTerminal] = {}
        self.stats = ProtocolStats()
        self.current_slot = 0

    @property
    def frame_index(self) -> int:
        return self.current_slot // self.slots_per_frame

    def _begin_frame(self) -> None:
        for terminal in self.voice:
            terminal.new_frame(self.current_slot, self.rng, self.stats)
        for terminal in self.data:
            # Arrivals are per frame, matching the other protocol models
            # (one Bernoulli draw per terminal per frame).
            terminal.maybe_arrive(self.current_slot, self.rng, self.stats)
        # Reservations of terminals whose spurt ended are released.
        self.reservations = {
            slot: terminal for slot, terminal in self.reservations.items()
            if terminal.has_reservation}

    def step(self) -> None:
        """Simulate one slot."""
        in_frame = self.current_slot % self.slots_per_frame
        if in_frame == 0:
            self._begin_frame()
        slot = self.current_slot
        for terminal in self.voice:
            terminal.drop_expired(slot, self.stats)

        holder = self.reservations.get(in_frame)
        if holder is not None and holder.has_reservation:
            self.stats.slots_total += 1
            if holder.transmit(slot, self.stats):
                self.stats.slots_carrying_payload += 1
            else:
                # Nothing to send in a still-held reservation: the slot
                # is wasted (spurt packet already sent this frame).
                self.stats.slots_idle += 1
            self.current_slot += 1
            return

        # Available slot: voice and data contend with their permission
        # probabilities (pure PRMA, no carrier sensing between slots).
        contenders: List[object] = []
        for terminal in self.voice:
            if terminal.pending and not terminal.has_reservation \
                    and self.rng.random() < self.p_voice:
                contenders.append(terminal)
        for terminal in self.data:
            if terminal.pending and self.rng.random() < self.p_data:
                contenders.append(terminal)
        winner = resolve_contention(contenders, slot, self.stats)
        if winner is None:
            self.current_slot += 1
            return
        if isinstance(winner, VoiceTerminal):
            winner.transmit(slot, self.stats)
            winner.has_reservation = True
            winner.reserved_slot = in_frame
            self.reservations[in_frame] = winner
        else:
            winner.transmit(slot, self.stats)
        self.stats.slots_carrying_payload += 1
        self.current_slot += 1

    def run(self, num_frames: int) -> ProtocolStats:
        for _ in range(num_frames * self.slots_per_frame):
            self.step()
        return self.stats
