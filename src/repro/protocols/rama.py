"""Resource Auction Multiple Access (RAMA) [Amitay 1993].

Fig. 6 of the paper: like D-TDMA, but reservation minislots are replaced
by *auction* slots.  In each auction slot every requesting terminal draws
a random ID and transmits it bit by bit, most significant bit first.
After each bit the base station broadcasts the largest bit value it
heard; terminals whose bit did not match drop out.  By the end of the
auction exactly one terminal remains -- "it is guaranteed that one mobile
host will finally win out in each auction", the property the paper
highlights.  Winners skip further auctions in the same frame; losers draw
a fresh random ID and re-enter the next auction slot.

The deterministic winner is what separates RAMA's reservation throughput
from D-TDMA's ALOHA minislots: an auction slot is never wasted while
demand exists.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional

from repro.sim.rng import RandomStreams
from repro.protocols.base import (
    DataTerminal,
    ProtocolStats,
    VoiceModel,
    VoiceTerminal,
)


def run_auction(contenders: List, id_bits: int,
                rng: random.Random) -> Optional[object]:
    """One bit-by-bit ID auction; returns the unique winner (or None).

    Ties on the full random ID are broken by a fresh auction round among
    the tied terminals (equivalent to extending the ID length), so a
    non-empty auction always produces exactly one winner -- RAMA's
    defining guarantee.
    """
    if not contenders:
        return None
    remaining = list(contenders)
    while len(remaining) > 1:
        bids = {id(terminal): rng.getrandbits(id_bits)
                for terminal in remaining}
        for bit in range(id_bits - 1, -1, -1):
            values = [(bids[id(terminal)] >> bit) & 1
                      for terminal in remaining]
            strongest = max(values)
            survivors = [terminal for terminal, value
                         in zip(remaining, values) if value == strongest]
            remaining = survivors
            if len(remaining) == 1:
                break
        # Exact ID ties: loop again with fresh random IDs.
    return remaining[0]


class RAMA:
    """Frame-level RAMA: auction slots + voice slots + data slots."""

    def __init__(self,
                 num_voice: int,
                 num_data: int,
                 auction_slots: int = 4,
                 voice_slots: int = 10,
                 data_slots: int = 6,
                 id_bits: int = 8,
                 data_arrival_probability: float = 0.01,
                 max_delay_frames: int = 2,
                 voice_model: Optional[VoiceModel] = None,
                 seed: int = 1):
        self.rng = RandomStreams(seed).stream("rama")
        self.auction_slots = auction_slots
        self.voice_slots = voice_slots
        self.data_slots = data_slots
        self.id_bits = id_bits
        self.slots_per_frame = auction_slots + voice_slots + data_slots
        model = voice_model or VoiceModel()
        self.voice: List[VoiceTerminal] = [
            VoiceTerminal(index, model,
                          max_delay_slots=max_delay_frames
                          * self.slots_per_frame)
            for index in range(num_voice)]
        self.data: List[DataTerminal] = [
            DataTerminal(index, data_arrival_probability)
            for index in range(num_data)]
        self.voice_grants: List[VoiceTerminal] = []
        self.data_grant_queue: Deque[DataTerminal] = deque()
        self.stats = ProtocolStats()
        self.current_slot = 0
        self.frame_index = 0

    def _auction_phase(self) -> None:
        requesters = [terminal for terminal in self.voice
                      if terminal.pending and not terminal.has_reservation]
        requesters += [terminal for terminal in self.data
                       if terminal.pending
                       and terminal not in self.data_grant_queue]
        won_this_frame = set()
        for _ in range(self.auction_slots):
            self.stats.slots_total += 1
            live = [terminal for terminal in requesters
                    if id(terminal) not in won_this_frame]
            winner = run_auction(live, self.id_bits, self.rng)
            self.current_slot += 1
            if winner is None:
                self.stats.slots_idle += 1
                continue
            won_this_frame.add(id(winner))
            if isinstance(winner, VoiceTerminal):
                if len(self.voice_grants) < self.voice_slots:
                    winner.has_reservation = True
                    self.voice_grants.append(winner)
            else:
                self.data_grant_queue.append(winner)

    def _voice_phase(self) -> None:
        grants = list(self.voice_grants)
        for index in range(self.voice_slots):
            self.stats.slots_total += 1
            if index < len(grants):
                if grants[index].transmit(self.current_slot, self.stats):
                    self.stats.slots_carrying_payload += 1
                else:
                    self.stats.slots_idle += 1
            else:
                self.stats.slots_idle += 1
            self.current_slot += 1

    def _data_phase(self) -> None:
        for _ in range(self.data_slots):
            self.stats.slots_total += 1
            terminal = None
            while self.data_grant_queue and terminal is None:
                candidate = self.data_grant_queue.popleft()
                if candidate.pending:
                    terminal = candidate
            if terminal is not None:
                terminal.transmit(self.current_slot, self.stats)
                self.stats.slots_carrying_payload += 1
                if terminal.pending:
                    self.data_grant_queue.append(terminal)
            else:
                self.stats.slots_idle += 1
            self.current_slot += 1

    def step_frame(self) -> None:
        frame_start = self.current_slot
        for terminal in self.voice:
            terminal.new_frame(frame_start, self.rng, self.stats)
        self.voice_grants = [terminal for terminal in self.voice_grants
                             if terminal.has_reservation]
        for terminal in self.data:
            terminal.maybe_arrive(frame_start, self.rng, self.stats)
        for terminal in self.voice:
            terminal.drop_expired(self.current_slot, self.stats)
        self._auction_phase()
        self._voice_phase()
        self._data_phase()
        self.frame_index += 1

    def run(self, num_frames: int) -> ProtocolStats:
        for _ in range(num_frames):
            self.step_frame()
        return self.stats
