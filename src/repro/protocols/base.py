"""Shared machinery for the baseline MAC protocol models.

The surveyed protocols (PRMA, D-TDMA, RAMA, DRMA) all divide time into
frames of fixed-size slots and differ in *how a terminal converts a
pending packet into a slot grant*.  These models simulate at slot
granularity (one iteration per slot or per frame), which is the standard
level of abstraction in the original papers' own evaluations.

Terminals come in two flavours, matching the voice/data split those
protocols were designed around:

* **voice terminals** follow a two-state (talk-spurt / silence) Markov
  model and *drop* packets older than a delay bound;
* **data terminals** generate packets by a Bernoulli process per slot and
  queue them indefinitely.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.metrics.stats import SummaryStats


@dataclass
class ProtocolStats:
    """Outcome counters shared by all baseline protocol models."""

    slots_total: int = 0
    slots_carrying_payload: int = 0
    slots_collided: int = 0
    slots_idle: int = 0
    voice_packets_delivered: int = 0
    voice_packets_dropped: int = 0
    data_packets_delivered: int = 0
    data_packets_generated: int = 0
    data_delay_slots: SummaryStats = field(default_factory=SummaryStats)
    voice_access_delay_slots: SummaryStats = field(
        default_factory=SummaryStats)

    def throughput(self) -> float:
        """Fraction of slots that carried a successful payload."""
        return (self.slots_carrying_payload / self.slots_total
                if self.slots_total else 0.0)

    def collision_rate(self) -> float:
        return (self.slots_collided / self.slots_total
                if self.slots_total else 0.0)

    def voice_drop_probability(self) -> float:
        total = self.voice_packets_delivered + self.voice_packets_dropped
        return self.voice_packets_dropped / total if total else 0.0

    def mean_data_delay(self) -> float:
        return self.data_delay_slots.mean

    def summary(self) -> dict:
        return {
            "throughput": self.throughput(),
            "collision_rate": self.collision_rate(),
            "voice_drop_probability": self.voice_drop_probability(),
            "mean_data_delay_slots": self.mean_data_delay(),
        }


class VoiceModel:
    """Two-state talk-spurt/silence voice source.

    During a talk spurt, one voice packet is generated per frame (the
    classic PRMA assumption: speech codec rate matched to one slot per
    frame).  Spurt and silence durations are geometric with the given
    mean number of frames.
    """

    def __init__(self, mean_spurt_frames: float = 25.0,
                 mean_silence_frames: float = 35.0):
        if mean_spurt_frames <= 0 or mean_silence_frames <= 0:
            raise ValueError("mean durations must be positive")
        self.p_end_spurt = 1.0 / mean_spurt_frames
        self.p_start_spurt = 1.0 / mean_silence_frames

    def advance(self, talking: bool, rng: random.Random) -> bool:
        """One frame step of the on/off chain."""
        if talking:
            return rng.random() >= self.p_end_spurt
        return rng.random() < self.p_start_spurt

    @property
    def activity_factor(self) -> float:
        """Stationary probability of being in a talk spurt."""
        up = self.p_start_spurt
        down = self.p_end_spurt
        return up / (up + down)


@dataclass
class Packet:
    """One queued packet at a terminal."""

    created_slot: int


class VoiceTerminal:
    """A voice source with a reservation state and a drop deadline."""

    def __init__(self, terminal_id: int, model: VoiceModel,
                 max_delay_slots: int):
        self.terminal_id = terminal_id
        self.model = model
        self.max_delay_slots = max_delay_slots
        self.talking = False
        self.has_reservation = False
        self.reserved_slot: Optional[int] = None
        self.pending: Deque[Packet] = deque()

    def new_frame(self, frame_start_slot: int, rng: random.Random,
                  stats: ProtocolStats) -> None:
        """Advance the talk-spurt chain and enqueue this frame's packet."""
        self.talking = self.model.advance(self.talking, rng)
        if self.talking:
            self.pending.append(Packet(created_slot=frame_start_slot))
        elif self.has_reservation:
            # Spurt ended: the reservation is released.
            self.has_reservation = False
            self.reserved_slot = None

    def drop_expired(self, current_slot: int,
                     stats: ProtocolStats) -> None:
        while self.pending and (current_slot - self.pending[0].created_slot
                                > self.max_delay_slots):
            self.pending.popleft()
            stats.voice_packets_dropped += 1

    def transmit(self, current_slot: int, stats: ProtocolStats) -> bool:
        """Send the head-of-line packet (assumes the slot is won)."""
        if not self.pending:
            return False
        packet = self.pending.popleft()
        stats.voice_packets_delivered += 1
        stats.voice_access_delay_slots.push(
            current_slot - packet.created_slot)
        return True


class DataTerminal:
    """A best-effort data source with an unbounded queue."""

    def __init__(self, terminal_id: int, arrival_probability: float):
        if not 0.0 <= arrival_probability <= 1.0:
            raise ValueError("arrival_probability must be in [0, 1]")
        self.terminal_id = terminal_id
        self.arrival_probability = arrival_probability
        self.pending: Deque[Packet] = deque()
        self.backoff = 0

    def maybe_arrive(self, current_slot: int, rng: random.Random,
                     stats: ProtocolStats) -> None:
        if rng.random() < self.arrival_probability:
            self.pending.append(Packet(created_slot=current_slot))
            stats.data_packets_generated += 1

    def transmit(self, current_slot: int, stats: ProtocolStats) -> bool:
        if not self.pending:
            return False
        packet = self.pending.popleft()
        stats.data_packets_delivered += 1
        stats.data_delay_slots.push(current_slot - packet.created_slot)
        return True


def resolve_contention(contenders: List, current_slot: int,
                       stats: ProtocolStats) -> Optional[object]:
    """Classic collision-channel semantics for one slot.

    Returns the lone transmitter if exactly one contender transmitted,
    otherwise None (idle or collision), updating the slot counters.
    """
    stats.slots_total += 1
    if not contenders:
        stats.slots_idle += 1
        return None
    if len(contenders) > 1:
        stats.slots_collided += 1
        return None
    return contenders[0]
