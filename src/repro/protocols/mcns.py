"""MCNS / DOCSIS-style cable-modem MAC (the survey's 7th protocol).

The paper devotes a passage to the MCNS Partners' DOCSIS RF interface
and notes the parallels with OSU-MAC: "as we use user ID to identify
mobile subscribers in a cell, MCNS uses the Service ID ... cable modems
in MCNS request bandwidth for data transmission and the cable modem
termination system (CMTS) broadcasts to every cable modem the slot
allocation schedule."

This model captures the DOCSIS upstream bandwidth-allocation loop at MAP
granularity:

* Upstream time is divided into **minislots**; each MAP interval the
  CMTS broadcasts a MAP describing which minislots are *request
  contention* regions and which are *data grants* (per Service ID).
* Modems send bandwidth requests in contention minislots (binary
  exponential backoff on collision, per DOCSIS) or **piggyback** the
  next request on a granted data transmission -- the same
  explicit/implicit duality OSU-MAC uses.
* The CMTS grants data minislots from the request queue (FCFS here).

The shared DNA with OSU-MAC (central scheduler, broadcast schedule,
request/piggyback reservations, contention-region sizing) is why the
paper calls the designs similar; the differences are the lack of
real-time slot guarantees and of the half-duplex constraint.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.sim.rng import RandomStreams
from repro.protocols.base import ProtocolStats, resolve_contention


@dataclass
class _Request:
    sid: int
    minislots: int


class CableModem:
    """One modem: a packet queue plus DOCSIS request/backoff state."""

    def __init__(self, sid: int, arrival_probability: float,
                 packet_minislots: int):
        self.sid = sid
        self.arrival_probability = arrival_probability
        self.packet_minislots = packet_minislots
        self.queue: Deque[int] = deque()  # packet creation MAP indices
        self.request_outstanding = False
        self.backoff_window = 1  # binary exponential, in MAP intervals
        self.backoff_remaining = 0

    def maybe_arrive(self, map_index: int, rng: random.Random,
                     stats: ProtocolStats) -> None:
        if rng.random() < self.arrival_probability:
            self.queue.append(map_index)
            stats.data_packets_generated += 1

    def wants_to_request(self) -> bool:
        return bool(self.queue) and not self.request_outstanding

    def on_collision(self, rng: random.Random) -> None:
        self.backoff_window = min(self.backoff_window * 2, 64)
        self.backoff_remaining = rng.randrange(self.backoff_window)

    def on_request_accepted(self) -> None:
        self.request_outstanding = True
        self.backoff_window = 1
        self.backoff_remaining = 0


class MCNS:
    """MAP-interval simulation of the DOCSIS upstream allocation loop."""

    def __init__(self,
                 num_modems: int,
                 arrival_probability: float = 0.05,
                 minislots_per_map: int = 40,
                 request_region: int = 8,
                 packet_minislots: int = 8,
                 piggyback: bool = True,
                 seed: int = 1):
        if num_modems <= 0:
            raise ValueError("need at least one modem")
        if request_region >= minislots_per_map:
            raise ValueError("request region must leave room for data")
        self.rng = RandomStreams(seed).stream("mcns")
        self.minislots_per_map = minislots_per_map
        self.request_region = request_region
        self.packet_minislots = packet_minislots
        self.piggyback = piggyback
        self.modems: List[CableModem] = [
            CableModem(sid, arrival_probability, packet_minislots)
            for sid in range(num_modems)]
        self.grant_queue: Deque[_Request] = deque()
        self.stats = ProtocolStats()
        self.map_index = 0
        self.requests_sent = 0
        self.requests_piggybacked = 0

    # -- one MAP interval ------------------------------------------------------

    def step_map(self) -> None:
        for modem in self.modems:
            modem.maybe_arrive(self.map_index, self.rng, self.stats)
        self._contention_region()
        self._data_region()
        self.map_index += 1

    def _contention_region(self) -> None:
        """Request minislots: slotted contention with DOCSIS backoff."""
        choices: Dict[int, List[CableModem]] = {}
        for modem in self.modems:
            if not modem.wants_to_request():
                continue
            if modem.backoff_remaining > 0:
                modem.backoff_remaining -= 1
                continue
            slot = self.rng.randrange(self.request_region)
            choices.setdefault(slot, []).append(modem)
            self.requests_sent += 1
        for slot in range(self.request_region):
            winner = resolve_contention(choices.get(slot, []),
                                        self.map_index, self.stats)
            if winner is not None:
                winner.on_request_accepted()
                self.grant_queue.append(_Request(
                    sid=winner.sid, minislots=self.packet_minislots))
                continue
            for modem in choices.get(slot, []) or []:
                if len(choices.get(slot, [])) > 1:
                    modem.on_collision(self.rng)

    def _data_region(self) -> None:
        """Grant data minislots FCFS from the request queue."""
        budget = self.minislots_per_map - self.request_region
        while budget >= self.packet_minislots and self.grant_queue:
            request = self.grant_queue.popleft()
            modem = self.modems[request.sid]
            modem.request_outstanding = False
            self.stats.slots_total += self.packet_minislots
            if modem.queue:
                created = modem.queue.popleft()
                self.stats.data_packets_delivered += 1
                self.stats.data_delay_slots.push(
                    (self.map_index - created) * self.minislots_per_map)
                self.stats.slots_carrying_payload += \
                    self.packet_minislots
                if self.piggyback and modem.queue:
                    # Piggyback the next request on this transmission --
                    # no contention needed (DOCSIS extended headers).
                    modem.request_outstanding = True
                    self.grant_queue.append(_Request(
                        sid=modem.sid,
                        minislots=self.packet_minislots))
                    self.requests_piggybacked += 1
            else:
                self.stats.slots_idle += self.packet_minislots
            budget -= self.packet_minislots
        # Unused data budget is idle air time.
        if budget > 0:
            self.stats.slots_total += budget
            self.stats.slots_idle += budget

    def run(self, num_maps: int) -> ProtocolStats:
        for _ in range(num_maps):
            self.step_map()
        return self.stats

    def piggyback_fraction(self) -> float:
        """Share of requests that rode piggyback (vs contention)."""
        total = self.requests_piggybacked + self.requests_sent
        return self.requests_piggybacked / total if total else 0.0
