"""Dynamic Reservation Multiple Access (DRMA) [Qiu, Li 1996].

Per the paper's survey: DRMA "eliminates the reservation/auction slots in
D-TDMA/RAMA, and uses (if necessary) an available slot as a set of
reservation slots.  Efficiency is achieved by dynamically assigning
reservation slots, rather than using fixed reservation slots."

Model: every frame consists only of information slots.  Slots with
standing voice reservations carry voice.  Of the remaining slots, those
needed to serve granted data packets carry data; if unreserved capacity
remains *and* terminals have unserved demand, the first leftover slot is
converted into a burst of reservation minislots (slotted ALOHA) for that
frame.  When every slot is busy no bandwidth is wasted on reservations --
the efficiency claim the survey highlights.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.protocols.base import (
    DataTerminal,
    ProtocolStats,
    VoiceModel,
    VoiceTerminal,
    resolve_contention,
)
from repro.sim.rng import RandomStreams


class DRMA:
    """Frame-level DRMA with on-demand reservation slot conversion."""

    def __init__(self,
                 num_voice: int,
                 num_data: int,
                 slots_per_frame: int = 20,
                 minislots_per_slot: int = 4,
                 data_arrival_probability: float = 0.01,
                 retransmission_probability: float = 0.5,
                 max_delay_frames: int = 2,
                 voice_model: Optional[VoiceModel] = None,
                 seed: int = 1):
        self.rng = RandomStreams(seed).stream("drma")
        self.slots_per_frame = slots_per_frame
        self.minislots_per_slot = minislots_per_slot
        self.retransmission_probability = retransmission_probability
        model = voice_model or VoiceModel()
        self.voice: List[VoiceTerminal] = [
            VoiceTerminal(index, model,
                          max_delay_slots=max_delay_frames
                          * slots_per_frame)
            for index in range(num_voice)]
        self.data: List[DataTerminal] = [
            DataTerminal(index, data_arrival_probability)
            for index in range(num_data)]
        self.voice_grants: List[VoiceTerminal] = []
        self.data_grant_queue: Deque[DataTerminal] = deque()
        self.stats = ProtocolStats()
        self.current_slot = 0
        self.frame_index = 0

    def _wanting_reservation(self) -> List:
        wanting = [terminal for terminal in self.voice
                   if terminal.pending and not terminal.has_reservation]
        wanting += [terminal for terminal in self.data
                    if terminal.pending
                    and terminal not in self.data_grant_queue]
        return wanting

    def _reservation_burst(self) -> None:
        """One information slot converted into ALOHA minislots."""
        requesters = [terminal for terminal in self._wanting_reservation()
                      if self.rng.random()
                      < self.retransmission_probability]
        choices = {}
        for terminal in requesters:
            choices.setdefault(
                self.rng.randrange(self.minislots_per_slot),
                []).append(terminal)
        # The whole converted slot counts as one channel slot.
        winners = []
        mini_stats = ProtocolStats()
        for minislot in range(self.minislots_per_slot):
            winner = resolve_contention(choices.get(minislot, []),
                                        self.current_slot, mini_stats)
            if winner is not None:
                winners.append(winner)
        self.stats.slots_total += 1
        self.stats.slots_idle += 1  # carries control, not payload
        for winner in winners:
            if isinstance(winner, VoiceTerminal):
                if len(self.voice_grants) < self.slots_per_frame:
                    winner.has_reservation = True
                    self.voice_grants.append(winner)
            else:
                self.data_grant_queue.append(winner)
        self.current_slot += 1

    def step_frame(self) -> None:
        frame_start = self.current_slot
        for terminal in self.voice:
            terminal.new_frame(frame_start, self.rng, self.stats)
        self.voice_grants = [terminal for terminal in self.voice_grants
                             if terminal.has_reservation]
        for terminal in self.data:
            terminal.maybe_arrive(frame_start, self.rng, self.stats)
        for terminal in self.voice:
            terminal.drop_expired(self.current_slot, self.stats)

        slots_left = self.slots_per_frame

        # Voice reservations first (they own their slots).
        for terminal in list(self.voice_grants)[:slots_left]:
            self.stats.slots_total += 1
            if terminal.transmit(self.current_slot, self.stats):
                self.stats.slots_carrying_payload += 1
            else:
                self.stats.slots_idle += 1
            self.current_slot += 1
            slots_left -= 1

        # On-demand reservation conversion: only when capacity is left
        # over and somebody actually needs a reservation.
        if slots_left > 0 and self._wanting_reservation():
            self._reservation_burst()
            slots_left -= 1

        # Granted data fills the remaining slots.
        while slots_left > 0:
            self.stats.slots_total += 1
            terminal = None
            while self.data_grant_queue and terminal is None:
                candidate = self.data_grant_queue.popleft()
                if candidate.pending:
                    terminal = candidate
            if terminal is not None:
                terminal.transmit(self.current_slot, self.stats)
                self.stats.slots_carrying_payload += 1
                if terminal.pending:
                    self.data_grant_queue.append(terminal)
            else:
                self.stats.slots_idle += 1
            self.current_slot += 1
            slots_left -= 1
        self.frame_index += 1

    def run(self, num_frames: int) -> ProtocolStats:
        for _ in range(num_frames):
            self.step_frame()
        return self.stats
