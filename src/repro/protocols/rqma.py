"""Remote-Queueing Multiple Access (RQMA) [Figueira, Pasquale 1998].

Per the paper's survey (Fig. 7): an RQMA frame has three fields --
``b`` backlog slots, ``r`` request slots (with ack subfields), and ``t``
transmission slots.

* A mobile host sends a request (slotted ALOHA) to establish a real-time
  session or to send best-effort packets; the base station acks it.
* A real-time session holder uses its assigned *backlog slot* to tell
  the base station about newly arrived packets *and their deadlines*
  (hosts compute deadlines themselves -- the feature the paper
  criticises).
* The base station schedules the transmission slots by deadline
  (earliest-deadline-first), best-effort packets filling leftovers.
* RQMA's "most desirable feature": a pre-established *real-time
  retransmission session* re-sends time-critical packets that hit a
  channel error, deadline permitting.

The model exposes that feature as ``rt_retransmission`` so its effect on
deadline misses under a lossy channel can be measured (experiment X3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.protocols.base import ProtocolStats, resolve_contention
from repro.sim.rng import RandomStreams


@dataclass
class RTPacket:
    created_slot: int
    deadline_slot: int
    retries: int = 0


class RealTimeSession:
    """A periodic real-time source with per-packet deadlines."""

    def __init__(self, session_id: int, period_frames: int,
                 deadline_frames: int):
        self.session_id = session_id
        self.period_frames = period_frames
        self.deadline_frames = deadline_frames
        self.established = False
        self.backlog: Deque[RTPacket] = deque()
        self._countdown = session_id % period_frames  # staggered phases

    def new_frame(self, frame_start_slot: int, slots_per_frame: int
                  ) -> None:
        if not self.established:
            return
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.period_frames
            deadline = frame_start_slot \
                + self.deadline_frames * slots_per_frame
            self.backlog.append(RTPacket(created_slot=frame_start_slot,
                                         deadline_slot=deadline))


class BestEffortHost:
    """A best-effort source: one pending-queue, request-then-send."""

    def __init__(self, host_id: int, arrival_probability: float):
        self.host_id = host_id
        self.arrival_probability = arrival_probability
        self.pending = 0
        self.granted = 0


@dataclass
class RqmaStats(ProtocolStats):
    rt_packets_delivered: int = 0
    rt_deadline_misses: int = 0
    rt_retransmissions: int = 0

    def rt_miss_rate(self) -> float:
        total = self.rt_packets_delivered + self.rt_deadline_misses
        return self.rt_deadline_misses / total if total else 0.0


class RQMA:
    """Frame-level RQMA with EDF transmission scheduling."""

    def __init__(self,
                 num_rt_sessions: int,
                 num_best_effort: int,
                 backlog_slots: int = 4,
                 request_slots: int = 2,
                 transmission_slots: int = 12,
                 rt_period_frames: int = 2,
                 rt_deadline_frames: int = 2,
                 be_arrival_probability: float = 0.05,
                 slot_error_probability: float = 0.0,
                 rt_retransmission: bool = True,
                 request_persistence: float = 0.5,
                 seed: int = 1):
        self.rng = RandomStreams(seed).stream("rqma")
        self.backlog_slots = backlog_slots
        self.request_slots = request_slots
        self.transmission_slots = transmission_slots
        self.slots_per_frame = (backlog_slots + request_slots
                                + transmission_slots)
        self.slot_error_probability = slot_error_probability
        self.rt_retransmission = rt_retransmission
        self.request_persistence = request_persistence
        self.sessions: List[RealTimeSession] = [
            RealTimeSession(index, rt_period_frames, rt_deadline_frames)
            for index in range(num_rt_sessions)]
        self.hosts: List[BestEffortHost] = [
            BestEffortHost(index, be_arrival_probability)
            for index in range(num_best_effort)]
        self.stats = RqmaStats()
        self.current_slot = 0
        self.frame_index = 0

    # -- per-frame phases -------------------------------------------------

    def _request_phase(self) -> None:
        """Slotted-ALOHA requests: session setup + best-effort asks."""
        requesters: List[object] = [
            session for session in self.sessions
            if not session.established]
        requesters += [host for host in self.hosts
                       if host.pending > host.granted]
        choices = {}
        for requester in requesters:
            if self.rng.random() < self.request_persistence:
                choices.setdefault(
                    self.rng.randrange(self.request_slots),
                    []).append(requester)
        for slot in range(self.request_slots):
            winner = resolve_contention(choices.get(slot, []),
                                        self.current_slot, self.stats)
            self.current_slot += 1
            if winner is None:
                continue
            if isinstance(winner, RealTimeSession):
                winner.established = True
            else:
                winner.granted = winner.pending

    def _backlog_phase(self) -> None:
        """Established sessions report arrivals+deadlines (contention-free).

        Backlog slots are assigned by the base station, so they never
        collide; they are control overhead (no payload)."""
        for _ in range(self.backlog_slots):
            self.stats.slots_total += 1
            self.stats.slots_idle += 1
            self.current_slot += 1

    def _drop_expired(self) -> None:
        for session in self.sessions:
            while session.backlog and (session.backlog[0].deadline_slot
                                       < self.current_slot):
                session.backlog.popleft()
                self.stats.rt_deadline_misses += 1

    def _transmission_phase(self) -> None:
        for _ in range(self.transmission_slots):
            self._drop_expired()
            self.stats.slots_total += 1
            packet_owner = self._pick_edf()
            if packet_owner is not None:
                session, packet = packet_owner
                errored = self.rng.random() < self.slot_error_probability
                if not errored:
                    session.backlog.popleft()
                    self.stats.rt_packets_delivered += 1
                    self.stats.slots_carrying_payload += 1
                elif self.rt_retransmission:
                    # Stays queued: the retransmission session re-sends
                    # it in a later slot, deadline permitting.
                    packet.retries += 1
                    self.stats.rt_retransmissions += 1
                    self.stats.slots_idle += 1
                else:
                    # No retransmission session: the errored packet is
                    # gone and will count as a miss.
                    session.backlog.popleft()
                    self.stats.rt_deadline_misses += 1
                    self.stats.slots_idle += 1
            else:
                host = self._pick_best_effort()
                if host is not None:
                    errored = (self.rng.random()
                               < self.slot_error_probability)
                    host.granted -= 1
                    host.pending -= 1
                    if not errored:
                        self.stats.data_packets_delivered += 1
                        self.stats.slots_carrying_payload += 1
                    else:
                        self.stats.slots_idle += 1
                else:
                    self.stats.slots_idle += 1
            self.current_slot += 1

    def _pick_edf(self) -> Optional["tuple[RealTimeSession, RTPacket]"]:
        best = None
        for session in self.sessions:
            if not session.backlog:
                continue
            packet = session.backlog[0]
            if best is None or packet.deadline_slot \
                    < best[1].deadline_slot:
                best = (session, packet)
        return best

    def _pick_best_effort(self) -> Optional[BestEffortHost]:
        candidates = [host for host in self.hosts if host.granted > 0]
        return candidates[0] if candidates else None

    def step_frame(self) -> None:
        frame_start = self.current_slot
        for session in self.sessions:
            session.new_frame(frame_start, self.slots_per_frame)
        for host in self.hosts:
            if self.rng.random() < host.arrival_probability:
                host.pending += 1
                self.stats.data_packets_generated += 1
        self._request_phase()
        self._backlog_phase()
        self._transmission_phase()
        self.frame_index += 1

    def run(self, num_frames: int) -> RqmaStats:
        for _ in range(num_frames):
            self.step_frame()
        return self.stats
