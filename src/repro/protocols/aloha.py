"""Slotted ALOHA -- the contention primitive the survey builds on.

Every terminal with a pending packet transmits in the current slot with
probability ``p``; exactly one transmitter wins the slot, two or more
collide.  The classic result: peak channel throughput ``1/e ~ 0.368`` at
offered load G = 1, with throughput ``G * e^-G``.

D-TDMA uses exactly this discipline inside its reservation minislots, so
the model doubles as a component test bed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.protocols.base import DataTerminal, ProtocolStats, \
    resolve_contention
from repro.sim.rng import RandomStreams


class SlottedAloha:
    """p-persistent slotted ALOHA over a population of data terminals."""

    def __init__(self, num_terminals: int,
                 arrival_probability: float,
                 transmit_probability: float = 0.2,
                 seed: int = 1):
        if num_terminals <= 0:
            raise ValueError("need at least one terminal")
        if not 0.0 < transmit_probability <= 1.0:
            raise ValueError("transmit_probability must be in (0, 1]")
        self.rng = RandomStreams(seed).stream("aloha")
        self.transmit_probability = transmit_probability
        self.terminals: List[DataTerminal] = [
            DataTerminal(index, arrival_probability)
            for index in range(num_terminals)]
        self.stats = ProtocolStats()
        self.current_slot = 0

    def step(self) -> Optional[DataTerminal]:
        """Simulate one slot; returns the winner if any."""
        slot = self.current_slot
        for terminal in self.terminals:
            terminal.maybe_arrive(slot, self.rng, self.stats)
        contenders = [terminal for terminal in self.terminals
                      if terminal.pending
                      and self.rng.random() < self.transmit_probability]
        winner = resolve_contention(contenders, slot, self.stats)
        if winner is not None:
            winner.transmit(slot, self.stats)
            self.stats.slots_carrying_payload += 1
        self.current_slot += 1
        return winner

    def run(self, num_slots: int) -> ProtocolStats:
        for _ in range(num_slots):
            self.step()
        return self.stats
