"""Floor Acquisition Multiple Access (FAMA) [Fullmer, Garcia-Luna-Aceves 1995].

Per the paper's survey: FAMA "basically applies the carrier sense
multiple access with collision detection mechanism to the control and
jamming packets sent from mobile hosts to the base station, and can be
regarded as a CSMA/CD scheme in a wireless LAN."

Model (mini-slot granularity):

* The channel is sensed by everyone.  When it is idle, a terminal with a
  pending packet transmits a short RTS (control packet) with persistence
  probability ``p``.
* Exactly one RTS acquires the *floor*: the base station answers with a
  CTS long enough that every terminal hears who owns the channel, and
  the winner transmits its data packet (``data_minislots`` long) without
  further contention.
* Colliding RTSes are detected (collision detection / jamming) and cost
  only the control mini-slot, not a whole packet time -- the property
  that separates FAMA from pure ALOHA.

Throughput is counted in mini-slots carrying payload over total
mini-slots, so the RTS/CTS overhead is visible.
"""

from __future__ import annotations

from typing import List, Optional

from repro.protocols.base import DataTerminal, ProtocolStats
from repro.sim.rng import RandomStreams


class FAMA:
    """CSMA/CD-style floor acquisition over a collision channel."""

    IDLE, FLOOR = "idle", "floor"

    def __init__(self,
                 num_terminals: int,
                 arrival_probability: float,
                 persistence: float = 0.2,
                 data_minislots: int = 10,
                 cts_minislots: int = 1,
                 seed: int = 1):
        if num_terminals <= 0:
            raise ValueError("need at least one terminal")
        if not 0.0 < persistence <= 1.0:
            raise ValueError("persistence must be in (0, 1]")
        if data_minislots <= 0:
            raise ValueError("data_minislots must be positive")
        self.rng = RandomStreams(seed).stream("fama")
        self.persistence = persistence
        self.data_minislots = data_minislots
        self.cts_minislots = cts_minislots
        self.terminals: List[DataTerminal] = [
            DataTerminal(index, arrival_probability)
            for index in range(num_terminals)]
        self.stats = ProtocolStats()
        self.current_slot = 0
        self.state = self.IDLE
        self._floor_owner: Optional[DataTerminal] = None
        self._floor_remaining = 0
        self.rts_sent = 0
        self.rts_collisions = 0

    def step(self) -> None:
        """One control mini-slot of channel time."""
        slot = self.current_slot
        for terminal in self.terminals:
            terminal.maybe_arrive(slot, self.rng, self.stats)

        if self.state == self.FLOOR:
            self.stats.slots_total += 1
            self._floor_remaining -= 1
            if self._floor_remaining == 0:
                # Data transfer finished in this mini-slot.
                self._floor_owner.transmit(slot, self.stats)
                self.stats.slots_carrying_payload += self.data_minislots
                self.state = self.IDLE
                self._floor_owner = None
            self.current_slot += 1
            return

        # Idle channel: carrier sensing says "go", terminals persist.
        contenders = [terminal for terminal in self.terminals
                      if terminal.pending
                      and self.rng.random() < self.persistence]
        self.stats.slots_total += 1
        if not contenders:
            self.stats.slots_idle += 1
        elif len(contenders) == 1:
            # RTS heard alone -> CTS -> floor acquired.
            self.rts_sent += 1
            self.state = self.FLOOR
            self._floor_owner = contenders[0]
            # CTS mini-slots + the data packet itself.
            self._floor_remaining = self.cts_minislots \
                + self.data_minislots
        else:
            # Collision among RTSes: detected within the mini-slot.
            self.rts_sent += len(contenders)
            self.rts_collisions += 1
            self.stats.slots_collided += 1
        self.current_slot += 1

    def run(self, num_minislots: int) -> ProtocolStats:
        for _ in range(num_minislots):
            self.step()
        return self.stats

    def control_overhead(self) -> float:
        """Mini-slots spent on RTS/CTS per delivered data packet."""
        if not self.stats.data_packets_delivered:
            return 0.0
        control = (self.rts_sent + self.rts_collisions
                   + self.stats.data_packets_delivered
                   * self.cts_minislots)
        return control / self.stats.data_packets_delivered
