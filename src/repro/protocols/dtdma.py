"""Dynamic TDMA (D-TDMA) [Wilson, Ganesh, Joseph, Raychaudhuri 1993].

Fig. 5(2) of the paper: each frame is composed of ``r`` reservation
minislots followed by voice slots and data slots.

* Terminals send reservation requests in a randomly chosen reservation
  minislot (slotted ALOHA).  Losers retry next frame with a
  retransmission probability.
* A voice terminal that wins a reservation keeps its voice slot in
  subsequent frames until the talk spurt ends.
* Data terminals are granted one data slot at a time (in the same frame
  as the successful reservation, queue permitting).

The base station (implicit here) broadcasts the final schedule at the
end of the reservation period.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.protocols.base import (
    DataTerminal,
    ProtocolStats,
    VoiceModel,
    VoiceTerminal,
    resolve_contention,
)
from repro.sim.rng import RandomStreams


class DynamicTDMA:
    """Frame-level D-TDMA with ALOHA reservation minislots."""

    def __init__(self,
                 num_voice: int,
                 num_data: int,
                 reservation_slots: int = 4,
                 voice_slots: int = 10,
                 data_slots: int = 6,
                 data_arrival_probability: float = 0.01,
                 retransmission_probability: float = 0.5,
                 max_delay_frames: int = 2,
                 voice_model: Optional[VoiceModel] = None,
                 seed: int = 1):
        self.rng = RandomStreams(seed).stream("dtdma")
        self.reservation_slots = reservation_slots
        self.voice_slots = voice_slots
        self.data_slots = data_slots
        self.retransmission_probability = retransmission_probability
        self.slots_per_frame = reservation_slots + voice_slots + data_slots
        model = voice_model or VoiceModel()
        self.voice: List[VoiceTerminal] = [
            VoiceTerminal(index, model,
                          max_delay_slots=max_delay_frames
                          * self.slots_per_frame)
            for index in range(num_voice)]
        self.data: List[DataTerminal] = [
            DataTerminal(index, data_arrival_probability)
            for index in range(num_data)]
        #: Voice terminals currently holding a voice slot, in slot order.
        self.voice_grants: List[VoiceTerminal] = []
        #: Data terminals with an accepted reservation, FIFO served.
        self.data_grant_queue: Deque[DataTerminal] = deque()
        self.stats = ProtocolStats()
        self.current_slot = 0
        self.frame_index = 0

    def _reservation_phase(self) -> None:
        """r ALOHA minislots; winners enter the grant structures."""
        voice_wanting = [terminal for terminal in self.voice
                         if terminal.pending
                         and not terminal.has_reservation]
        data_wanting = [terminal for terminal in self.data
                        if terminal.pending
                        and terminal not in self.data_grant_queue]
        requesters = []
        for terminal in voice_wanting + data_wanting:
            if self.rng.random() < self.retransmission_probability:
                requesters.append(terminal)
        choices = {}
        for terminal in requesters:
            slot = self.rng.randrange(self.reservation_slots)
            choices.setdefault(slot, []).append(terminal)
        for minislot in range(self.reservation_slots):
            winner = resolve_contention(choices.get(minislot, []),
                                        self.current_slot, self.stats)
            self.current_slot += 1
            if winner is None:
                continue
            if isinstance(winner, VoiceTerminal):
                if len(self.voice_grants) < self.voice_slots:
                    winner.has_reservation = True
                    self.voice_grants.append(winner)
            else:
                self.data_grant_queue.append(winner)

    def _voice_phase(self) -> None:
        grants = list(self.voice_grants)
        for index in range(self.voice_slots):
            self.stats.slots_total += 1
            if index < len(grants):
                terminal = grants[index]
                if terminal.transmit(self.current_slot, self.stats):
                    self.stats.slots_carrying_payload += 1
                else:
                    self.stats.slots_idle += 1
            else:
                self.stats.slots_idle += 1
            self.current_slot += 1

    def _data_phase(self) -> None:
        for _ in range(self.data_slots):
            self.stats.slots_total += 1
            terminal = None
            while self.data_grant_queue and terminal is None:
                candidate = self.data_grant_queue.popleft()
                if candidate.pending:
                    terminal = candidate
            if terminal is not None:
                terminal.transmit(self.current_slot, self.stats)
                self.stats.slots_carrying_payload += 1
                if terminal.pending:
                    # One slot per reservation: re-enter the grant queue
                    # (D-TDMA grants data slots one at a time).
                    self.data_grant_queue.append(terminal)
            else:
                self.stats.slots_idle += 1
            self.current_slot += 1

    def step_frame(self) -> None:
        frame_start = self.current_slot
        for terminal in self.voice:
            terminal.new_frame(frame_start, self.rng, self.stats)
        self.voice_grants = [terminal for terminal in self.voice_grants
                             if terminal.has_reservation]
        for terminal in self.data:
            terminal.maybe_arrive(frame_start, self.rng, self.stats)
        for terminal in self.voice:
            terminal.drop_expired(self.current_slot, self.stats)
        self._reservation_phase()
        self._voice_phase()
        self._data_phase()
        self.frame_index += 1

    def run(self, num_frames: int) -> ProtocolStats:
        for _ in range(num_frames):
            self.step_frame()
        return self.stats
