"""Supervision: pacing workers, heartbeat watchdog, clean lifecycle.

One worker thread per cell runs the pace loop: step a cycle, stamp the
heartbeat, sleep off any surplus until the next scheduled boundary, and
feed the accumulated lag to the cell's admission controller.  The
supervisor's main loop is the watchdog: a cell whose heartbeat goes
stale past ``stall_timeout_s`` is *cancelled* (threads cannot be
killed; the flag makes the old worker provably journal-silent) and a
fresh :class:`CellService` resumes in-process from the journal -- the
pidfile lock permits same-process takeover.

Shutdown discipline: SIGTERM/SIGINT (or ``max_cycles``/``duration_s``)
set the stop event; each worker finishes the cycle in flight, writes a
final snapshot plus a clean-shutdown event, and releases its journal
lock.  A SIGKILL gets none of that -- which is exactly what the
journal's per-cycle snapshots and torn-tail-tolerant loader exist for.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional

from repro.core.config import CellConfig
from repro.obs.registry import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.service import (
    FAILED,
    RUNNING,
    STOPPED,
    Cancelled,
    CellService,
)

__all__ = ["Supervisor"]

#: Watchdog poll period; also the slice for interruptible sleeps.
_TICK_S = 0.05


class Supervisor:
    """Run ``serve_config.cells`` cells until stopped, signal, or done."""

    def __init__(self, serve_config: ServeConfig,
                 cell_config: CellConfig,
                 registry: Optional[MetricsRegistry] = None):
        self.serve_config = serve_config
        self.cell_config = cell_config
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=True)
        self.cells: Dict[str, CellService] = {}
        self.restarts: Dict[str, int] = {}
        self.stop_event = threading.Event()
        self.started_at = time.monotonic()
        self._threads: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------

    def _cell_config_for(self, index: int) -> CellConfig:
        # Independent cells get decorrelated seeds; everything else is
        # shared so the journal digest stays a pure function of index.
        return replace(self.cell_config,
                       seed=self.cell_config.seed + index)

    def _spawn(self, name: str, index: int, resume: bool,
               reason: Optional[str] = None) -> CellService:
        cell = CellService(name, self._cell_config_for(index),
                           self.serve_config, registry=self.registry)
        thread = threading.Thread(
            target=self._worker, args=(cell, resume, reason),
            name=f"serve-{name}", daemon=True)
        with self._lock:
            self.cells[name] = cell
            self._threads[name] = thread
        thread.start()
        return cell

    def start(self, resume: bool = False) -> None:
        self.started_at = time.monotonic()
        for index in range(self.serve_config.cells):
            name = f"cell{index}"
            self.restarts.setdefault(name, 0)
            self._spawn(name, index, resume)

    # -- the worker pace loop ----------------------------------------------

    def _worker(self, cell: CellService, resume: bool,
                reason: Optional[str]) -> None:
        try:
            cell.start(resume=resume)
            if reason:
                cell.journal.append_event(reason, cell.cycle,
                                          restarts=self.restarts.get(
                                              cell.name, 0))
        except Exception as exc:  # noqa: BLE001 - worker boundary
            cell.error = f"{type(exc).__name__}: {exc}"
            cell.state = FAILED
            try:
                cell.journal.close()
            except OSError:
                pass
            return
        period = self.serve_config.cycle_period_s
        next_due = time.monotonic() + period
        try:
            while not self.stop_event.is_set():
                if cell.cancelled.is_set():
                    raise Cancelled()
                max_cycles = self.serve_config.max_cycles
                if max_cycles is not None and cell.cycle >= max_cycles:
                    break
                self._maybe_stall(cell)
                cell.step_cycle()
                cell.heartbeat = time.monotonic()
                if period > 0:
                    now = time.monotonic()
                    cell.note_lag(now - next_due)
                    if next_due > now:
                        self.stop_event.wait(next_due - now)
                    next_due += period
                else:
                    cell.note_lag(0.0)
        except Cancelled:
            # A replacement service owns the journal tail; this thread
            # must fall off the edge without another write or close.
            return
        except Exception as exc:  # noqa: BLE001 - worker boundary
            cell.error = f"{type(exc).__name__}: {exc}"
            cell.state = FAILED
            try:
                cell.journal.append_event("failed", cell.cycle,
                                          error=cell.error)
                cell.journal.close()
            except OSError:
                pass
            return
        # Graceful drain: the in-flight cycle above has completed.
        cell.shutdown(clean=True)

    def _maybe_stall(self, cell: CellService) -> None:
        """Honor the fault-injection stall hook (heartbeat frozen)."""
        seconds = cell.take_stall()
        if seconds <= 0:
            return
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            if cell.cancelled.is_set() or self.stop_event.is_set():
                return
            time.sleep(_TICK_S)

    # -- the watchdog ------------------------------------------------------

    def _watchdog_tick(self) -> None:
        now = time.monotonic()
        with self._lock:
            snapshot = list(self.cells.items())
        for name, cell in snapshot:
            if cell.state != RUNNING or cell.cancelled.is_set():
                continue
            if now - cell.heartbeat <= self.serve_config.stall_timeout_s:
                continue
            self._restart(name, cell)

    def _restart(self, name: str, stalled: CellService) -> None:
        self.restarts[name] = self.restarts.get(name, 0) + 1
        self.registry.counter(
            "osu_serve_watchdog_restarts_total",
            "Stalled cells restarted from their journal",
            ("cell",)).labels(name).inc()
        stalled.cancel()
        if self.restarts[name] > self.serve_config.max_restarts:
            stalled.state = FAILED
            stalled.error = (
                f"stalled beyond max_restarts="
                f"{self.serve_config.max_restarts}")
            return
        index = int(name.removeprefix("cell"))
        self._spawn(name, index, resume=True,
                    reason="watchdog_restart")

    # -- lifecycle ---------------------------------------------------------

    def request_shutdown(self) -> None:
        self.stop_event.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT drain in-flight cycles then checkpoint."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum,
                          lambda _sig, _frm: self.request_shutdown())

    @property
    def ready(self) -> bool:
        with self._lock:
            cells = list(self.cells.values())
        return bool(cells) and all(cell.ready for cell in cells)

    @property
    def done(self) -> bool:
        with self._lock:
            threads = list(self._threads.values())
        return bool(threads) and \
            not any(thread.is_alive() for thread in threads)

    def run(self) -> int:
        """Watchdog loop until every worker exits; 0 iff all clean."""
        duration = self.serve_config.duration_s
        while not self.done:
            self.stop_event.wait(_TICK_S)
            if duration is not None and \
                    time.monotonic() - self.started_at >= duration:
                self.request_shutdown()
            if not self.stop_event.is_set():
                self._watchdog_tick()
            self._publish_health()
        self._publish_health()
        with self._lock:
            cells = list(self.cells.values())
        return 0 if all(cell.state == STOPPED for cell in cells) else 1

    def join(self, timeout: Optional[float] = None) -> None:
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._lock:
            threads = list(self._threads.values())
        for thread in threads:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            thread.join(remaining)

    def _publish_health(self) -> None:
        with self._lock:
            cells = list(self.cells.items())
        for name, cell in cells:
            self.registry.gauge(
                "osu_serve_ready", "1 while the cell is running",
                ("cell",)).labels(name).set(
                    1.0 if cell.ready else 0.0)

    # -- status ------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        with self._lock:
            cells = list(self.cells.values())
        statuses: List[Dict[str, object]] = \
            [cell.status() for cell in cells]
        for entry in statuses:
            entry["watchdog_restarts"] = \
                self.restarts.get(str(entry["name"]), 0)
        return {
            "name": self.serve_config.name,
            "ready": self.ready,
            "stopping": self.stop_event.is_set(),
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "cells": statuses,
        }
