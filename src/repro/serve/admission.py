"""Admission control: degrade gracefully instead of falling over.

The supervisor measures *cycle-processing lag* -- how far (in real
seconds) a cell's worker is behind its scaled-time pacing schedule.
Sustained lag means the host cannot simulate cycles as fast as the
service promised to serve them; the correct response is to shed load,
not to silently stretch time or crash.

:class:`AdmissionController` is a small hysteresis thermostat over that
lag signal.  While degraded, the service (a) rejects new subscriber
joins at the control plane with 503, and (b) downgrades non-GPS traffic
by scaling the data sources' Poisson rates by ``degrade_factor`` --
GPS reporting, the paper's hard-deadline service, is never throttled.
Transitions are applied at cycle boundaries and journaled as control
ops, so a replayed resume reproduces them deterministically.
"""

from __future__ import annotations

from typing import Optional


class AdmissionController:
    """Hysteresis over the lag signal: enter late, leave early."""

    def __init__(self, lag_budget_s: float, lag_recover_s: float):
        if lag_budget_s <= 0:
            raise ValueError("lag_budget_s must be positive")
        if not 0 <= lag_recover_s <= lag_budget_s:
            raise ValueError("lag_recover_s must be in [0, budget]")
        self.lag_budget_s = lag_budget_s
        self.lag_recover_s = lag_recover_s
        self.degraded = False
        self.transitions = 0
        self.worst_lag_s = 0.0

    def update(self, lag_s: float) -> Optional[bool]:
        """Feed one lag sample; returns the new mode on a transition.

        ``True`` = enter degraded, ``False`` = exit, ``None`` = no
        change.  Negative lag (ahead of schedule) counts as zero.
        """
        lag_s = max(0.0, lag_s)
        if lag_s > self.worst_lag_s:
            self.worst_lag_s = lag_s
        if not self.degraded and lag_s > self.lag_budget_s:
            self.degraded = True
            self.transitions += 1
            return True
        if self.degraded and lag_s < self.lag_recover_s:
            self.degraded = False
            self.transitions += 1
            return False
        return None
