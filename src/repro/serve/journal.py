"""Cycle-granular service journals: crash-safe state for ``repro serve``.

A live cell's state is a pure function of its :class:`CellConfig`, its
seed, and the ordered control operations applied at cycle boundaries
(generator-based simulator processes cannot be pickled, so there is no
such thing as a byte-level snapshot).  The service journal therefore
records exactly that function's inputs, append-only, one JSON line per
record:

``header``
    Written once at creation: schema tag, the cell config (canonical
    form + content digest) and the serve parameters.  Resume refuses a
    journal whose config digest differs from the service's own.
``control``
    One applied control operation (load dial, join, leave, fault
    injection, degraded-mode transition), stamped with the cycle it was
    applied *before*.  Replaying the ops at the same cycles rebuilds
    bit-identical simulator state.
``snapshot``
    Periodic (default: every cycle) verification record: the cycle
    count plus the simulation's cumulative counters.  Resume replays to
    the last snapshot and asserts exact counter equality -- a
    determinism audit, and the guarantee that exported counters stay
    monotonic across a SIGKILL/restart boundary.
``event``
    Operational breadcrumbs (resume, watchdog restart, clean shutdown);
    never replayed.

Durability and exclusivity reuse the sweep-journal primitives
(:mod:`repro.engine.checkpoint`): the first record fsyncs the file and
its directory entry, every record is flushed, a torn tail from a
mid-write SIGKILL is skipped on load, and a :class:`JournalLock`
pidfile forbids two live processes from resuming the same journal.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO

from repro.engine.checkpoint import (
    JournalLock,
    JournalLockedError,
    default_journal_dir,
    fsync_directory,
)

__all__ = ["SERVE_JOURNAL_SCHEMA", "JournalLockedError",
           "ServiceJournal", "ServiceLog"]

SERVE_JOURNAL_SCHEMA = "repro/serve-journal@1"


@dataclass
class ServiceLog:
    """Everything :meth:`ServiceJournal.load` recovers from disk."""

    header: Optional[Dict[str, Any]] = None
    #: Applied control ops in append order; each carries ``cycle``.
    ops: List[Dict[str, Any]] = field(default_factory=list)
    #: The last snapshot record (None when killed before the first).
    snapshot: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: True when the journal ends in a clean-shutdown event.
    clean_shutdown: bool = False

    @property
    def snapshot_cycle(self) -> int:
        return int(self.snapshot["cycle"]) if self.snapshot else 0

    @property
    def resume_cycle(self) -> int:
        """Last cycle the journal fully determines the state at.

        Ops land in the journal *before* their cycle is simulated, so
        an op stamped past the last snapshot still pins the state at
        its own cycle boundary -- replay can safely run that far.
        """
        last_op = max((int(op["cycle"]) for op in self.ops), default=0)
        return max(self.snapshot_cycle, last_op)


class ServiceJournal:
    """Append-only journal for one supervised cell."""

    def __init__(self, name: str, root: Optional[str] = None):
        self.root = root or default_journal_dir()
        safe = "".join(ch if ch.isalnum() or ch in "-_" else "-"
                       for ch in name)
        self.path = os.path.join(self.root, f"{safe}.serve.jsonl")
        self.lock = JournalLock(self.path + ".lock")
        self._handle: Optional[TextIO] = None
        self._dir_synced = False

    # -- lifecycle --------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def acquire(self) -> None:
        """Take the pidfile lock; raises :class:`JournalLockedError`."""
        self.lock.acquire()

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
        self.lock.release()

    def discard(self) -> None:
        """Delete the journal (a fresh service restarts the name)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def reset(self) -> None:
        """Truncate an old journal while keeping the lock held."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self._dir_synced = False

    # -- writing ----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            os.makedirs(self.root, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if not self._dir_synced:
            # First record: make the file *and* its directory entry
            # durable, so a kill right after creation cannot leave a
            # resumable service pointing at an unlisted file.
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass
            fsync_directory(self.root)
            self._dir_synced = True

    def write_header(self, config_digest: str,
                     config: Any, serve: Any) -> None:
        self._append({"kind": "header",
                      "schema": SERVE_JOURNAL_SCHEMA,
                      "config_sha256": config_digest,
                      "config": config,
                      "serve": serve})

    def append_control(self, cycle: int, op: Dict[str, Any]) -> None:
        self._append({"kind": "control", "cycle": cycle, "op": op})

    def append_snapshot(self, cycle: int,
                        counters: Dict[str, Any],
                        serve_counters: Dict[str, Any]) -> None:
        self._append({"kind": "snapshot", "cycle": cycle,
                      "counters": counters, "serve": serve_counters})

    def append_event(self, event: str, cycle: int,
                     **fields: Any) -> None:
        record: Dict[str, Any] = {"kind": "event", "event": event,
                                  "cycle": cycle}
        record.update(fields)
        self._append(record)

    # -- reading ----------------------------------------------------------

    def load(self) -> ServiceLog:
        """Parse the journal, tolerating a torn final line."""
        log = ServiceLog()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a mid-write kill
                    if not isinstance(record, dict):
                        continue
                    kind = record.get("kind")
                    if kind == "header":
                        log.header = record
                    elif kind == "control":
                        log.ops.append(record)
                    elif kind == "snapshot":
                        log.snapshot = record
                    elif kind == "event":
                        log.events.append(record)
                        log.clean_shutdown = \
                            record.get("event") == "shutdown"
        except OSError:
            return log
        return log
