"""Live control plane for ``repro serve`` (stdlib HTTP only).

Read side::

    GET /healthz   200/503 readiness + liveness summary (JSON)
    GET /metrics   Prometheus text: serve registry + default registry
    GET /status    full supervisor/cell status (JSON)

Write side (JSON bodies)::

    POST /cells/<cell>/load    {"factor": 2.0}         dial offered load
    POST /cells/<cell>/join    {"service": "data"}     runtime subscriber
    POST /cells/<cell>/leave   {"name": "data-3"}      power a unit off
    POST /cells/<cell>/faults  {"schedule": "crash:data0@2+3",
                                "probe": true, "window": 10}
    POST /cells/<cell>/stall   {"seconds": 2.0}        wedge the worker
    POST /shutdown                                      graceful drain

Control ops are *enqueued* here and applied (and journaled) by the
cell's worker at the next cycle boundary -- the handler never touches
simulator state, so any number of control-plane threads are safe.
Joins are rejected with 503 while the cell's admission controller is
shedding load.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.export import to_prometheus
from repro.obs.registry import default_registry
from repro.serve.service import CellService, DegradedError, ServiceError
from repro.serve.supervisor import Supervisor

__all__ = ["ControlServer"]


class _Handler(BaseHTTPRequestHandler):
    server: "ControlServer"

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the control plane is not a chat channel

    # -- plumbing ----------------------------------------------------------

    def _send(self, code: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        self._send(code, json.dumps(payload, sort_keys=True,
                                    default=str).encode("utf-8"))

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("body must be a JSON object")
        return payload

    def _cell(self, name: str) -> CellService:
        cell = self.server.supervisor.cells.get(name)
        if cell is None:
            raise LookupError(name)
        return cell

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        supervisor = self.server.supervisor
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            ready = supervisor.ready and \
                not supervisor.stop_event.is_set()
            status = supervisor.status()
            self._send_json(200 if ready else 503, {
                "ready": ready,
                "stopping": supervisor.stop_event.is_set(),
                "cells": {str(entry["name"]): entry["state"]
                          for entry in status["cells"]},
            })
        elif path == "/metrics":
            text = to_prometheus(self.server.registry)
            fallback = default_registry()
            if fallback is not self.server.registry:
                text += to_prometheus(fallback)
            self._send(200, text.encode("utf-8"),
                       content_type="text/plain; version=0.0.4")
        elif path == "/status":
            self._send_json(200, supervisor.status())
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            payload = self._read_json()
            if path == "/shutdown":
                self.server.supervisor.request_shutdown()
                self._send_json(200, {"stopping": True})
                return
            parts = [part for part in path.split("/") if part]
            if len(parts) == 3 and parts[0] == "cells":
                self._dispatch_cell(parts[1], parts[2], payload)
                return
            self._send_json(404, {"error": f"no route {path!r}"})
        except LookupError as exc:
            self._send_json(404, {"error": f"no cell {exc}"})
        except DegradedError as exc:
            self._send_json(503, {"error": str(exc),
                                  "degraded": True})
        except (ServiceError, ValueError, KeyError) as exc:
            self._send_json(400, {"error": str(exc)})

    def _dispatch_cell(self, name: str, action: str,
                       payload: Dict[str, Any]) -> None:
        cell = self._cell(name)
        if action == "load":
            op = cell.enqueue_load(payload["factor"])
        elif action == "join":
            op = cell.enqueue_join(payload.get("service", "data"))
        elif action == "leave":
            op = cell.enqueue_leave(payload["name"])
        elif action == "faults":
            op = cell.enqueue_faults(
                payload["schedule"],
                probe=bool(payload.get("probe", False)),
                window=payload.get("window"))
        elif action == "stall":
            cell.request_stall(float(payload["seconds"]))
            op = {"op": "stall", "seconds": float(payload["seconds"])}
        else:
            raise ServiceError(f"unknown action {action!r}")
        self._send_json(202, {"enqueued": op, "cell": name,
                              "cycle": cell.cycle})


class ControlServer:
    """Threaded HTTP server bound to the supervisor and registry."""

    def __init__(self, supervisor: Supervisor,
                 host: str = "127.0.0.1", port: int = 0):
        self.supervisor = supervisor
        self.registry = supervisor.registry
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.supervisor = supervisor  # type: ignore[attr-defined]
        self._httpd.registry = self.registry  # type: ignore[attr-defined]
        # _Handler reaches these through ``self.server``; re-point the
        # annotations by making this object the façade callers hold.
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-control", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
