"""Service-mode configuration (`repro serve`).

Separate from :class:`~repro.core.config.CellConfig` on purpose: these
knobs shape the *supervision* of a run -- pacing, watchdogs, admission
control, the control plane -- and may differ between a soak and its
resume without invalidating the journal.  Only the cell config (and
seed) is fingerprinted into the journal header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ServeConfig:
    """All knobs of one supervised service run."""

    #: Journal/metric namespace; cells are named ``<name>-cellN``.
    name: str = "serve"
    #: Number of independent cells to supervise.
    cells: int = 1

    # -- pacing ------------------------------------------------------------
    #: Real seconds per 3.984375 s notification cycle (scaled time).
    #: 0 runs unpaced, as fast as the host allows.
    cycle_period_s: float = 0.05
    #: Stop after this many cycles per cell (None = run until signal).
    max_cycles: Optional[int] = None
    #: Stop after this much real time (None = run until signal).
    duration_s: Optional[float] = None

    # -- checkpointing -----------------------------------------------------
    #: Cycles between snapshot records.  1 (default) bounds resume loss
    #: to the cycle in flight and keeps exported counters exactly
    #: monotonic across a kill/resume boundary.
    checkpoint_every: int = 1
    journal_root: Optional[str] = None

    # -- watchdog ----------------------------------------------------------
    #: A cell whose heartbeat is older than this is declared stalled
    #: and restarted from its journal.
    stall_timeout_s: float = 10.0
    #: Watchdog restarts per cell before the cell is marked failed.
    max_restarts: int = 3

    # -- graceful degradation ---------------------------------------------
    #: Cycle-processing lag (real seconds behind the pacing schedule)
    #: above which the admission controller enters degraded mode.
    lag_budget_s: float = 1.0
    #: Lag below which degraded mode exits (hysteresis).
    lag_recover_s: float = 0.25
    #: Multiplier applied to non-GPS traffic rates while degraded.
    degrade_factor: float = 0.25

    # -- control plane -----------------------------------------------------
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (reported via ``--port-file``/stderr).
    port: int = 0

    # -- self-stabilization harness ---------------------------------------
    #: K: cycles after a fault burst within which the invariant monitor
    #: must be back to zero violations and GPS deadlines re-acquired.
    stabilize_window: int = 10
    #: Per-cycle history retained for probes and /status (ring buffer).
    history_cycles: int = 4096

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError("cells must be >= 1")
        if self.cycle_period_s < 0:
            raise ValueError("cycle_period_s must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.lag_budget_s <= 0:
            raise ValueError("lag_budget_s must be positive")
        if not 0 <= self.lag_recover_s <= self.lag_budget_s:
            raise ValueError(
                "lag_recover_s must be in [0, lag_budget_s]")
        if not 0 < self.degrade_factor <= 1:
            raise ValueError("degrade_factor must be in (0, 1]")
        if self.stabilize_window < 1:
            raise ValueError("stabilize_window must be >= 1")
        if self.history_cycles < 16:
            raise ValueError("history_cycles must be >= 16")
