"""Service mode: supervised, resumable, live-controllable cells.

``repro serve`` runs one or more OSU-MAC cells continuously in scaled
time with production-shaped robustness machinery around the simulator:

* :mod:`repro.serve.journal` -- crash-safe cycle-granular journals
  (control ops + verified snapshots) that make a SIGKILL recoverable;
* :mod:`repro.serve.service` -- the per-cell cycle loop, control-op
  application, and replay-with-verification resume;
* :mod:`repro.serve.supervisor` -- pacing workers, heartbeat watchdog
  with restart-from-checkpoint, clean SIGTERM drain;
* :mod:`repro.serve.admission` -- graceful degradation under lag;
* :mod:`repro.serve.control` -- the stdlib HTTP control plane
  (/healthz, /metrics, /status, runtime joins/faults/load dials);
* :mod:`repro.serve.stabilize` -- the self-stabilization verdict
  (back to zero invariant violations within K cycles of a burst).
"""

from repro.serve.admission import AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.journal import (
    SERVE_JOURNAL_SCHEMA,
    JournalLockedError,
    ServiceJournal,
    ServiceLog,
)
from repro.serve.service import (
    Cancelled,
    CellService,
    DegradedError,
    ResumeIntegrityError,
    ServiceError,
)
from repro.serve.stabilize import assess
from repro.serve.supervisor import Supervisor

__all__ = [
    "AdmissionController",
    "Cancelled",
    "CellService",
    "DegradedError",
    "JournalLockedError",
    "ResumeIntegrityError",
    "SERVE_JOURNAL_SCHEMA",
    "ServeConfig",
    "ServiceError",
    "ServiceJournal",
    "ServiceLog",
    "Supervisor",
    "assess",
]
