"""One supervised cell: cycle-stepped simulation with a control plane.

:class:`CellService` owns a single live cell and advances it one
notification cycle at a time (``step_cycle``), applying queued control
operations only at cycle boundaries.  That discipline is what makes the
whole service replayable: every input that can change simulator state
-- load dials, joins, leaves, fault injections, degraded-mode
transitions -- is journaled with the cycle it preceded, so
``start(resume=True)`` rebuilds the cell from config + seed, re-applies
the ops at their recorded cycles, fast-forwards (unpaced) to the last
snapshot, and *verifies* the replayed cumulative counters equal the
snapshot exactly before going live again.  Wall-clock concerns --
pacing, lag, watchdog heartbeats -- live in the supervisor and are
deliberately not journaled: they do not touch simulator state.

Thread model: exactly one worker thread calls ``step_cycle``; control
plane threads only *enqueue* validated ops and read status.  A
cancelled service (watchdog takeover) raises :class:`Cancelled` out of
``step_cycle`` before it would touch the journal again, so the
replacement service owns the tail exclusively.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace
from typing import Any, Deque, Dict, List, Optional

from repro.core.cell import (
    CellRun,
    attach_data_user,
    attach_gps_unit,
    build_cell,
)
from repro.core.config import CellConfig
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSpec, parse_faults
from repro.obs.export import config_digest
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import TimelineRecorder
from repro.phy import timing
from repro.serve import stabilize
from repro.serve.admission import AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.journal import ServiceJournal, ServiceLog

__all__ = ["CellService", "ServiceError", "ResumeIntegrityError",
           "Cancelled", "DegradedError",
           "STARTING", "REPLAYING", "RUNNING", "FAILED", "STOPPED"]

STARTING = "starting"
REPLAYING = "replaying"
RUNNING = "running"
FAILED = "failed"
STOPPED = "stopped"


class ServiceError(RuntimeError):
    """Service-level misuse or integrity failure."""


class ResumeIntegrityError(ServiceError):
    """Replayed state diverged from the journaled snapshot."""


class DegradedError(ServiceError):
    """Rejected because the cell is shedding load (maps to HTTP 503)."""


class Cancelled(Exception):
    """Raised out of ``step_cycle`` after a watchdog takeover."""


#: Cycle count handed to the cell config: the service steps manually
#: and never consults ``config.duration``, but ``cycles`` must satisfy
#: validation and exceed any realistic soak.
_OPEN_ENDED_CYCLES = 10 ** 9


class CellService:
    """A single cell run as a long-lived, journaled service."""

    def __init__(self, name: str, cell_config: CellConfig,
                 serve_config: ServeConfig,
                 registry: Optional[MetricsRegistry] = None):
        self.name = name
        self.serve_config = serve_config
        # The service always runs the invariant monitor (its per-cycle
        # verdict is the readiness/self-stabilization signal) and needs
        # liveness leases so leaves and crashes are ever cleaned up.
        self.cell_config = replace(
            cell_config,
            check_invariants=True,
            liveness_lease_cycles=(cell_config.liveness_lease_cycles
                                   or 8),
            cycles=_OPEN_ENDED_CYCLES,
            warmup_cycles=0)
        self.config_sha256 = config_digest(self.cell_config)
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=True)
        self.journal = ServiceJournal(
            f"{serve_config.name}-{name}",
            root=serve_config.journal_root)
        self.admission = AdmissionController(
            serve_config.lag_budget_s, serve_config.lag_recover_s)

        self.state = STARTING
        self.error: Optional[str] = None
        #: Completed notification cycles.
        self.cycle = 0
        #: Degraded mode as applied to the simulation (flips only at
        #: cycle boundaries; ``admission.degraded`` is the live signal).
        self.degraded = False
        self.dial = 1.0
        self.lag_s = 0.0
        self.heartbeat = time.monotonic()
        self.cancelled = threading.Event()

        self.counters: Dict[str, int] = {
            "joins_data": 0, "joins_gps": 0, "joins_shed": 0,
            "leaves": 0, "fault_ops": 0, "degrade_transitions": 0,
        }
        self.history: Deque[Dict[str, Any]] = deque(
            maxlen=serve_config.history_cycles)
        self.probe: Optional[Dict[str, Any]] = None

        self._ops_lock = threading.Lock()
        self._pending_ops: List[Dict[str, Any]] = []
        self._pending_joins = {"data": 0, "gps": 0}
        self._stall_s = 0.0
        self._injectors: List[FaultInjector] = []
        self._base_uplink: Optional[float] = None
        self._base_forward: Optional[float] = None
        self._resumed_at_cycle = 0
        self._violations_at_resume = 0
        self.run: Optional[CellRun] = None
        self.recorder: Optional[TimelineRecorder] = None

    # -- metrics helpers ---------------------------------------------------

    def _gauge(self, name: str, help: str):
        return self.registry.gauge(name, help, ("cell",)) \
            .labels(self.name)

    def _counter_metric(self, key: str):
        names = {
            "joins_data": ("osu_serve_joins_total",
                           "Runtime subscriber joins", ("service",),
                           ("data",)),
            "joins_gps": ("osu_serve_joins_total",
                          "Runtime subscriber joins", ("service",),
                          ("gps",)),
            "joins_shed": ("osu_serve_joins_shed_total",
                           "Joins rejected while degraded", (), ()),
            "leaves": ("osu_serve_leaves_total",
                       "Runtime subscriber leaves", (), ()),
            "fault_ops": ("osu_serve_fault_injections_total",
                          "Runtime fault-schedule injections", (), ()),
            "degrade_transitions": (
                "osu_serve_degrade_transitions_total",
                "Degraded-mode transitions", (), ()),
        }
        name, help, extra_names, extra_values = names[key]
        return self.registry.counter(
            name, help, ("cell",) + extra_names) \
            .labels(*((self.name,) + extra_values))

    def _count(self, key: str, amount: int = 1) -> None:
        self.counters[key] += amount
        self._counter_metric(key).inc(amount)

    # -- lifecycle ---------------------------------------------------------

    def start(self, resume: bool = False) -> None:
        """Build the cell; under ``resume``, replay the journal first.

        Raises :class:`~repro.serve.journal.JournalLockedError` when
        another live process owns the journal, and
        :class:`ResumeIntegrityError` when replay diverges from the
        journaled snapshot.
        """
        self.journal.acquire()
        log: Optional[ServiceLog] = None
        if resume and self.journal.exists():
            log = self.journal.load()
            header = log.header
            if header is None:
                log = None  # nothing recoverable; start fresh
                self.journal.reset()
            elif header.get("config_sha256") != self.config_sha256:
                raise ServiceError(
                    f"{self.journal.path} belongs to a different cell "
                    f"config ({header.get('config_sha256')!r} != "
                    f"{self.config_sha256!r}); refusing to resume")
        if not resume:
            self.journal.reset()  # a fresh service restarts the name
        self._build()
        if log is not None:
            self.state = REPLAYING
            self._replay(log)
            self.journal.append_event("resumed", self.cycle)
        else:
            self.journal.write_header(
                self.config_sha256, _canonical(self.cell_config),
                _canonical(self.serve_config))
            self.journal.append_event("started", self.cycle)
        self._resumed_at_cycle = self.cycle
        self._violations_at_resume = \
            int(self.run.stats.invariant_violations)
        self.heartbeat = time.monotonic()
        self.state = RUNNING

    def _build(self) -> None:
        self.run = build_cell(self.cell_config)
        self.recorder = TimelineRecorder(
            self.run, registry=self.registry,
            metric_labels={"cell": self.name})
        if self.run.sources:
            self._base_uplink = self.run.sources[0].mean_interarrival
        if self.run.forward_sources:
            self._base_forward = \
                self.run.forward_sources[0].mean_interarrival

    def shutdown(self, clean: bool = True) -> None:
        """Drain point: final snapshot + shutdown event, release lock."""
        if clean and self.run is not None:
            self.journal.append_snapshot(
                self.cycle, self._sim_counters(), dict(self.counters))
            self.journal.append_event("shutdown", self.cycle,
                                      clean=True)
        self.journal.close()
        if self.state not in (FAILED,):
            self.state = STOPPED

    def cancel(self) -> None:
        """Watchdog takeover: the worker must stop touching the journal."""
        self.cancelled.set()

    # -- the cycle loop ----------------------------------------------------

    def step_cycle(self) -> None:
        """Advance exactly one notification cycle."""
        if self.cancelled.is_set():
            raise Cancelled()
        for op in self._drain_ops():
            self._apply_op(op, journal=True, count=True)
        self._run_one_cycle()
        self._after_cycle(journal=True)

    def _run_one_cycle(self) -> None:
        boundary = (self.cycle + 1) * timing.CYCLE_LENGTH
        self.run.sim.run(until=boundary)
        self.cycle += 1

    def _after_cycle(self, journal: bool) -> None:
        recorder = self.recorder
        if recorder.points:
            point = recorder.points[-1]
            self.history.append({
                "cycle": point.cycle,
                "invariant_violations": point.invariant_violations,
                "gps_min_margin_s": point.gps_min_margin_s,
                "registered_data": point.registered_data,
                "registered_gps": point.registered_gps,
            })
            # The recorder's own list is unbounded ground truth for
            # batch runs; a soak only needs the ring above.
            if len(recorder.points) > 2 * self.history.maxlen:
                del recorder.points[:self.history.maxlen]
        if self.probe is not None:
            self.probe["report"] = stabilize.assess(
                self.history, self.probe["burst_end_cycle"],
                self.probe["window"])
        self.registry.counter(
            "osu_serve_cycles_total", "Completed notification cycles",
            ("cell",)).labels(self.name).inc()
        if journal:
            if self.cancelled.is_set():
                raise Cancelled()  # the replacement owns the tail now
            if self.cycle % self.serve_config.checkpoint_every == 0:
                self.journal.append_snapshot(
                    self.cycle, self._sim_counters(),
                    dict(self.counters))

    def _sim_counters(self) -> Dict[str, int]:
        """Cumulative, replay-comparable counters of the simulation."""
        stats = self.run.stats
        bs = self.run.base_station
        return {
            "registration_attempts": int(stats.registration_attempts),
            "registrations_completed":
                int(stats.registrations_completed),
            "lease_evictions": int(stats.lease_evictions),
            "evictions_detected": int(stats.evictions_detected),
            "invariant_violations": int(stats.invariant_violations),
            "faults_injected": int(stats.faults_injected),
            "cf_losses": int(stats.cf_losses),
            "uplink_transmissions":
                int(bs.reverse.total_transmissions),
            "uplink_collisions": int(bs.reverse.total_collisions),
        }

    # -- control-plane enqueue (any thread) --------------------------------

    def _enqueue(self, op: Dict[str, Any]) -> Dict[str, Any]:
        with self._ops_lock:
            self._pending_ops.append(op)
        return op

    def _drain_ops(self) -> List[Dict[str, Any]]:
        with self._ops_lock:
            ops, self._pending_ops = self._pending_ops, []
        return ops

    def enqueue_load(self, factor: float) -> Dict[str, Any]:
        factor = float(factor)
        if not 0.01 <= factor <= 100.0:
            raise ServiceError(
                f"load factor {factor} outside [0.01, 100]")
        return self._enqueue({"op": "load", "factor": factor})

    def enqueue_join(self, service: str) -> Dict[str, Any]:
        if service not in ("data", "gps"):
            raise ServiceError(f"unknown service {service!r}")
        if self.admission.degraded:
            self._count("joins_shed")
            raise DegradedError(
                f"{self.name} is degraded (lag {self.lag_s:.2f}s); "
                f"new registrations are shed")
        with self._ops_lock:
            population = (len(self.run.data_users)
                          if service == "data"
                          else len(self.run.gps_units))
            if service == "gps" \
                    and population + self._pending_joins["gps"] \
                    >= timing.MAX_GPS_USERS:
                raise ServiceError(
                    f"GPS population is at the protocol maximum "
                    f"({timing.MAX_GPS_USERS})")
            index = population + self._pending_joins[service]
            self._pending_joins[service] += 1
            op = {"op": "join", "service": service, "index": index,
                  "name": f"{service}-{index}"}
            self._pending_ops.append(op)
        return op

    def enqueue_leave(self, who: str) -> Dict[str, Any]:
        known = {sub.name for sub in
                 self.run.data_users + self.run.gps_units}
        if who not in known:
            raise ServiceError(f"no subscriber named {who!r}")
        return self._enqueue({"op": "leave", "name": who})

    def enqueue_faults(self, spec_text: str, probe: bool = False,
                       window: Optional[int] = None) -> Dict[str, Any]:
        """Inject a fault-schedule fragment, cycles relative to now."""
        specs = parse_faults(spec_text)  # validates grammar eagerly
        if not specs:
            raise ServiceError("empty fault schedule")
        op: Dict[str, Any] = {
            "op": "faults",
            "specs": [{"kind": spec.kind, "at_cycle": spec.at_cycle,
                       "target": spec.target,
                       "duration_cycles": spec.duration_cycles,
                       "loss": spec.loss, "channel": spec.channel}
                      for spec in specs],
        }
        if probe:
            op["probe_window"] = int(
                window or self.serve_config.stabilize_window)
        return self._enqueue(op)

    def request_stall(self, seconds: float) -> None:
        """Test hook: wedge the worker (never journaled -- a stall has
        no simulator-state footprint, so replay is unaffected)."""
        with self._ops_lock:
            self._stall_s = max(self._stall_s, float(seconds))

    def take_stall(self) -> float:
        with self._ops_lock:
            seconds, self._stall_s = self._stall_s, 0.0
        return seconds

    # -- op application (worker thread / replay) ---------------------------

    def _apply_op(self, op: Dict[str, Any], journal: bool,
                  count: bool) -> None:
        if journal:
            self.journal.append_control(self.cycle, op)
        kind = op["op"]
        if kind == "load":
            self.dial = float(op["factor"])
            self._apply_rates()
        elif kind == "degrade":
            self.degraded = bool(op["on"])
            # Replay must re-establish the controller's mode too.
            self.admission.degraded = self.degraded
            self._apply_rates()
            self._gauge("osu_serve_degraded",
                        "1 while shedding load").set(
                            1.0 if self.degraded else 0.0)
            if count:
                self._count("degrade_transitions")
        elif kind == "join":
            self._apply_join(op, count)
        elif kind == "leave":
            self._apply_leave(op, count)
        elif kind == "faults":
            self._apply_faults(op, count)
        else:
            raise ServiceError(f"unknown control op {kind!r}")

    def _apply_rates(self) -> None:
        scale = self.dial * (self.serve_config.degrade_factor
                             if self.degraded else 1.0)
        if self._base_uplink is not None:
            for source in self.run.sources:
                source.mean_interarrival = self._base_uplink / scale
        if self._base_forward is not None:
            for source in self.run.forward_sources:
                source.mean_interarrival = self._base_forward / scale

    def _apply_join(self, op: Dict[str, Any], count: bool) -> None:
        service = op["service"]
        with self._ops_lock:
            if self._pending_joins[service] > 0:
                self._pending_joins[service] -= 1
        if service == "data":
            expected = len(self.run.data_users)
            subscriber = attach_data_user(self.run)
        else:
            expected = len(self.run.gps_units)
            subscriber = attach_gps_unit(self.run)
        if op["index"] != expected or subscriber.name != op["name"]:
            raise ResumeIntegrityError(
                f"join replay divergence: journal says "
                f"{op['name']} (index {op['index']}), live cell "
                f"produced {subscriber.name} (index {expected})")
        if count:
            self._count(f"joins_{service}")

    def _apply_leave(self, op: Dict[str, Any], count: bool) -> None:
        for sub in self.run.data_users + self.run.gps_units:
            if sub.name == op["name"]:
                if sub.alive:
                    # Power-off; the liveness lease reclaims the UID.
                    sub.crash()
                if count:
                    self._count("leaves")
                return

    def _apply_faults(self, op: Dict[str, Any], count: bool) -> None:
        specs = tuple(
            FaultSpec(kind=raw["kind"],
                      at_cycle=self.cycle + int(raw["at_cycle"]),
                      target=raw["target"],
                      duration_cycles=int(raw["duration_cycles"]),
                      loss=float(raw["loss"]),
                      channel=raw["channel"])
            for raw in op["specs"])
        shim = replace(self.run.config, faults=specs,
                       check_invariants=False)
        self._injectors.append(FaultInjector(
            self.run.sim, shim,
            self.run.data_users + self.run.gps_units,
            self.run.stats))
        if count:
            self._count("fault_ops")
        window = op.get("probe_window")
        if window:
            burst_end = max(spec.at_cycle + spec.duration_cycles
                            for spec in specs)
            self.probe = {"armed_at_cycle": self.cycle,
                          "burst_end_cycle": burst_end,
                          "window": int(window), "report": None}

    # -- lag / degradation (supervisor thread) -----------------------------

    def note_lag(self, lag_s: float) -> None:
        self.lag_s = max(0.0, lag_s)
        self._gauge("osu_serve_lag_seconds",
                    "Real seconds behind the pacing schedule") \
            .set(self.lag_s)
        transition = self.admission.update(lag_s)
        if transition is not None:
            # Applied (and journaled) at the next cycle boundary so
            # replay reproduces it; shedding starts immediately via
            # ``admission.degraded``.
            self._enqueue({"op": "degrade", "on": transition})

    # -- resume ------------------------------------------------------------

    def _replay(self, log: ServiceLog) -> None:
        snap = log.snapshot
        snap_cycle = log.snapshot_cycle
        target = log.resume_cycle
        ops_by_cycle: Dict[int, List[Dict[str, Any]]] = {}
        for record in log.ops:
            ops_by_cycle.setdefault(
                int(record["cycle"]), []).append(record["op"])
        if snap:
            # Serve counters are not derivable from the sim; restore
            # them, then let post-snapshot ops re-count on top.
            for key, value in snap.get("serve", {}).items():
                if key in self.counters:
                    self.counters[key] = int(value)
                    self._counter_metric(key).inc(int(value))
        while True:
            for op in ops_by_cycle.pop(self.cycle, []):
                self._apply_op(op, journal=False,
                               count=self.cycle >= snap_cycle)
            if self.cycle >= target:
                break
            self._run_one_cycle()
            self._after_cycle(journal=False)
            self.heartbeat = time.monotonic()  # replay is progress
            if snap and self.cycle == snap_cycle:
                self._verify_snapshot(snap)

    def _verify_snapshot(self, snap: Dict[str, Any]) -> None:
        live = self._sim_counters()
        recorded = snap.get("counters", {})
        diffs = [f"{key}: journal {recorded[key]} != replay "
                 f"{live[key]}"
                 for key in sorted(set(live) & set(recorded))
                 if int(live[key]) != int(recorded[key])]
        if diffs:
            raise ResumeIntegrityError(
                f"replay of {self.journal.path} diverged at cycle "
                f"{self.cycle}: " + "; ".join(diffs))

    # -- status ------------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self.state == RUNNING

    def status(self) -> Dict[str, Any]:
        run = self.run
        stats = run.stats if run is not None else None
        violations = int(stats.invariant_violations) if stats else 0
        since_resume = violations - self._violations_at_resume
        window = self.serve_config.stabilize_window
        cycles_since_resume = self.cycle - self._resumed_at_cycle
        return {
            "name": self.name,
            "state": self.state,
            "error": self.error,
            "cycle": self.cycle,
            "degraded": self.admission.degraded,
            "dial": self.dial,
            "lag_s": round(self.lag_s, 4),
            "worst_lag_s": round(self.admission.worst_lag_s, 4),
            "counters": dict(self.counters),
            "invariant_violations_total": violations,
            "resumed_at_cycle": self._resumed_at_cycle,
            "cycles_since_resume": cycles_since_resume,
            "violations_since_resume": since_resume,
            #: The self-stabilization acceptance bit: K cycles after
            #: (re)start the monitor has recorded nothing new.
            "resume_clean": (since_resume == 0
                             if cycles_since_resume >= window
                             else None),
            "registered_data": (
                run.base_station.registration.active_data
                if run is not None else 0),
            "registered_gps": (
                run.base_station.registration.active_gps
                if run is not None else 0),
            "population_data": len(run.data_users) if run else 0,
            "population_gps": len(run.gps_units) if run else 0,
            "stabilize": (dict(self.probe) if self.probe is not None
                          else None),
            "journal": self.journal.path,
        }


def _canonical(obj: Any) -> Any:
    from repro.engine.hashing import canonical

    return canonical(obj)
