"""``repro serve`` -- the long-lived service entry point.

Examples::

    python -m repro serve --cells 2 --cycle-period 0.05 --port 8080
    python -m repro serve --duration 30 --faults 'cf_storm:-@20+5*0.8'
    python -m repro serve --resume --name soak --journal-dir /var/run

The process prints one JSON line to stdout when the control plane is
up (``{"event": "listening", "port": ..., ...}``) so harnesses can
discover an ephemeral port; ``--port-file`` additionally writes the
port to a file.  Exit code 0 means every cell drained cleanly.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import List, Optional

from repro.core.config import CellConfig
from repro.serve.config import ServeConfig

__all__ = ["configure_parser", "run", "main"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    cell = parser.add_argument_group("cell")
    cell.add_argument("--load", type=float, default=0.5,
                      help="load index rho (default 0.5)")
    cell.add_argument("--data-users", type=int, default=9)
    cell.add_argument("--gps-users", type=int, default=3)
    cell.add_argument("--seed", type=int, default=1)
    cell.add_argument("--lease", type=int, default=8, metavar="CYCLES",
                      help="liveness lease in cycles (default 8; the "
                           "service needs leases for leave/crash "
                           "cleanup, so 0 is coerced to 8)")
    cell.add_argument("--faults", default="",
                      help="initial fault schedule (absolute cycles), "
                           "e.g. 'crash:data-0@40;restart:data-0@52'")
    cell.add_argument("--eviction-jitter", type=int, default=2,
                      metavar="CYCLES",
                      help="seeded 0..N-cycle backoff before "
                           "re-registering after a suspected eviction "
                           "(default 2; de-synchronizes mass-eviction "
                           "retry storms)")

    serve = parser.add_argument_group("service")
    serve.add_argument("--name", default="serve",
                       help="journal/metric namespace (default serve)")
    serve.add_argument("--cells", type=int, default=1,
                       help="independent cells to supervise")
    serve.add_argument("--cycle-period", type=float, default=0.05,
                       metavar="S",
                       help="real seconds per notification cycle "
                            "(default 0.05; 0 = unpaced)")
    serve.add_argument("--max-cycles", type=int, default=None)
    serve.add_argument("--duration", type=float, default=None,
                       metavar="S", help="stop after S real seconds")
    serve.add_argument("--checkpoint-every", type=int, default=1,
                       metavar="CYCLES")
    serve.add_argument("--journal-dir", default=None, metavar="DIR")
    serve.add_argument("--resume", action="store_true",
                       help="replay the journals and continue the "
                            "previous run of --name")
    serve.add_argument("--stall-timeout", type=float, default=10.0,
                       metavar="S")
    serve.add_argument("--max-restarts", type=int, default=3)
    serve.add_argument("--lag-budget", type=float, default=1.0,
                       metavar="S")
    serve.add_argument("--lag-recover", type=float, default=0.25,
                       metavar="S")
    serve.add_argument("--degrade-factor", type=float, default=0.25)
    serve.add_argument("--stabilize-window", type=int, default=10,
                       metavar="K")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="control-plane port (default 0: ephemeral)")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port to PATH once up")


def _configs(args: argparse.Namespace):
    from repro.faults.schedule import parse_faults

    cell = CellConfig(
        num_data_users=args.data_users,
        num_gps_users=args.gps_users,
        load_index=args.load,
        seed=args.seed,
        liveness_lease_cycles=args.lease,
        eviction_backoff_jitter_cycles=args.eviction_jitter,
        faults=parse_faults(args.faults) if args.faults else (),
        check_invariants=True,
        cycles=10 ** 9,
        warmup_cycles=0)
    serve = ServeConfig(
        name=args.name,
        cells=args.cells,
        cycle_period_s=args.cycle_period,
        max_cycles=args.max_cycles,
        duration_s=args.duration,
        checkpoint_every=args.checkpoint_every,
        journal_root=args.journal_dir,
        stall_timeout_s=args.stall_timeout,
        max_restarts=args.max_restarts,
        lag_budget_s=args.lag_budget,
        lag_recover_s=args.lag_recover,
        degrade_factor=args.degrade_factor,
        stabilize_window=args.stabilize_window,
        host=args.host,
        port=args.port)
    return cell, serve


def run(args: argparse.Namespace) -> int:
    from repro.obs.registry import MetricsRegistry, default_registry
    from repro.serve.control import ControlServer
    from repro.serve.supervisor import Supervisor

    cell_config, serve_config = _configs(args)
    # Per-cell serve metrics live in a dedicated registry; the process
    # default registry (invariant counters and friends) is enabled too
    # and concatenated into /metrics.
    registry = MetricsRegistry(enabled=True)
    default_registry().enable()

    supervisor = Supervisor(serve_config, cell_config,
                            registry=registry)
    if threading.current_thread() is threading.main_thread():
        supervisor.install_signal_handlers()
    control = ControlServer(supervisor, host=serve_config.host,
                            port=serve_config.port)
    control.start()
    supervisor.start(resume=args.resume)
    announce = {"event": "listening", "host": serve_config.host,
                "port": control.port, "name": serve_config.name,
                "cells": serve_config.cells, "resume": args.resume}
    print(json.dumps(announce, sort_keys=True), flush=True)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{control.port}\n")
    try:
        code = supervisor.run()
    finally:
        supervisor.request_shutdown()
        supervisor.join(timeout=30.0)
        control.stop()
    status = supervisor.status()
    print(json.dumps({"event": "stopped", "exit": code,
                      "cells": [{"name": entry["name"],
                                 "state": entry["state"],
                                 "cycle": entry["cycle"],
                                 "error": entry["error"]}
                                for entry in status["cells"]]},
                     sort_keys=True), flush=True)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run cells as a supervised long-lived service.")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
