"""Self-stabilization assessment.

The acceptance lens borrowed from self-stabilizing TDMA work: after an
arbitrary transient fault burst the protocol must *provably* return to
a legal state within a bounded number of cycles.  Here "legal state" is
operationalised by the per-cycle :class:`InvariantMonitor` (zero new
violations) and by the paper's headline QoS claim (GPS units observing
a non-negative 4-second deadline margin again).

:func:`assess` is a pure function over the service's per-cycle history
ring -- it runs identically live, in tests, and on replayed state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


def assess(history: Iterable[Dict[str, object]],
           burst_end_cycle: int,
           window: int) -> Dict[str, object]:
    """Judge recovery after a fault burst.

    ``history`` holds per-cycle dicts with ``cycle``,
    ``invariant_violations`` (violations recorded that cycle) and
    ``gps_min_margin_s`` (worst deadline margin of gaps closed that
    cycle; None when no GPS gap closed).  ``burst_end_cycle`` is the
    first cycle at which every scheduled fault has fired.

    Returns a report with:

    * ``converged_cycle`` -- first cycle >= burst end from which the
      invariant monitor stays at zero violations through the end of
      the observed history (None while violations persist);
    * ``gps_reacquired_cycle`` -- first cycle >= burst end from which
      every closed GPS gap meets the deadline (the single catch-up gap
      spanning an outage legitimately misses; re-acquisition starts
      after the last negative margin);
    * ``cycles_to_converge`` / ``cycles_to_gps`` -- the two distances
      from the burst end;
    * ``ok`` -- both happened within ``window`` cycles;
    * ``final`` -- True once ``window`` cycles of post-burst history
      exist, i.e. the verdict can no longer improve the run.
    """
    post = sorted((point for point in history
                   if int(point["cycle"]) >= burst_end_cycle),
                  key=lambda point: int(point["cycle"]))
    observed_until = int(post[-1]["cycle"]) if post else None

    converged_cycle: Optional[int] = None
    for point in post:
        if int(point["invariant_violations"]) > 0:
            converged_cycle = None
        elif converged_cycle is None:
            converged_cycle = int(point["cycle"])

    gps_cycle: Optional[int] = None
    saw_gps_after = False
    for point in post:
        margin = point.get("gps_min_margin_s")
        if margin is None:
            continue
        if float(margin) < 0.0:
            gps_cycle = None
            saw_gps_after = False
        elif gps_cycle is None:
            gps_cycle = int(point["cycle"])
            saw_gps_after = True
    if not saw_gps_after:
        gps_cycle = None

    to_converge = (converged_cycle - burst_end_cycle
                   if converged_cycle is not None else None)
    to_gps = (gps_cycle - burst_end_cycle
              if gps_cycle is not None else None)
    final = (observed_until is not None
             and observed_until >= burst_end_cycle + window)
    ok = (to_converge is not None and to_converge <= window
          and to_gps is not None and to_gps <= window)
    return {
        "burst_end_cycle": burst_end_cycle,
        "window": window,
        "observed_until": observed_until,
        "converged_cycle": converged_cycle,
        "cycles_to_converge": to_converge,
        "gps_reacquired_cycle": gps_cycle,
        "cycles_to_gps": to_gps,
        "ok": ok,
        "final": final,
    }
