"""Declarative run specs and the engine entry point.

A :class:`RunSpec` is a named list of :class:`Point` -- each point is a
module-level task function plus one picklable config -- with an optional
reducer that folds the per-point results into the experiment's rows.
:func:`execute` evaluates a spec on the chosen executor (serial or
parallel), consulting the on-disk cache first, and records telemetry.

Because points are self-contained (each carries its own seed inside its
config), serial and parallel execution of the same spec produce
bit-identical results, and a cached value is indistinguishable from a
recomputed one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import resolve_cache
from repro.engine.executors import get_executor
from repro.engine.hashing import point_key
from repro.engine.telemetry import EngineStats, telemetry


@dataclass(frozen=True)
class Point:
    """One independent unit of work in a spec.

    ``fn`` must be a module-level callable (picklable by reference) that
    accepts ``config`` as its single argument and returns
    JSON-serializable data (so the result can be cached).  ``label``
    carries the point's grid coordinates for reducers to group by.
    """

    fn: Callable[[Any], Any]
    config: Any
    label: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RunSpec:
    """A named grid of points plus an optional reducer.

    ``reducer(values, points)`` receives the per-point results (aligned
    with ``points``) and returns whatever the experiment's formatter
    consumes (typically a list of table rows or grouped dicts).
    """

    name: str
    points: Tuple[Point, ...]
    reducer: Optional[Callable[[List[Any], Tuple[Point, ...]], Any]] = None


@dataclass
class RunResult:
    """What ``execute`` returns: raw values, reduction, accounting."""

    spec: RunSpec
    values: List[Any]
    stats: EngineStats
    reduced: Any = None


def execute(spec: RunSpec,
            jobs: Optional[int] = None,
            cache: Any = None,
            cache_dir: Optional[str] = None) -> RunResult:
    """Evaluate every point of ``spec`` and reduce.

    ``jobs``: 1 = serial (default), N >= 2 = process pool; ``None``
    falls back to the ``REPRO_JOBS`` environment variable.  ``cache``:
    ``None`` = on unless ``REPRO_CACHE=0``, ``False`` = off, ``True`` or
    a :class:`~repro.engine.cache.ResultCache` = on.
    """
    started = time.perf_counter()
    executor = get_executor(jobs)
    store = resolve_cache(cache, cache_dir)

    count = len(spec.points)
    values: List[Any] = [None] * count
    seconds: List[float] = [0.0] * count
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * count

    if store is not None:
        for index, point in enumerate(spec.points):
            key = point_key(point.fn, point.config)
            keys[index] = key
            hit, value = store.get(key)
            if hit:
                values[index] = value
            else:
                pending.append(index)
    else:
        pending = list(range(count))

    if pending:
        computed = executor.map(
            [(spec.points[index].fn, spec.points[index].config)
             for index in pending])
        for index, (value, elapsed) in zip(pending, computed):
            values[index] = value
            seconds[index] = elapsed
            if store is not None and keys[index] is not None:
                store.put(keys[index], value)

    stats = EngineStats(
        spec=spec.name,
        points=count,
        executed=len(pending),
        cache_hits=count - len(pending),
        jobs=executor.jobs,
        wall_s=time.perf_counter() - started,
        point_seconds=seconds)
    telemetry.record(stats)

    result = RunResult(spec=spec, values=values, stats=stats)
    if spec.reducer is not None:
        result.reduced = spec.reducer(values, spec.points)
    return result


# -- common point/reducer building blocks ----------------------------------


def run_cell_summary(config) -> Dict[str, float]:
    """Task: simulate one cell and return its summary dict."""
    from repro.core.cell import run_cell

    return run_cell(config).summary()


def cell_point(config, **label: Any) -> Point:
    """A point that runs one :class:`~repro.core.config.CellConfig`."""
    return Point(fn=run_cell_summary, config=config, label=dict(label))


def mean_of_summaries(summaries: Sequence[Dict[str, float]]
                      ) -> Dict[str, float]:
    """Field-wise mean over the keys *common to all* summaries.

    Keys missing from some summaries (e.g. a ``metric`` recorded for
    only part of the seeds) are dropped rather than raising.
    """
    if not summaries:
        return {}
    common = set(summaries[0])
    for summary in summaries[1:]:
        common &= set(summary)
    return {key: sum(summary[key] for summary in summaries)
            / len(summaries)
            for key in summaries[0] if key in common}


def group_means(values: Sequence[Dict[str, float]],
                points: Sequence[Point],
                by: Sequence[str]) -> List[Dict[str, Any]]:
    """Average summary dicts over every label *not* in ``by``.

    Returns one dict per distinct ``by``-coordinate (in first-seen
    order) containing the averaged summary fields plus the ``by`` labels
    themselves -- the standard "average over seeds" reduction.
    """
    grouped: Dict[Tuple[Any, ...], List[Dict[str, float]]] = {}
    order: List[Tuple[Any, ...]] = []
    for value, point in zip(values, points):
        coordinate = tuple(point.label.get(name) for name in by)
        if coordinate not in grouped:
            grouped[coordinate] = []
            order.append(coordinate)
        grouped[coordinate].append(value)
    rows: List[Dict[str, Any]] = []
    for coordinate in order:
        row = mean_of_summaries(grouped[coordinate])
        row.update(dict(zip(by, coordinate)))
        rows.append(row)
    return rows
