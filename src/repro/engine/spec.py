"""Declarative run specs and the engine entry point.

A :class:`RunSpec` is a named list of :class:`Point` -- each point is a
module-level task function plus one picklable config -- with an optional
reducer that folds the per-point results into the experiment's rows.
:func:`execute` evaluates a spec on the chosen executor (serial or
parallel), consulting the on-disk cache first, and records telemetry.

Because points are self-contained (each carries its own seed inside its
config), serial and parallel execution of the same spec produce
bit-identical results, and a cached value is indistinguishable from a
recomputed one.

Fault tolerance: ``execute`` resolves a
:class:`~repro.engine.policy.RunPolicy` (per-point timeouts, retries,
fail-fast, resume) from its arguments, the CLI-installed default, or
the ``REPRO_*`` environment.  Completed points are persisted to the
cache and, under ``resume=True``, to a crash-safe checkpoint journal
*as they finish*, so a killed sweep recomputes only unfinished points.
Points that exhaust their attempts are salvaged as
:class:`~repro.engine.policy.PointFailure` records on the
:class:`RunResult` (and skipped by the reducer) instead of aborting
the sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import resolve_cache
from repro.engine.checkpoint import SweepJournal
from repro.engine.executors import MapReport, PointOutcome, get_executor
from repro.engine.hashing import point_key
from repro.engine.policy import PointFailure, RunPolicy, resolve_policy
from repro.engine.telemetry import EngineStats, telemetry


@dataclass(frozen=True)
class Point:
    """One independent unit of work in a spec.

    ``fn`` must be a module-level callable (picklable by reference) that
    accepts ``config`` as its single argument and returns
    JSON-serializable data (so the result can be cached).  ``label``
    carries the point's grid coordinates for reducers to group by.
    """

    fn: Callable[[Any], Any]
    config: Any
    label: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RunSpec:
    """A named grid of points plus an optional reducer.

    ``reducer(values, points)`` receives the per-point results (aligned
    with ``points``) and returns whatever the experiment's formatter
    consumes (typically a list of table rows or grouped dicts).
    """

    name: str
    points: Tuple[Point, ...]
    reducer: Optional[Callable[[List[Any], Tuple[Point, ...]], Any]] = None


@dataclass
class RunResult:
    """What ``execute`` returns: raw values, reduction, accounting.

    ``values`` is aligned with ``spec.points``; a point that exhausted
    its attempts holds ``None`` there and a :class:`PointFailure` in
    ``failures`` (the reducer only ever sees the successful points).
    """

    spec: RunSpec
    values: List[Any]
    stats: EngineStats
    reduced: Any = None
    failures: List[PointFailure] = field(default_factory=list)

    def failure_report(self) -> Dict[str, Any]:
        """The structured partial-failure report for this run."""
        return {
            "spec": self.spec.name,
            "points": len(self.spec.points),
            "failed": [failure.to_json() for failure in self.failures],
        }


def execute(spec: RunSpec,
            jobs: Optional[int] = None,
            cache: Any = None,
            cache_dir: Optional[str] = None,
            policy: Optional[RunPolicy] = None,
            timeout_s: Optional[float] = None,
            retries: Optional[int] = None,
            fail_fast: Optional[bool] = None,
            resume: Optional[bool] = None) -> RunResult:
    """Evaluate every point of ``spec`` and reduce.

    ``jobs``: 1 = serial (default), N >= 2 = process pool; ``None``
    falls back to the ``REPRO_JOBS`` environment variable.  ``cache``:
    ``None`` = on unless ``REPRO_CACHE=0``, ``False`` = off, ``True`` or
    a :class:`~repro.engine.cache.ResultCache` = on.

    ``policy`` (or the ``timeout_s``/``retries``/``fail_fast``/
    ``resume`` shorthands) controls fault tolerance; unset knobs fall
    back to the CLI default and the ``REPRO_*`` environment (see
    :mod:`repro.engine.policy`).
    """
    started = time.perf_counter()
    run_policy = resolve_policy(policy, timeout_s=timeout_s,
                                retries=retries, fail_fast=fail_fast,
                                resume=resume)
    executor = get_executor(jobs)
    store = resolve_cache(cache, cache_dir)

    count = len(spec.points)
    values: List[Any] = [None] * count
    seconds: List[float] = [0.0] * count
    keys = [point_key(point.fn, point.config)
            for point in spec.points]

    journal: Optional[SweepJournal] = None
    restored: Dict[str, Any] = {}
    if run_policy.resume:
        journal = SweepJournal(spec.name, keys)
        # Fail loudly if another live process is resuming this grid:
        # two writers would interleave appends on the same journal.
        journal.acquire()
        restored = journal.load()

    quarantined_before = store.quarantined if store is not None else 0
    pending: List[int] = []
    resumed = 0
    for index, key in enumerate(keys):
        if store is not None:
            hit, value = store.get(key)
            if hit:
                values[index] = value
                continue
        if key in restored:
            values[index] = restored[key]
            resumed += 1
            continue
        pending.append(index)

    report = MapReport()
    if pending:

        def on_outcome(outcome: PointOutcome) -> None:
            # Runs in this process the moment a point resolves, so
            # completed work survives a kill arriving mid-sweep.
            grid_index = pending[outcome.index]
            if outcome.failure is not None:
                outcome.failure.index = grid_index
                outcome.failure.key = keys[grid_index]
                outcome.failure.label = \
                    dict(spec.points[grid_index].label)
                return
            values[grid_index] = outcome.value
            seconds[grid_index] = outcome.seconds
            if store is not None:
                store.put(keys[grid_index], outcome.value)
            if journal is not None:
                journal.append(keys[grid_index], outcome.value)

        tasks = [(spec.points[index].fn, spec.points[index].config)
                 for index in pending]
        try:
            report = executor.map(tasks, policy=run_policy,
                                  on_outcome=on_outcome)
        finally:
            if journal is not None:
                journal.close()

    failures = report.failures
    if journal is not None:
        journal.close()
        if not failures:
            journal.discard()

    stats = EngineStats(
        spec=spec.name,
        points=count,
        executed=len(pending),
        cache_hits=count - len(pending) - resumed,
        jobs=executor.jobs,
        resumed=resumed,
        retries=report.retries,
        timeouts=report.timeouts,
        respawns=report.respawns,
        quarantined=(store.quarantined - quarantined_before
                     if store is not None else 0),
        failures=list(failures),
        wall_s=time.perf_counter() - started,
        point_seconds=seconds)
    telemetry.record(stats)

    result = RunResult(spec=spec, values=values, stats=stats,
                       failures=list(failures))
    if spec.reducer is not None:
        if failures:
            failed = {failure.index for failure in failures}
            survivors = [index for index in range(count)
                         if index not in failed]
            result.reduced = spec.reducer(
                [values[index] for index in survivors],
                tuple(spec.points[index] for index in survivors))
        else:
            result.reduced = spec.reducer(values, spec.points)
    return result


# -- common point/reducer building blocks ----------------------------------


def run_cell_summary(config) -> Dict[str, float]:
    """Task: simulate one cell and return its summary dict."""
    from repro.core.cell import run_cell

    return run_cell(config).summary()


def cell_point(config, **label: Any) -> Point:
    """A point that runs one :class:`~repro.core.config.CellConfig`."""
    return Point(fn=run_cell_summary, config=config, label=dict(label))


def mean_of_summaries(summaries: Sequence[Dict[str, float]]
                      ) -> Dict[str, float]:
    """Field-wise mean over the keys *common to all* summaries.

    Keys missing from some summaries (e.g. a ``metric`` recorded for
    only part of the seeds) are dropped rather than raising.
    """
    if not summaries:
        return {}
    common = set(summaries[0])
    for summary in summaries[1:]:
        common &= set(summary)
    return {key: sum(summary[key] for summary in summaries)
            / len(summaries)
            for key in summaries[0] if key in common}


def group_means(values: Sequence[Dict[str, float]],
                points: Sequence[Point],
                by: Sequence[str]) -> List[Dict[str, Any]]:
    """Average summary dicts over every label *not* in ``by``.

    Returns one dict per distinct ``by``-coordinate (in first-seen
    order) containing the averaged summary fields plus the ``by`` labels
    themselves -- the standard "average over seeds" reduction.
    """
    grouped: Dict[Tuple[Any, ...], List[Dict[str, float]]] = {}
    order: List[Tuple[Any, ...]] = []
    for value, point in zip(values, points):
        coordinate = tuple(point.label.get(name) for name in by)
        if coordinate not in grouped:
            grouped[coordinate] = []
            order.append(coordinate)
        grouped[coordinate].append(value)
    rows: List[Dict[str, Any]] = []
    for coordinate in order:
        row = mean_of_summaries(grouped[coordinate])
        row.update(dict(zip(by, coordinate)))
        rows.append(row)
    return rows
