"""On-disk result cache for run points.

Results live under ``.repro-cache/`` (override with ``REPRO_CACHE_DIR``)
as one JSON file per point, named by the point's content hash
(:func:`repro.engine.hashing.point_key`).  Only JSON-serializable task
results are cached; anything else is recomputed every run.  Set
``REPRO_CACHE=0`` to disable caching globally.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional, Tuple


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0", "off", "no", "false")


class ResultCache:
    """A directory of ``<content-hash>.json`` result files."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; corrupt or absent entries count as misses."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                value = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` if JSON-serializable; atomic via rename."""
        try:
            text = json.dumps(value)
        except (TypeError, ValueError):
            return False
        os.makedirs(self.root, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_path, self._path(key))
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False
        return True

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed


def resolve_cache(cache: Any = None,
                  cache_dir: Optional[str] = None
                  ) -> Optional[ResultCache]:
    """Interpret the ``cache`` knob every experiment entry point takes.

    ``None`` -> on unless ``REPRO_CACHE=0``; ``False`` -> off; ``True``
    -> on; a :class:`ResultCache` instance -> used as-is.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is False:
        return None
    if cache is None and not cache_enabled_by_env():
        return None
    return ResultCache(cache_dir)
