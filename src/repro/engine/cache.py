"""On-disk result cache for run points.

Results live under ``.repro-cache/`` (override with ``REPRO_CACHE_DIR``)
as one JSON file per point, named by the point's content hash
(:func:`repro.engine.hashing.point_key`).  Only JSON-serializable task
results are cached; anything else is recomputed every run.  Set
``REPRO_CACHE=0`` to disable caching globally.

Hygiene: writes go through ``mkstemp`` + rename, so a process killed
mid-write can orphan a ``*.tmp`` file -- stale ones are scavenged the
first time a cache root is opened in a process (and by ``clear()``).
An entry that exists but no longer parses is quarantined by renaming it
to ``<key>.corrupt`` (and counted), so one torn write cannot make its
key miss forever while hiding the evidence.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Optional, Set, Tuple


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0", "off", "no", "false")


#: ``*.tmp`` files older than this are presumed orphaned by a dead
#: writer and removed by the startup scavenge.
STALE_TMP_S = 600.0

#: Cache roots already scavenged by this process.
_SCAVENGED_ROOTS: Set[str] = set()


class ResultCache:
    """A directory of ``<content-hash>.json`` result files."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        root_key = os.path.abspath(self.root)
        if root_key not in _SCAVENGED_ROOTS:
            _SCAVENGED_ROOTS.add(root_key)
            self.scavenge()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; corrupt or absent entries count as misses.

        Corrupt entries are additionally quarantined (renamed to
        ``<key>.corrupt``) so the key is recomputed and rewritten
        instead of missing on every future run.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                value = json.load(handle)
        except OSError:
            self.misses += 1
            return False, None
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, os.path.splitext(path)[0] + ".corrupt")
        except OSError:
            return
        self.quarantined += 1

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` if JSON-serializable; atomic via rename."""
        try:
            text = json.dumps(value)
        except (TypeError, ValueError):
            return False
        os.makedirs(self.root, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_path, self._path(key))
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False
        return True

    def clear(self) -> int:
        """Delete every entry, orphaned temp file, and quarantined
        corpse; returns the number of files removed."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if name.endswith((".json", ".tmp", ".corrupt")):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def scavenge(self, max_age_s: float = STALE_TMP_S) -> int:
        """Remove orphaned ``*.tmp`` files older than ``max_age_s``.

        ``put`` writes through ``mkstemp`` + rename; a process dying
        between the two leaves the temp file behind forever.  Young
        temp files are left alone -- they may belong to a concurrent
        live writer.
        """
        removed = 0
        now = time.time()
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.root, name)
            try:
                if now - os.path.getmtime(path) >= max_age_s:
                    os.unlink(path)
                    removed += 1
            except OSError:
                pass
        return removed


def resolve_cache(cache: Any = None,
                  cache_dir: Optional[str] = None
                  ) -> Optional[ResultCache]:
    """Interpret the ``cache`` knob every experiment entry point takes.

    ``None`` -> on unless ``REPRO_CACHE=0``; ``False`` -> off; ``True``
    -> on; a :class:`ResultCache` instance -> used as-is.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is False:
        return None
    if cache is None and not cache_enabled_by_env():
        return None
    return ResultCache(cache_dir)
