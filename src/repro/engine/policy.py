"""Execution policy: per-point timeouts, retries, fail-fast, resume.

A :class:`RunPolicy` tells the engine how to treat slow, flaky, and
crashed points.  Every knob has a ``REPRO_*`` environment mirror so
long-running sweeps can be hardened without threading arguments through
every experiment signature:

========================  =====================  =======================
knob                      CLI flag               environment variable
========================  =====================  =======================
``timeout_s``             ``--timeout S``        ``REPRO_TIMEOUT``
``retries``               ``--retries N``        ``REPRO_RETRIES``
``backoff_s``             (none)                 ``REPRO_BACKOFF``
``fail_fast``             ``--fail-fast``        ``REPRO_FAIL_FAST``
``resume``                ``--resume``           ``REPRO_RESUME``
========================  =====================  =======================

Points that exhaust their attempts become structured
:class:`PointFailure` records collected into the run's failure report
(partial-result salvage); under ``fail_fast`` the first exhausted point
raises :class:`PointFailureError` instead.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: ``PointFailure.kind`` values.
FAILURE_EXCEPTION = "exception"
FAILURE_TIMEOUT = "timeout"
FAILURE_CRASH = "worker-crash"


@dataclass(frozen=True)
class RunPolicy:
    """How one ``execute``/``map`` call treats failing points."""

    #: Per-point wall-clock limit in seconds, enforced by the parallel
    #: executor (a hung worker is killed and the point retried).  The
    #: serial executor cannot preempt an in-process point and therefore
    #: ignores this knob.  ``None`` = unlimited.
    timeout_s: Optional[float] = None
    #: Extra attempts granted after a point raises or times out.
    retries: int = 0
    #: Base of the exponential retry backoff, in seconds.
    backoff_s: float = 0.05
    #: Ceiling of the exponential backoff.
    backoff_cap_s: float = 2.0
    #: Raise :class:`PointFailureError` on the first exhausted point
    #: instead of salvaging partial results.
    fail_fast: bool = False
    #: Replay and keep writing the per-spec checkpoint journal
    #: (:mod:`repro.engine.checkpoint`).
    resume: bool = False
    #: Pool respawns allowed beyond one per point -- a backstop against
    #: a pathological task that kills its worker on every attempt.
    respawn_slack: int = 8

    @property
    def attempts(self) -> int:
        """Total attempt budget per point."""
        return max(1, int(self.retries) + 1)

    def backoff(self, failed_attempts: int) -> float:
        """Sleep before the next attempt after ``failed_attempts``."""
        if self.backoff_s <= 0:
            return 0.0
        return min(self.backoff_cap_s,
                   self.backoff_s * (2 ** (failed_attempts - 1)))


@dataclass
class PointFailure:
    """One point that exhausted its attempts.

    Collected into :class:`~repro.engine.spec.RunResult.failures` (and
    engine telemetry) instead of poisoning the reducer; ``index``,
    ``key`` and ``label`` are filled in by ``execute`` so the report
    identifies the grid coordinate, not just the task position.
    """

    index: int
    kind: str
    error: str
    message: str
    attempts: int
    elapsed_s: float
    key: Optional[str] = None
    label: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "label": dict(self.label),
            "kind": self.kind,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 3),
            "key": self.key,
        }

    def format(self) -> str:
        where = ", ".join(f"{name}={value}"
                          for name, value in self.label.items())
        where = where or f"point {self.index}"
        return (f"{where}: {self.kind} after {self.attempts} attempt(s)"
                f" -- {self.error}: {self.message}")


class PointFailureError(RuntimeError):
    """Raised under ``fail_fast`` for the first exhausted point."""

    def __init__(self, failure: PointFailure):
        super().__init__(failure.format())
        self.failure = failure


# -- resolution: explicit args > policy object > env > defaults ----------


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in (
        "1", "true", "yes", "on")


def policy_from_env() -> RunPolicy:
    """The policy implied by the ``REPRO_*`` environment mirrors."""
    return RunPolicy(
        timeout_s=_env_float("REPRO_TIMEOUT"),
        retries=_env_int("REPRO_RETRIES") or 0,
        backoff_s=(_env_float("REPRO_BACKOFF")
                   if _env_float("REPRO_BACKOFF") is not None else 0.05),
        fail_fast=_env_flag("REPRO_FAIL_FAST"),
        resume=_env_flag("REPRO_RESUME"))


#: Process-wide default installed by CLIs (``set_default_policy``).
_DEFAULT_POLICY: Optional[RunPolicy] = None


def set_default_policy(policy: Optional[RunPolicy]) -> None:
    """Install (or clear, with ``None``) the process default policy.

    Lets a CLI apply ``--timeout/--retries/--resume/--fail-fast`` to
    every ``execute`` call without changing experiment signatures.
    """
    global _DEFAULT_POLICY
    _DEFAULT_POLICY = policy


def resolve_policy(policy: Optional[RunPolicy] = None,
                   **overrides: Any) -> RunPolicy:
    """Merge an explicit policy, keyword overrides, and the env.

    ``overrides`` accepts any :class:`RunPolicy` field; ``None`` values
    are ignored.  Base precedence: explicit ``policy`` argument, then
    the CLI-installed default, then the ``REPRO_*`` environment.
    """
    base = policy or _DEFAULT_POLICY or policy_from_env()
    changes = {name: value for name, value in overrides.items()
               if value is not None}
    return dataclasses.replace(base, **changes) if changes else base
