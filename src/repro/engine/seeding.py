"""Deterministic per-point seed derivation.

Grid points that need distinct-but-reproducible seeds (e.g. replicating
a scenario more times than the explicit seed list covers) derive them
from a root seed plus the point's coordinates via
:class:`~repro.sim.rng.RandomStreams`, the same SHA-256 scheme every
in-simulation stream uses -- so seeds are stable across runs, Python
versions, and executors.
"""

from __future__ import annotations

from typing import Any

from repro.sim.rng import RandomStreams


def derive_seed(root_seed: int, *coordinates: Any) -> int:
    """A 63-bit seed for the point at ``coordinates`` under ``root_seed``.

    The same ``(root_seed, coordinates)`` always yields the same seed;
    different coordinates yield statistically independent ones.
    """
    name = "/".join(repr(coordinate) for coordinate in coordinates)
    streams = RandomStreams(root_seed).spawn("engine-point")
    return streams.stream(name).getrandbits(63)
