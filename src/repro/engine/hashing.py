"""Content hashing for cache keys.

A cached result is valid only for (a) the exact point config that
produced it and (b) the exact simulator code that ran it.  The config
side uses :func:`canonical` -- a stable, recursive JSON projection of
dataclasses and plain objects; the code side uses
:func:`code_fingerprint` -- a digest over every source file of the
``repro`` package, so any code change invalidates the whole cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Callable

from repro.sim.core import KERNEL_VERSION

#: Bump to invalidate all caches on engine-format changes.
CACHE_SCHEMA = 1

_CODE_FINGERPRINT: str = ""


def canonical(obj: Any) -> Any:
    """A JSON-serializable, order-stable projection of ``obj``.

    Dataclasses and plain ``__dict__`` objects are projected to
    ``[qualified-class-name, {field: canonical(value)}]`` so that two
    configs hash equal iff they are the same type with the same field
    values.  Unknown objects fall back to ``repr``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return [_type_name(obj), fields]
    if isinstance(obj, dict):
        return {str(key): canonical(value)
                for key, value in sorted(obj.items(), key=lambda kv:
                                         str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(item) for item in obj)
    if callable(obj) and hasattr(obj, "__qualname__"):
        # Named callables (task functions) project to their qualified
        # name so wrapper tasks hash by *which* function they wrap.
        return f"{obj.__module__}.{obj.__qualname__}"
    if hasattr(obj, "__dict__"):
        fields = {key: canonical(value)
                  for key, value in sorted(vars(obj).items())
                  if not key.startswith("_")}
        return [_type_name(obj), fields]
    return repr(obj)


def _type_name(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def fn_name(fn: Callable) -> str:
    """The stable qualified name of a task function."""
    return f"{fn.__module__}.{fn.__qualname__}"


def task_fingerprint(fn: Callable) -> Any:
    """A stable identity for a task: name, or state for instances.

    Plain module-level functions hash by qualified name.  Callable
    *instances* (e.g. the executor fault injector's wrapper tasks) have
    no ``__qualname__`` of their own; they project through
    :func:`canonical`, which captures their type plus field values --
    so two wrappers around different functions never collide.
    """
    if hasattr(fn, "__qualname__"):
        return fn_name(fn)
    return canonical(fn)


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Any edit to the package -- simulator, protocols, experiments --
    changes the fingerprint and therefore invalidates cached results.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT:
        return _CODE_FINGERPRINT
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for root, dirs, files in sorted(os.walk(package_root)):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            digest.update(os.path.relpath(path, package_root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def point_key(fn: Callable, config: Any) -> str:
    """The cache key of one run point.

    Hash of (schema, kernel version, code, task, config).  The kernel
    version is folded in explicitly -- in addition to the code
    fingerprint -- so a cache produced by an installed (non-source)
    build of an older kernel can never be served for a newer one.
    """
    payload = json.dumps(
        [CACHE_SCHEMA, KERNEL_VERSION, code_fingerprint(),
         task_fingerprint(fn), canonical(config)],
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
