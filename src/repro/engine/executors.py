"""Pluggable point executors: serial and process-pool parallel.

Both executors evaluate the same list of ``(fn, config)`` tasks and
return ``(value, seconds)`` pairs in task order.  Because every point
carries its own seed and builds its own simulation, the parallel
executor is bit-identical to the serial one -- the process pool only
changes *where* each point runs, never what it computes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

Task = Tuple[Callable[[Any], Any], Any]


def invoke(fn: Callable[[Any], Any], config: Any) -> Tuple[Any, float]:
    """Run one task, timing it in the process that executes it."""
    started = time.perf_counter()
    value = fn(config)
    return value, time.perf_counter() - started


class SerialExecutor:
    """In-process, one point at a time."""

    jobs = 1

    def map(self, tasks: Sequence[Task]) -> List[Tuple[Any, float]]:
        return [invoke(fn, config) for fn, config in tasks]


class ParallelExecutor:
    """``ProcessPoolExecutor``-backed; results stay in submission order.

    Task functions must be module-level (picklable by reference) and
    configs must be picklable -- true for every experiment task in
    :mod:`repro.experiments`.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError("ParallelExecutor needs jobs >= 2; "
                             "use SerialExecutor for jobs=1")
        self.jobs = jobs

    def map(self, tasks: Sequence[Task]) -> List[Tuple[Any, float]]:
        if not tasks:
            return []
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(invoke, fn, config)
                       for fn, config in tasks]
            return [future.result() for future in futures]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """``jobs`` -> explicit value > ``REPRO_JOBS`` env > 1 (serial)."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def get_executor(jobs: Optional[int] = None):
    """The executor for ``jobs`` (resolving env defaults)."""
    count = resolve_jobs(jobs)
    if count <= 1:
        return SerialExecutor()
    return ParallelExecutor(count)
