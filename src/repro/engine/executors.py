"""Pluggable point executors: serial and fault-tolerant process pool.

Both executors evaluate the same list of ``(fn, config)`` tasks and
return per-point :class:`PointOutcome` records in task order.  Because
every point carries its own seed and builds its own simulation, the
parallel executor is bit-identical to the serial one -- the process
pool only changes *where* each point runs, never what it computes, and
re-running a point after a worker crash recomputes the same value.

Resilience (driven by :class:`~repro.engine.policy.RunPolicy`):

* **retries** -- a point that raises is retried with exponential
  backoff until its attempt budget (``1 + retries``) is spent, then
  salvaged as a structured :class:`~repro.engine.policy.PointFailure`
  (or raised immediately under ``fail_fast``).
* **timeouts** (parallel only) -- a point running longer than
  ``timeout_s`` is charged a failed attempt, its hung workers are
  killed, and the pool is respawned; unaffected in-flight points are
  re-run for free.
* **worker-crash recovery** -- a ``BrokenProcessPool`` (a worker died
  mid-point) respawns the pool and resubmits only the lost points,
  preserving submission-order results.  Respawns are bounded by
  ``respawn_slack + len(tasks)`` so a task that kills its worker on
  every attempt cannot loop forever.
* **Ctrl-C** -- on ``KeyboardInterrupt`` the pool is shut down with
  ``cancel_futures=True`` so queued points do not keep the process
  alive after the interrupt.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.policy import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    PointFailure,
    PointFailureError,
    RunPolicy,
)

Task = Tuple[Callable[[Any], Any], Any]

#: Poll interval of the parallel supervision loop (seconds).
TICK_S = 0.05


def invoke(fn: Callable[[Any], Any], config: Any,
           attempt: int = 1) -> Tuple[Any, float]:
    """Run one task, timing it in the process that executes it.

    Tasks that declare ``wants_attempt = True`` (e.g. the executor
    fault injector, :mod:`repro.engine.faultsim`) also receive the
    1-based attempt number.
    """
    started = time.perf_counter()
    if getattr(fn, "wants_attempt", False):
        value = fn(config, attempt)
    else:
        value = fn(config)
    return value, time.perf_counter() - started


@dataclass
class PointOutcome:
    """What happened to one task: a value or a structured failure."""

    index: int
    value: Any = None
    seconds: float = 0.0
    attempts: int = 1
    failure: Optional[PointFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class MapReport:
    """One ``map`` call's outcomes plus resilience accounting."""

    outcomes: List[PointOutcome] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    respawns: int = 0

    @property
    def failures(self) -> List[PointFailure]:
        return [outcome.failure for outcome in self.outcomes
                if outcome.failure is not None]


class SerialExecutor:
    """In-process, one point at a time (retries; no preemption)."""

    jobs = 1

    def map(self, tasks: Sequence[Task],
            policy: Optional[RunPolicy] = None,
            on_outcome: Optional[Callable[[PointOutcome], None]] = None,
            ) -> MapReport:
        policy = policy or RunPolicy()
        report = MapReport()
        for index, (fn, config) in enumerate(tasks):
            outcome = self._run_point(index, fn, config, policy, report)
            report.outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
            if outcome.failure is not None and policy.fail_fast:
                raise PointFailureError(outcome.failure)
        return report

    @staticmethod
    def _run_point(index: int, fn: Callable[[Any], Any], config: Any,
                   policy: RunPolicy, report: MapReport) -> PointOutcome:
        begun = time.monotonic()
        error: Optional[BaseException] = None
        for attempt in range(1, policy.attempts + 1):
            try:
                value, seconds = invoke(fn, config, attempt)
            except Exception as exc:
                error = exc
                if attempt < policy.attempts:
                    report.retries += 1
                    delay = policy.backoff(attempt)
                    if delay:
                        time.sleep(delay)
            else:
                return PointOutcome(index=index, value=value,
                                    seconds=seconds, attempts=attempt)
        return PointOutcome(
            index=index, attempts=policy.attempts,
            failure=PointFailure(
                index=index, kind=FAILURE_EXCEPTION,
                error=type(error).__name__, message=str(error),
                attempts=policy.attempts,
                elapsed_s=time.monotonic() - begun))


class ParallelExecutor:
    """``ProcessPoolExecutor``-backed; results stay in submission order.

    Task functions must be module-level (picklable by reference) and
    configs must be picklable -- true for every experiment task in
    :mod:`repro.experiments`.  Crash, hang, and exception handling are
    delegated to a per-call :class:`_PoolSupervisor`.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError("ParallelExecutor needs jobs >= 2; "
                             "use SerialExecutor for jobs=1")
        self.jobs = jobs

    def map(self, tasks: Sequence[Task],
            policy: Optional[RunPolicy] = None,
            on_outcome: Optional[Callable[[PointOutcome], None]] = None,
            ) -> MapReport:
        policy = policy or RunPolicy()
        if not tasks:
            return MapReport()
        supervisor = _PoolSupervisor(self.jobs, list(tasks), policy,
                                     on_outcome)
        return supervisor.run()


class _PoolSupervisor:
    """Drives one parallel ``map``: submissions, retries, respawns."""

    def __init__(self, jobs: int, tasks: List[Task], policy: RunPolicy,
                 on_outcome: Optional[Callable[[PointOutcome], None]]):
        count = len(tasks)
        self.jobs = min(jobs, count)
        self.tasks = tasks
        self.policy = policy
        self.on_outcome = on_outcome
        self.report = MapReport(outcomes=[])
        self.done: List[Optional[PointOutcome]] = [None] * count
        self.remaining = count
        #: Total submissions per point (also the 1-based attempt number
        #: that ``invoke`` passes through to attempt-aware tasks).
        self.submits = [0] * count
        #: Attempts charged against the retry budget (exceptions and
        #: timeouts; crash-lost runs are re-run for free).
        self.charged = [0] * count
        self.last_error: List[Tuple[str, str, str]] = \
            [("", "", "")] * count
        self.begun = [0.0] * count
        self.ready = deque(range(count))
        #: min-heap of ``(due_monotonic, index)`` backoff waits.
        self.delayed: List[Tuple[float, int]] = []
        self.pending: Dict[Any, int] = {}
        #: future -> monotonic time it was first observed running.
        self.running_since: Dict[Any, float] = {}
        self.respawn_budget = policy.respawn_slack + count
        self.pool: Optional[ProcessPoolExecutor] = None

    # -- main loop -------------------------------------------------------

    def run(self) -> MapReport:
        self.pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while self.remaining:
                self._promote_due()
                self._submit_ready()
                if not self.pending:
                    self._sleep_until_due()
                    continue
                self._reap()
                self._check_timeouts()
            self.report.outcomes = list(self.done)
            return self.report
        except KeyboardInterrupt:
            # Cancel queued points so they don't keep the process
            # alive after the interrupt; running ones get the signal
            # themselves when it came from the terminal.
            self.pool.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)

    def _promote_due(self) -> None:
        now = time.monotonic()
        while self.delayed and self.delayed[0][0] <= now:
            _, index = heapq.heappop(self.delayed)
            self.ready.append(index)

    def _submit_ready(self) -> None:
        while self.ready:
            index = self.ready.popleft()
            if not self.begun[index]:
                self.begun[index] = time.monotonic()
            fn, config = self.tasks[index]
            try:
                future = self.pool.submit(invoke, fn, config,
                                          self.submits[index] + 1)
            except BrokenProcessPool:
                # The pool died between reaps; treat this point as
                # crash-lost and retry the submission on a fresh pool.
                self._respawn([index])
                continue
            self.submits[index] += 1
            self.pending[future] = index

    def _sleep_until_due(self) -> None:
        if not self.delayed:
            return
        pause = self.delayed[0][0] - time.monotonic()
        if pause > 0:
            time.sleep(pause)

    def _tick(self) -> Optional[float]:
        tick: Optional[float] = None
        if self.policy.timeout_s is not None:
            tick = min(TICK_S, max(self.policy.timeout_s / 4, 0.01))
        if self.delayed:
            until = max(0.001, self.delayed[0][0] - time.monotonic())
            tick = until if tick is None else min(tick, until)
        return tick

    # -- result collection -----------------------------------------------

    def _reap(self) -> None:
        completed, _ = wait(set(self.pending), timeout=self._tick(),
                            return_when=FIRST_COMPLETED)
        broken = False
        crash_lost: List[int] = []
        for future in completed:
            index = self.pending.pop(future)
            self.running_since.pop(future, None)
            try:
                value, seconds = future.result()
            except BrokenProcessPool:
                broken = True
                crash_lost.append(index)
            except Exception as exc:
                self._attempt_failed(index, FAILURE_EXCEPTION,
                                     type(exc).__name__, str(exc))
            else:
                self._complete(index, value, seconds)
        if broken:
            # Every other in-flight point is doomed with the pool;
            # collect them all and re-run on a fresh pool.
            crash_lost.extend(self.pending.values())
            self.pending.clear()
            self.running_since.clear()
            self._respawn(crash_lost)
        elif self.policy.timeout_s is not None:
            # Start timeout clocks for executing points.  The executor
            # marks futures RUNNING as soon as they enter its call
            # queue, slightly ahead of real execution, so only the
            # oldest ``jobs`` running futures are clocked -- at most
            # that many can truly be executing.
            now = time.monotonic()
            slots = self.jobs
            for future in self.pending:  # insertion = submission order
                if slots <= 0:
                    break
                if future.running():
                    if future not in self.running_since:
                        self.running_since[future] = now
                    slots -= 1

    def _check_timeouts(self) -> None:
        limit = self.policy.timeout_s
        if limit is None or not self.running_since:
            return
        now = time.monotonic()
        expired = [future for future, since in self.running_since.items()
                   if now - since > limit]
        if not expired:
            return
        self.report.timeouts += len(expired)
        for future in expired:
            index = self.pending.pop(future)
            self.running_since.pop(future, None)
            self._attempt_failed(
                index, FAILURE_TIMEOUT, "PointTimeout",
                f"exceeded the {limit:g}s per-point wall-clock limit")
        # A hung worker can only be reclaimed by killing it; that
        # breaks the pool, so the other in-flight points are re-run
        # for free on the respawned pool.
        self._kill_workers()
        lost = list(self.pending.values())
        self.pending.clear()
        self.running_since.clear()
        self._respawn(lost, charge_budget=False)

    def _complete(self, index: int, value: Any, seconds: float) -> None:
        self._store(PointOutcome(index=index, value=value,
                                 seconds=seconds,
                                 attempts=self.submits[index]))

    def _attempt_failed(self, index: int, kind: str, error: str,
                        message: str) -> None:
        self.charged[index] += 1
        self.last_error[index] = (kind, error, message)
        if self.charged[index] >= self.policy.attempts:
            self._finalize_failure(index)
        else:
            self.report.retries += 1
            due = time.monotonic() + self.policy.backoff(
                self.charged[index])
            heapq.heappush(self.delayed, (due, index))

    def _finalize_failure(self, index: int) -> None:
        kind, error, message = self.last_error[index]
        attempts = max(1, self.submits[index])
        outcome = PointOutcome(
            index=index, attempts=attempts,
            failure=PointFailure(
                index=index, kind=kind, error=error, message=message,
                attempts=attempts,
                elapsed_s=time.monotonic() - self.begun[index]))
        self._store(outcome)
        if self.policy.fail_fast:
            raise PointFailureError(outcome.failure)

    def _store(self, outcome: PointOutcome) -> None:
        if self.done[outcome.index] is not None:
            return
        self.done[outcome.index] = outcome
        self.remaining -= 1
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    # -- pool lifecycle ----------------------------------------------------

    def _respawn(self, lost: Sequence[int],
                 charge_budget: bool = True) -> None:
        """Replace the broken pool; requeue or finalize lost points."""
        self.report.respawns += 1
        if charge_budget:
            self.respawn_budget -= 1
        requeue = self.respawn_budget >= 0
        for index in lost:
            self.last_error[index] = (
                FAILURE_CRASH, "BrokenProcessPool",
                "worker process died before the point finished")
            if requeue:
                self.ready.append(index)
            else:
                self._finalize_failure(index)
        old, self.pool = self.pool, None
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        self.pool = ProcessPoolExecutor(max_workers=self.jobs)

    def _kill_workers(self) -> None:
        # ``ProcessPoolExecutor`` exposes no public way to preempt a
        # worker; killing the processes flips the pool into the same
        # broken state a worker crash produces, which ``_respawn``
        # already recovers from.
        processes = getattr(self.pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """``jobs`` -> explicit value > ``REPRO_JOBS`` env > 1 (serial)."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def get_executor(jobs: Optional[int] = None):
    """The executor for ``jobs`` (resolving env defaults)."""
    count = resolve_jobs(jobs)
    if count <= 1:
        return SerialExecutor()
    return ParallelExecutor(count)
