"""Engine instrumentation: what ran, was cached, retried, or failed.

Every :func:`repro.engine.spec.execute` call records one
:class:`EngineStats` into the module-level :data:`telemetry` log; the
experiment CLI resets the log around each experiment and prints the
aggregate (points, cache hits, wall-clock, points/sec, plus the
resilience counters -- retries, timeouts, pool respawns, journal
resumes, quarantined cache entries, failures) after the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.engine.policy import PointFailure


@dataclass
class EngineStats:
    """One ``execute()`` call's accounting."""

    spec: str
    points: int = 0
    executed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    #: Points replayed from the checkpoint journal (``--resume``).
    resumed: int = 0
    #: Re-attempts granted after exceptions or timeouts.
    retries: int = 0
    #: Points that exceeded the per-point wall-clock limit.
    timeouts: int = 0
    #: Process-pool respawns after worker crashes or hung-worker kills.
    respawns: int = 0
    #: Corrupt cache entries renamed to ``*.corrupt`` this run.
    quarantined: int = 0
    #: Points that exhausted their attempts (salvaged, not raised).
    failures: List[PointFailure] = field(default_factory=list)
    #: Per-point compute seconds, measured inside the executing process
    #: (cache hits and journal replays contribute 0.0).
    point_seconds: List[float] = field(default_factory=list)

    @property
    def points_per_sec(self) -> float:
        return self.points / self.wall_s if self.wall_s > 0 else 0.0

    def format(self) -> str:
        parts = [f"{self.points} points"]
        if self.cache_hits:
            parts.append(f"{self.executed} executed, "
                         f"{self.cache_hits} cached")
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.jobs > 1:
            parts.append(f"jobs={self.jobs}")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.respawns:
            parts.append(f"{self.respawns} pool respawns")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        parts.append(f"{self.wall_s:.2f}s wall")
        parts.append(f"{self.points_per_sec:.1f} points/s")
        return f"[engine {self.spec}: " + ", ".join(parts) + "]"


def publish_to_registry(stats: EngineStats) -> None:
    """Mirror one execution's counters into the metrics registry.

    Publishes into the process-global
    :func:`repro.obs.registry.default_registry`; when that registry is
    disabled (the default) this is a handful of no-op calls.
    """
    from repro.obs.registry import default_registry

    registry = default_registry()
    if not registry.enabled:
        return
    points = registry.counter(
        "engine_points_total",
        "Engine points by disposition", ("spec", "disposition"))
    points.labels(spec=stats.spec, disposition="executed") \
        .inc(stats.executed)
    points.labels(spec=stats.spec, disposition="cached") \
        .inc(stats.cache_hits)
    points.labels(spec=stats.spec, disposition="resumed") \
        .inc(stats.resumed)
    points.labels(spec=stats.spec, disposition="failed") \
        .inc(len(stats.failures))
    resilience = registry.counter(
        "engine_recoveries_total",
        "Retries, timeouts, respawns, quarantined cache entries",
        ("spec", "kind"))
    resilience.labels(spec=stats.spec, kind="retries") \
        .inc(stats.retries)
    resilience.labels(spec=stats.spec, kind="timeouts") \
        .inc(stats.timeouts)
    resilience.labels(spec=stats.spec, kind="respawns") \
        .inc(stats.respawns)
    resilience.labels(spec=stats.spec, kind="quarantined") \
        .inc(stats.quarantined)
    if stats.failures:
        salvaged = registry.counter(
            "engine_point_failures_total",
            "Salvaged point failures by kind "
            "(exception, timeout, worker-crash)", ("spec", "kind"))
        for failure in stats.failures:
            salvaged.labels(spec=stats.spec, kind=failure.kind).inc()
    registry.counter(
        "engine_wall_seconds_total",
        "Wall-clock spent in execute()", ("spec",)) \
        .labels(spec=stats.spec).inc(stats.wall_s)
    registry.gauge(
        "engine_jobs", "Executor width of the last execution",
        ("spec",)).labels(spec=stats.spec).set(stats.jobs)
    seconds = registry.histogram(
        "engine_point_seconds",
        "Per-point compute seconds (executed points only)",
        ("spec",))
    for value in stats.point_seconds:
        if value > 0:
            seconds.labels(spec=stats.spec).observe(value)


class TelemetryLog:
    """Append-only log of engine executions (reset per experiment)."""

    def __init__(self) -> None:
        self.records: List[EngineStats] = []

    def record(self, stats: EngineStats) -> None:
        self.records.append(stats)
        publish_to_registry(stats)

    def reset(self) -> None:
        self.records = []

    @property
    def total_points(self) -> int:
        return sum(record.points for record in self.records)

    @property
    def total_executed(self) -> int:
        return sum(record.executed for record in self.records)

    @property
    def total_cache_hits(self) -> int:
        return sum(record.cache_hits for record in self.records)

    @property
    def total_resumed(self) -> int:
        return sum(record.resumed for record in self.records)

    @property
    def total_retries(self) -> int:
        return sum(record.retries for record in self.records)

    @property
    def total_timeouts(self) -> int:
        return sum(record.timeouts for record in self.records)

    @property
    def total_respawns(self) -> int:
        return sum(record.respawns for record in self.records)

    @property
    def total_quarantined(self) -> int:
        return sum(record.quarantined for record in self.records)

    @property
    def total_wall_s(self) -> float:
        return sum(record.wall_s for record in self.records)

    @property
    def failures(self) -> List[PointFailure]:
        """Every salvaged point failure since the last reset."""
        return [failure for record in self.records
                for failure in record.failures]

    def format(self) -> str:
        """One line summarizing everything since the last reset."""
        points = self.total_points
        wall = self.total_wall_s
        rate = points / wall if wall > 0 else 0.0
        extras = []
        if self.total_resumed:
            extras.append(f", {self.total_resumed} resumed")
        if self.total_retries:
            extras.append(f", {self.total_retries} retries")
        if self.total_timeouts:
            extras.append(f", {self.total_timeouts} timeouts")
        if self.total_respawns:
            extras.append(f", {self.total_respawns} pool respawns")
        if self.total_quarantined:
            extras.append(f", {self.total_quarantined} quarantined")
        failed = len(self.failures)
        if failed:
            extras.append(f", {failed} FAILED")
        return (f"[engine: {points} points "
                f"({self.total_executed} executed, "
                f"{self.total_cache_hits} cached"
                + "".join(extras) + ") "
                f"in {wall:.2f}s — {rate:.1f} points/s]")


#: The process-wide execution log.
telemetry = TelemetryLog()
