"""Engine instrumentation: what ran, what was cached, how fast.

Every :func:`repro.engine.spec.execute` call records one
:class:`EngineStats` into the module-level :data:`telemetry` log; the
experiment CLI resets the log around each experiment and prints the
aggregate (points, cache hits, wall-clock, points/sec) after the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class EngineStats:
    """One ``execute()`` call's accounting."""

    spec: str
    points: int = 0
    executed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    #: Per-point compute seconds, measured inside the executing process
    #: (cache hits contribute 0.0).
    point_seconds: List[float] = field(default_factory=list)

    @property
    def points_per_sec(self) -> float:
        return self.points / self.wall_s if self.wall_s > 0 else 0.0

    def format(self) -> str:
        parts = [f"{self.points} points"]
        if self.cache_hits:
            parts.append(f"{self.executed} executed, "
                         f"{self.cache_hits} cached")
        if self.jobs > 1:
            parts.append(f"jobs={self.jobs}")
        parts.append(f"{self.wall_s:.2f}s wall")
        parts.append(f"{self.points_per_sec:.1f} points/s")
        return f"[engine {self.spec}: " + ", ".join(parts) + "]"


class TelemetryLog:
    """Append-only log of engine executions (reset per experiment)."""

    def __init__(self) -> None:
        self.records: List[EngineStats] = []

    def record(self, stats: EngineStats) -> None:
        self.records.append(stats)

    def reset(self) -> None:
        self.records = []

    @property
    def total_points(self) -> int:
        return sum(record.points for record in self.records)

    @property
    def total_executed(self) -> int:
        return sum(record.executed for record in self.records)

    @property
    def total_cache_hits(self) -> int:
        return sum(record.cache_hits for record in self.records)

    @property
    def total_wall_s(self) -> float:
        return sum(record.wall_s for record in self.records)

    def format(self) -> str:
        """One line summarizing everything since the last reset."""
        points = self.total_points
        wall = self.total_wall_s
        rate = points / wall if wall > 0 else 0.0
        return (f"[engine: {points} points "
                f"({self.total_executed} executed, "
                f"{self.total_cache_hits} cached) "
                f"in {wall:.2f}s — {rate:.1f} points/s]")


#: The process-wide execution log.
telemetry = TelemetryLog()
