"""Unified, fault-tolerant run engine for all experiments.

Every table/figure of the evaluation is regenerated from a grid of
*independent* simulation points (load x seed x scenario).  The engine
makes that structure explicit and shared:

* :class:`~repro.engine.spec.RunSpec` -- a declarative list of
  :class:`~repro.engine.spec.Point` (a picklable task function plus its
  config) with an optional reducer, so an experiment module is a spec
  plus a table formatter instead of bespoke nested loops.
* :mod:`~repro.engine.executors` -- pluggable serial and
  process-pool-parallel executors (``--jobs N`` / ``REPRO_JOBS``) that
  produce bit-identical results for the same spec, recover from worker
  crashes by respawning the pool and re-running only the lost points,
  and enforce per-point wall-clock timeouts.
* :mod:`~repro.engine.policy` -- the :class:`RunPolicy` resilience
  knobs (``--timeout/--retries/--fail-fast/--resume`` with ``REPRO_*``
  env mirrors) and the structured :class:`PointFailure` salvage record.
* :mod:`~repro.engine.checkpoint` -- crash-safe per-spec journals of
  completed points, so a SIGKILLed sweep resumed with ``--resume``
  recomputes only the unfinished points.
* :mod:`~repro.engine.cache` -- an on-disk result cache under
  ``.repro-cache/`` keyed by a content hash of the point's config plus a
  fingerprint of the package source, so repeated invocations skip
  simulations that already ran; corrupt entries are quarantined and
  orphaned temp files scavenged.
* :mod:`~repro.engine.faultsim` -- a deterministic executor-level
  fault injector (seed-stable worker crash/hang/error schedules) that
  makes all of the above testable in CI.
* :mod:`~repro.engine.telemetry` -- per-execution instrumentation
  (points executed, cache hits, retries, timeouts, pool respawns,
  journal resumes, failures, per-point wall-clock) surfaced by
  ``python -m repro.experiments``.
"""

from repro.engine.cache import ResultCache, default_cache_dir, resolve_cache
from repro.engine.checkpoint import SweepJournal, default_journal_dir
from repro.engine.executors import (
    MapReport,
    ParallelExecutor,
    PointOutcome,
    SerialExecutor,
    get_executor,
    resolve_jobs,
)
from repro.engine.faultsim import ExecFaultPlan, FaultyTask, InjectedFault
from repro.engine.hashing import canonical, code_fingerprint, point_key
from repro.engine.policy import (
    PointFailure,
    PointFailureError,
    RunPolicy,
    policy_from_env,
    resolve_policy,
    set_default_policy,
)
from repro.engine.seeding import derive_seed
from repro.engine.spec import (
    Point,
    RunResult,
    RunSpec,
    cell_point,
    execute,
    group_means,
)
from repro.engine.telemetry import EngineStats, telemetry

__all__ = [
    "EngineStats",
    "ExecFaultPlan",
    "FaultyTask",
    "InjectedFault",
    "MapReport",
    "ParallelExecutor",
    "Point",
    "PointFailure",
    "PointFailureError",
    "PointOutcome",
    "ResultCache",
    "RunPolicy",
    "RunResult",
    "RunSpec",
    "SerialExecutor",
    "SweepJournal",
    "canonical",
    "cell_point",
    "code_fingerprint",
    "default_cache_dir",
    "default_journal_dir",
    "derive_seed",
    "execute",
    "get_executor",
    "group_means",
    "point_key",
    "policy_from_env",
    "resolve_cache",
    "resolve_jobs",
    "resolve_policy",
    "set_default_policy",
    "telemetry",
]
