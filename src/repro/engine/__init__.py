"""Unified run engine for all experiments.

Every table/figure of the evaluation is regenerated from a grid of
*independent* simulation points (load x seed x scenario).  The engine
makes that structure explicit and shared:

* :class:`~repro.engine.spec.RunSpec` -- a declarative list of
  :class:`~repro.engine.spec.Point` (a picklable task function plus its
  config) with an optional reducer, so an experiment module is a spec
  plus a table formatter instead of bespoke nested loops.
* :mod:`~repro.engine.executors` -- pluggable serial and
  process-pool-parallel executors (``--jobs N`` / ``REPRO_JOBS``) that
  produce bit-identical results for the same spec.
* :mod:`~repro.engine.cache` -- an on-disk result cache under
  ``.repro-cache/`` keyed by a content hash of the point's config plus a
  fingerprint of the package source, so repeated invocations skip
  simulations that already ran.
* :mod:`~repro.engine.telemetry` -- per-execution instrumentation
  (points executed, cache hits, per-point wall-clock, points/sec)
  surfaced by ``python -m repro.experiments``.
"""

from repro.engine.cache import ResultCache, default_cache_dir, resolve_cache
from repro.engine.executors import (
    ParallelExecutor,
    SerialExecutor,
    get_executor,
    resolve_jobs,
)
from repro.engine.hashing import canonical, code_fingerprint, point_key
from repro.engine.seeding import derive_seed
from repro.engine.spec import (
    Point,
    RunResult,
    RunSpec,
    cell_point,
    execute,
    group_means,
)
from repro.engine.telemetry import EngineStats, telemetry

__all__ = [
    "EngineStats",
    "ParallelExecutor",
    "Point",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SerialExecutor",
    "canonical",
    "cell_point",
    "code_fingerprint",
    "default_cache_dir",
    "derive_seed",
    "execute",
    "get_executor",
    "group_means",
    "point_key",
    "resolve_cache",
    "resolve_jobs",
    "telemetry",
]
