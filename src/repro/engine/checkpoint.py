"""Checkpoint journals: killed sweeps resume instead of restarting.

A :class:`SweepJournal` records every completed point of one spec as a
single JSON line ``{"key": <point_key>, "value": ...}``, appended and
flushed the moment the point finishes.  A sweep killed at any instant
-- including SIGKILL, which never reaches Python -- therefore loses at
most the points still in flight; ``execute(..., resume=True)`` (CLI
``--resume`` / ``REPRO_RESUME=1``) replays the matching lines instead
of recomputing them and keeps journaling the rest.

Layout: journals live under ``<cache-dir>/journal/`` (override with
``REPRO_JOURNAL_DIR``), one ``<spec>-<grid-digest>.jsonl`` file per
(spec name, grid fingerprint).  The grid digest hashes the full list of
point keys -- which already fingerprint config *and* package source --
so resuming after a config, grid, or code change starts a fresh journal
rather than replaying stale values.  A torn final line from a mid-write
kill is skipped on load, and a journal is deleted once its sweep
finishes with no failures (the result cache, when enabled, still holds
the values).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Sequence, TextIO


def default_journal_dir() -> str:
    env = os.environ.get("REPRO_JOURNAL_DIR", "").strip()
    if env:
        return env
    from repro.engine.cache import default_cache_dir

    return os.path.join(default_cache_dir(), "journal")


class SweepJournal:
    """Crash-safe completed-point journal for one spec grid."""

    def __init__(self, name: str, keys: Sequence[str],
                 root: Optional[str] = None):
        self.root = root or default_journal_dir()
        digest = hashlib.sha256(
            "\n".join(keys).encode("utf-8")).hexdigest()[:16]
        safe = "".join(ch if ch.isalnum() or ch in "-_" else "-"
                       for ch in name)
        self.path = os.path.join(self.root, f"{safe}-{digest}.jsonl")
        self._keys = frozenset(keys)
        self._handle: Optional[TextIO] = None

    def load(self) -> Dict[str, Any]:
        """Completed ``key -> value`` entries belonging to this grid."""
        entries: Dict[str, Any] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a mid-write kill
                    if not isinstance(record, dict):
                        continue
                    key = record.get("key")
                    if key in self._keys:
                        entries[key] = record.get("value")
        except OSError:
            return {}
        return entries

    def append(self, key: str, value: Any) -> bool:
        """Journal one completed point (no-op for non-JSON values)."""
        try:
            line = json.dumps({"key": key, "value": value})
        except (TypeError, ValueError):
            return False  # recomputed on resume instead
        if self._handle is None:
            os.makedirs(self.root, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line + "\n")
        # Push the line to the OS so even SIGKILL can't lose it.
        self._handle.flush()
        return True

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def discard(self) -> None:
        """Remove the journal (its sweep finished cleanly)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass
