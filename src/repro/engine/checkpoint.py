"""Checkpoint journals: killed sweeps resume instead of restarting.

A :class:`SweepJournal` records every completed point of one spec as a
single JSON line ``{"key": <point_key>, "value": ...}``, appended and
flushed the moment the point finishes.  A sweep killed at any instant
-- including SIGKILL, which never reaches Python -- therefore loses at
most the points still in flight; ``execute(..., resume=True)`` (CLI
``--resume`` / ``REPRO_RESUME=1``) replays the matching lines instead
of recomputing them and keeps journaling the rest.

Layout: journals live under ``<cache-dir>/journal/`` (override with
``REPRO_JOURNAL_DIR``), one ``<spec>-<grid-digest>.jsonl`` file per
(spec name, grid fingerprint).  The grid digest hashes the full list of
point keys -- which already fingerprint config *and* package source --
so resuming after a config, grid, or code change starts a fresh journal
rather than replaying stale values.  A torn final line from a mid-write
kill is skipped on load, and a journal is deleted once its sweep
finishes with no failures (the result cache, when enabled, still holds
the values).

Durability and exclusivity: the first record of a grid fsyncs both the
journal file and its directory entry (a crash immediately after journal
creation must not leave a resumable sweep pointing at an unlisted
file), and each journal is guarded by a :class:`JournalLock` pidfile so
two processes cannot resume the same journal concurrently.  The
long-running service mode (``repro serve``) reuses both primitives for
its own cycle-granular journals (:mod:`repro.serve.journal`).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Sequence, TextIO


def default_journal_dir() -> str:
    env = os.environ.get("REPRO_JOURNAL_DIR", "").strip()
    if env:
        return env
    from repro.engine.cache import default_cache_dir

    return os.path.join(default_cache_dir(), "journal")


def fsync_directory(path: str) -> None:
    """Flush a directory entry to disk (no-op where unsupported).

    ``fsync`` on the file alone makes the *contents* durable; on most
    filesystems the file's very existence is only durable once its
    parent directory has been synced too.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass  # e.g. directories are not fsync-able on this platform
    finally:
        os.close(fd)


class JournalLockedError(RuntimeError):
    """Another live process holds the journal lock."""


class JournalLock:
    """A pidfile lock guarding one journal against double-resume.

    Two processes resuming the same journal would interleave appends and
    both believe they own the tail; :meth:`acquire` makes the second one
    fail loudly instead.  The lock is a sibling ``<journal>.lock`` file
    created with ``O_CREAT | O_EXCL`` and holding the owner's pid:

    * lock held by a **live** other process -> :class:`JournalLockedError`;
    * lock held by a **dead** pid (e.g. the owner was SIGKILLed) -> the
      stale file is removed and the lock is taken over;
    * lock held by **our own** pid -> re-acquired (an in-process
      supervisor restart re-opens the same journal it already owns).

    The pid is written on the freshly created fd, so the window in which
    another process can observe an empty lock file is a few microseconds;
    an empty/garbled lock file is treated as stale.
    """

    def __init__(self, path: str):
        self.path = path
        self._held = False

    @property
    def held(self) -> bool:
        return self._held

    def _owner_pid(self) -> Optional[int]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return int(handle.read().strip())
        except (OSError, ValueError):
            return None

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True  # exists, owned by someone else
        except OSError:
            return True  # be conservative: assume alive
        return True

    def acquire(self) -> None:
        if self._held:
            return
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        for _ in range(8):  # retries bound stale-steal races
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pid = self._owner_pid()
                if pid == os.getpid():
                    self._held = True
                    return
                if pid is not None and self._pid_alive(pid):
                    raise JournalLockedError(
                        f"{self.path} is held by live pid {pid}; "
                        f"refusing a concurrent resume")
                # Stale (dead owner or torn write): steal it.
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
                continue
            try:
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                os.fsync(fd)
            finally:
                os.close(fd)
            self._held = True
            return
        raise JournalLockedError(
            f"could not acquire {self.path} (persistent contention)")

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass


class SweepJournal:
    """Crash-safe completed-point journal for one spec grid."""

    def __init__(self, name: str, keys: Sequence[str],
                 root: Optional[str] = None):
        self.root = root or default_journal_dir()
        digest = hashlib.sha256(
            "\n".join(keys).encode("utf-8")).hexdigest()[:16]
        safe = "".join(ch if ch.isalnum() or ch in "-_" else "-"
                       for ch in name)
        self.path = os.path.join(self.root, f"{safe}-{digest}.jsonl")
        self._keys = frozenset(keys)
        self._handle: Optional[TextIO] = None
        self._dir_synced = False
        self.lock = JournalLock(self.path + ".lock")

    def acquire(self) -> None:
        """Take the journal's pidfile lock (see :class:`JournalLock`)."""
        self.lock.acquire()

    def load(self) -> Dict[str, Any]:
        """Completed ``key -> value`` entries belonging to this grid."""
        entries: Dict[str, Any] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a mid-write kill
                    if not isinstance(record, dict):
                        continue
                    key = record.get("key")
                    if key in self._keys:
                        entries[key] = record.get("value")
        except OSError:
            return {}
        return entries

    def append(self, key: str, value: Any) -> bool:
        """Journal one completed point (no-op for non-JSON values)."""
        try:
            line = json.dumps({"key": key, "value": value})
        except (TypeError, ValueError):
            return False  # recomputed on resume instead
        if self._handle is None:
            os.makedirs(self.root, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line + "\n")
        # Push the line to the OS so even SIGKILL can't lose it.
        self._handle.flush()
        if not self._dir_synced:
            # First record: fsync the file *and* its directory entry,
            # so a crash right after journal creation cannot leave a
            # resumable sweep pointing at an unlisted file.
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass
            fsync_directory(self.root)
            self._dir_synced = True
        return True

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
        self.lock.release()

    def discard(self) -> None:
        """Remove the journal (its sweep finished cleanly)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass
