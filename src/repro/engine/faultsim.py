"""Deterministic executor-level fault injection (a testing aid).

This mirrors :mod:`repro.faults.injector` one layer down: where that
module crashes *simulated subscribers*, this one crashes the *worker
processes and tasks* that run them, so the engine's recovery machinery
(retries, timeouts, pool respawns, failure salvage) can be exercised in
CI by seed-stable schedules instead of real flakiness.

Wrap any task function in a :class:`FaultyTask`.  Whether a given point
is cursed -- and with which fault -- is a pure function of
``(plan.seed, canonical(config))``, so schedules are identical across
processes, interpreters, and ``--jobs`` settings.  Faults fire on
attempts ``1..faults_per_point`` and then stop, so a cursed point
always succeeds once the engine grants it enough attempts -- which is
what lets recovery tests demand bit-identity with a fault-free run.

Fault kinds:

* ``error`` -- raise :class:`InjectedFault` (the retry path; works
  under any executor).
* ``crash`` -- ``os._exit`` the worker process without any cleanup,
  the real shape of an OOM-kill (the ``BrokenProcessPool`` recovery
  path).  In the parent process (serial executor) it degrades to an
  ``error`` fault rather than killing the whole run.
* ``hang`` -- sleep ``hang_s`` before computing normally (the timeout
  path; only meaningful under the parallel executor with a timeout).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.engine.hashing import canonical

KIND_CRASH = "crash"
KIND_HANG = "hang"
KIND_ERROR = "error"


class InjectedFault(RuntimeError):
    """The transient failure raised by ``error`` faults."""


def _unit(token: str) -> float:
    """A stable uniform draw in ``[0, 1)`` from a string token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class ExecFaultPlan:
    """Seed-stable worker crash/hang/error schedule."""

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    #: Faults fire on this many leading attempts, then the point heals.
    faults_per_point: int = 1
    #: How long a ``hang`` fault stalls before computing normally.
    hang_s: float = 60.0

    def fault_for(self, config: Any) -> Optional[str]:
        """The fault kind scheduled for ``config`` (or ``None``)."""
        token = json.dumps([self.seed, canonical(config)],
                           sort_keys=True, separators=(",", ":"))
        draw = _unit(token)
        if draw < self.crash_rate:
            return KIND_CRASH
        if draw < self.crash_rate + self.hang_rate:
            return KIND_HANG
        if draw < self.crash_rate + self.hang_rate + self.error_rate:
            return KIND_ERROR
        return None

    def cursed(self, configs: Sequence[Any]) -> List[Any]:
        """The subset of ``configs`` scheduled to fault (test helper)."""
        return [config for config in configs
                if self.fault_for(config) is not None]


@dataclass(frozen=True)
class FaultyTask:
    """A picklable task wrapper that injects its plan's faults."""

    fn: Callable[[Any], Any]
    plan: ExecFaultPlan

    #: Makes ``invoke`` pass the 1-based attempt number through.
    wants_attempt = True

    def __call__(self, config: Any, attempt: int = 1) -> Any:
        kind = self.plan.fault_for(config)
        if kind is not None and attempt <= self.plan.faults_per_point:
            self._fire(kind)
        return self.fn(config)

    def _fire(self, kind: str) -> None:
        if kind == KIND_CRASH:
            if multiprocessing.parent_process() is not None:
                os._exit(17)  # a worker: die without cleanup
            raise InjectedFault(
                "crash fault downgraded to an error in the parent "
                "process")
        if kind == KIND_HANG:
            time.sleep(self.plan.hang_s)
            return
        raise InjectedFault("scheduled transient failure")
