"""Poisson e-mail workload (Section 5).

The paper's simulation generates e-mail messages at each mobile data
subscriber as a Poisson process with mean interarrival time ``T``,
computed from the target load index ``rho``::

    rho = m * E[L] * C / (T * d * B)
    =>  T = m * E[L] * C / (rho * d * B)

with ``m`` data subscribers, mean message size ``E[L]`` bytes, cycle
length ``C``, ``d`` reverse data slots per cycle and ``B`` payload bytes
per slot.

Note the paper's ``T`` is the interarrival of the *aggregate* process
over all ``m`` subscribers divided per subscriber -- i.e. each subscriber
generates with mean interarrival ``T`` so the cell-wide generated volume
per cycle is ``m * E[L] * C / T = rho * d * B``.

Two message-size distributions are used (Section 5): fixed
``L = 120`` bytes, and variable lengths uniform on [40, 500] bytes
(mean 270; the paper quotes "an average packet size of 280 bytes").
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.sim.core import Simulator


@dataclass
class Message:
    """One application-level message (e.g. a short e-mail)."""

    message_id: int
    size_bytes: int
    created_at: float
    owner: int = -1  # subscriber index / uid, filled by the consumer
    #: Destination EIN for inter-cell delivery (None = terminates at the
    #: base station, e.g. outbound e-mail to the wired internet).
    destination_ein: Optional[int] = None

    def fragments(self, payload_bytes: int) -> int:
        """Number of MAC packets needed to carry this message."""
        return max(1, -(-self.size_bytes // payload_bytes))


class MessageSizeDistribution:
    """Interface: message sizes in bytes."""

    def mean(self) -> float:
        raise NotImplementedError

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    def mean_fragments(self, payload_bytes: int) -> float:
        """E[ceil(L / payload_bytes)]: mean MAC packets per message."""
        raise NotImplementedError

    def mean_mac_bytes(self, payload_bytes: int) -> float:
        """Mean *MAC-level* bytes per message (fragments x payload).

        A message occupies whole slots, so the load a message puts on the
        reverse channel is ``ceil(L / B) * B`` bytes, not ``L``.  The load
        index is computed against this quantity so that rho = 1.0 offers
        exactly the data-slot capacity (see DESIGN.md section 6).
        """
        return self.mean_fragments(payload_bytes) * payload_bytes


@dataclass(frozen=True)
class FixedSize(MessageSizeDistribution):
    """All messages are exactly ``size_bytes`` long."""

    size_bytes: int = 120

    def mean(self) -> float:
        return float(self.size_bytes)

    def sample(self, rng: random.Random) -> int:
        return self.size_bytes

    def mean_fragments(self, payload_bytes: int) -> float:
        return float(max(1, -(-self.size_bytes // payload_bytes)))


@dataclass(frozen=True)
class UniformSize(MessageSizeDistribution):
    """Sizes drawn uniformly from [low, high] bytes."""

    low: int = 40
    high: int = 500

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValueError(f"invalid size range [{self.low}, {self.high}]")

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def mean_fragments(self, payload_bytes: int) -> float:
        total = sum(max(1, -(-size // payload_bytes))
                    for size in range(self.low, self.high + 1))
        return total / (self.high - self.low + 1)


def make_size_distribution(kind: str,
                           fixed_bytes: int = 120,
                           low: int = 40,
                           high: int = 500) -> MessageSizeDistribution:
    """Factory used by the experiment configs ('fixed' or 'uniform')."""
    if kind == "fixed":
        return FixedSize(fixed_bytes)
    if kind == "uniform":
        return UniformSize(low, high)
    raise ValueError(f"unknown message size distribution {kind!r}")


def interarrival_for_load(load_index: float,
                          num_users: int,
                          mean_message_bytes: float,
                          cycle_length: float,
                          data_slots: int,
                          payload_bytes_per_slot: int) -> float:
    """Per-subscriber mean interarrival time ``T`` for a target load."""
    if load_index <= 0:
        raise ValueError("load_index must be positive")
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    capacity_per_cycle = data_slots * payload_bytes_per_slot
    return (num_users * mean_message_bytes * cycle_length
            / (load_index * capacity_per_cycle))


class PoissonMessageSource:
    """Generates messages for one subscriber as a simulator process."""

    _ids = itertools.count()

    def __init__(self, sim: Simulator, rng: random.Random,
                 mean_interarrival: float,
                 sizes: MessageSizeDistribution,
                 deliver: Callable[[Message], None],
                 start_at: float = 0.0,
                 stop_at: Optional[float] = None):
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        self.sim = sim
        self.rng = rng
        self.mean_interarrival = mean_interarrival
        self.sizes = sizes
        self.deliver = deliver
        self.start_at = start_at
        self.stop_at = stop_at
        self.generated = 0
        self.process = sim.process(self._run(), name="message-source")

    def _run(self) -> Iterator:
        if self.start_at > self.sim.now:
            yield self.sim.timeout(self.start_at - self.sim.now)
        while self.stop_at is None or self.sim.now < self.stop_at:
            gap = self.rng.expovariate(1.0 / self.mean_interarrival)
            yield self.sim.timeout(gap)
            if self.stop_at is not None and self.sim.now >= self.stop_at:
                break
            message = Message(message_id=next(self._ids),
                              size_bytes=self.sizes.sample(self.rng),
                              created_at=self.sim.now)
            self.generated += 1
            self.deliver(message)
