"""Workload generation for the evaluation scenarios (Section 5)."""

from repro.traffic.messages import (
    FixedSize,
    Message,
    MessageSizeDistribution,
    PoissonMessageSource,
    UniformSize,
    interarrival_for_load,
    make_size_distribution,
)

__all__ = [
    "FixedSize",
    "Message",
    "MessageSizeDistribution",
    "PoissonMessageSource",
    "UniformSize",
    "interarrival_for_load",
    "make_size_distribution",
]
