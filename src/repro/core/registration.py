"""Base-station registration handling (Section 3.2).

A mobile subscriber registers by transmitting its permanent 16-bit EIN in
a contention slot.  The registration-handling module approves the request
by assigning a 6-bit user ID (unique within the cell) and announcing the
(EIN, user ID) pair in the reverse-ACK entry of the contention slot the
request arrived in.

Capacity limits come from Section 2.1: up to 8 active GPS users and up to
64 active non-real-time users -- bounded here by the 6-bit user-ID space
with ID 63 reserved as a sentinel.

Per-service population counts are maintained incrementally (updated in
:meth:`approve`/:meth:`release`) so admission checks stay O(1) even when
liveness leases churn the registry every cycle; :meth:`scan_active` is
the O(n) ground truth the invariant checker compares them against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.packets import (
    MAX_ASSIGNABLE_UID,
    SERVICE_DATA,
    SERVICE_GPS,
)


@dataclass
class Registrant:
    """Registry record for one active subscriber."""

    ein: int
    uid: int
    service: int
    registered_at: float


class RegistrationModule:
    """EIN -> user-ID assignment with service-class capacity checks."""

    def __init__(self, max_gps_users: int = 8, max_data_users: int = 64,
                 uid_allocation: str = "round_robin"):
        if uid_allocation not in ("round_robin", "lowest_free"):
            raise ValueError(
                f"unknown uid_allocation {uid_allocation!r}")
        self.max_gps_users = max_gps_users
        self.max_data_users = max_data_users
        self.uid_allocation = uid_allocation
        self._by_ein: Dict[int, Registrant] = {}
        self._by_uid: Dict[int, Registrant] = {}
        self._active_counts: Dict[int, int] = {SERVICE_GPS: 0,
                                               SERVICE_DATA: 0}
        self.rejected = 0
        self._next_uid_hint = 0

    @property
    def active_gps(self) -> int:
        return self._active_counts[SERVICE_GPS]

    @property
    def active_data(self) -> int:
        return self._active_counts[SERVICE_DATA]

    def scan_active(self, service: int) -> int:
        """O(n) recount of one service class (ground truth for audits)."""
        return sum(1 for reg in self._by_uid.values()
                   if reg.service == service)

    def lookup_ein(self, ein: int) -> Optional[Registrant]:
        return self._by_ein.get(ein)

    def lookup_uid(self, uid: int) -> Optional[Registrant]:
        return self._by_uid.get(uid)

    def registrants(self) -> "list[Registrant]":
        """A snapshot of every active registry record."""
        return list(self._by_uid.values())

    def approve(self, ein: int, service: int,
                now: float) -> Optional[Registrant]:
        """Approve a registration request; None when out of capacity.

        Duplicate requests (retransmissions of an already-approved EIN)
        return the existing record, so a subscriber that missed its
        approval announcement recovers on the next attempt.
        """
        existing = self._by_ein.get(ein)
        if existing is not None:
            return existing
        if service == SERVICE_GPS:
            if self.active_gps >= self.max_gps_users:
                self.rejected += 1
                return None
        elif service == SERVICE_DATA:
            if self.active_data >= self.max_data_users:
                self.rejected += 1
                return None
        else:
            raise ValueError(f"unknown service class {service}")
        uid = self._next_uid()
        if uid is None:
            self.rejected += 1
            return None
        record = Registrant(ein=ein, uid=uid, service=service,
                            registered_at=now)
        self._by_ein[ein] = record
        self._by_uid[uid] = record
        self._active_counts[service] += 1
        return record

    def release(self, uid: int) -> Optional[Registrant]:
        """Sign a subscriber off; frees its user ID for reuse."""
        record = self._by_uid.pop(uid, None)
        if record is not None:
            self._by_ein.pop(record.ein, None)
            self._active_counts[record.service] -= 1
        return record

    def check_invariants(self) -> None:
        """Raise AssertionError when the registry is inconsistent.

        Verifies the EIN<->UID bijection and that the incremental
        per-service counters match an O(n) rescan.
        """
        if len(self._by_ein) != len(self._by_uid):
            raise AssertionError(
                f"registry maps out of sync: {len(self._by_ein)} EINs "
                f"vs {len(self._by_uid)} UIDs")
        for uid, record in self._by_uid.items():
            if record.uid != uid:
                raise AssertionError(
                    f"record filed under uid {uid} claims {record.uid}")
            if self._by_ein.get(record.ein) is not record:
                raise AssertionError(
                    f"EIN map does not point back to uid {uid}")
        for service in (SERVICE_GPS, SERVICE_DATA):
            if self._active_counts[service] != self.scan_active(service):
                raise AssertionError(
                    f"service {service} counter "
                    f"{self._active_counts[service]} != scan "
                    f"{self.scan_active(service)}")

    def _next_uid(self) -> Optional[int]:
        """Allocate round-robin, not lowest-free.

        Reusing a just-released ID is dangerous with liveness leases: a
        lease-evicted subscriber keeps transmitting under its old user
        ID until its eviction detection fires, and if the ID has
        already been reassigned, two radios fight over the same
        reverse slots -- each one's collisions resetting the *other*'s
        detection counters, while the impostor's frames keep refreshing
        the lease.  Rotating through the ID space gives the evictee the
        whole remaining space's worth of registrations to notice the
        un-ACKed slots before its ID comes around again.

        ``uid_allocation='lowest_free'`` restores the pre-fix
        lowest-free policy.  It exists purely as a regression hook: the
        fuzz campaign's known-bug demo flips it to prove the oracle
        stack rediscovers the uid-reuse livelock automatically.
        """
        span = MAX_ASSIGNABLE_UID + 1
        if self.uid_allocation == "lowest_free":
            for uid in range(span):
                if uid not in self._by_uid:
                    return uid
            return None
        for offset in range(span):
            uid = (self._next_uid_hint + offset) % span
            if uid not in self._by_uid:
                self._next_uid_hint = (uid + 1) % span
                return uid
        return None
