"""Slot scheduling at the base station (Sections 3.1, 3.5).

Three pieces:

* :class:`RoundRobinScheduler` -- allocates reverse data slots to the
  subscribers with outstanding reservation demand, one slot per subscriber
  per round, starting from a pointer that persists across cycles (the
  paper's round-robin fairness).  The resulting allocation is *lumped*:
  each subscriber's slots are contiguous, so it switches between transmit
  and receive at most once per cycle (Section 3.5).
* :class:`ForwardScheduler` -- assigns forward data slots round-robin to
  subscribers with queued downlink packets, subject to the half-duplex
  constraints (i)--(iii): a subscriber must not be scheduled to receive
  within 20 ms of any of its reverse transmissions, and the first forward
  slot must not go to the subscriber that listens to the second
  control-field set.
* :class:`ContentionController` -- adapts the number of contention slots
  to the observed collision rate (Section 3.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.phy import timing
from repro.phy.intervals import spans_overlap


class RoundRobinScheduler:
    """Round-robin reverse-slot allocator with persistent rotation."""

    def __init__(self):
        self._ring: List[int] = []
        self._next_index = 0

    def _sync_ring(self, uids: Sequence[int]) -> None:
        known = set(self._ring)
        for uid in uids:
            if uid not in known:
                self._ring.append(uid)
                known.add(uid)
        wanted = set(uids)
        if len(wanted) != len(self._ring):
            # Preserve rotation position across removals.
            pointer_uid = (self._ring[self._next_index % len(self._ring)]
                           if self._ring else None)
            self._ring = [uid for uid in self._ring if uid in wanted]
            if pointer_uid in wanted and self._ring:
                self._next_index = self._ring.index(pointer_uid)
            else:
                self._next_index = 0

    def allocate(self, demands: Dict[int, int],
                 num_slots: int) -> Dict[int, int]:
        """Slots granted per subscriber (uid -> count), round-robin.

        ``demands`` maps uid -> outstanding slot requests.  Subscribers
        are served one slot at a time in ring order until either all
        demand is met or ``num_slots`` are exhausted.
        """
        active = [uid for uid, demand in demands.items() if demand > 0]
        self._sync_ring(sorted(active))
        grants: Dict[int, int] = {}
        if not self._ring or num_slots <= 0:
            return grants
        remaining = dict(demands)
        slots_left = num_slots
        index = self._next_index % len(self._ring)
        start_index = index
        idle_passes = 0
        while slots_left > 0 and idle_passes <= len(self._ring):
            uid = self._ring[index]
            if remaining.get(uid, 0) > 0:
                grants[uid] = grants.get(uid, 0) + 1
                remaining[uid] -= 1
                slots_left -= 1
                idle_passes = 0
            else:
                idle_passes += 1
            index = (index + 1) % len(self._ring)
        self._next_index = index
        return grants

    def layout_slots(self, grants: Dict[int, int],
                     data_slots: int,
                     contention_slots: Sequence[int]) -> List[Optional[int]]:
        """Lay grants out as a lumped per-slot assignment list.

        Contention slots stay ``None``; each subscriber's granted slots are
        placed contiguously (slot lumping, Section 3.5) in grant order.
        """
        assignment: List[Optional[int]] = [None] * data_slots
        blocked = set(contention_slots)
        free = [index for index in range(data_slots)
                if index not in blocked]
        cursor = 0
        for uid, count in grants.items():
            for _ in range(count):
                if cursor >= len(free):
                    raise ValueError("more grants than free slots")
                assignment[free[cursor]] = uid
                cursor += 1
        return assignment


class Interval:
    """A closed-open time interval [start, end).

    A plain ``__slots__`` class rather than a frozen dataclass: the base
    station builds one per scheduled reverse slot every cycle, and
    ``object.__setattr__``-based frozen construction dominated the
    schedule-build profile.
    """

    __slots__ = ("start", "end")

    def __init__(self, start: float, end: float):
        self.start = start
        self.end = end

    def expanded(self, margin: float) -> "Interval":
        return Interval(self.start - margin, self.end + margin)

    def overlaps(self, other: "Interval") -> bool:
        return spans_overlap(self.start, self.end, other.start, other.end)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"Interval(start={self.start!r}, end={self.end!r})"


class ForwardScheduler:
    """Forward-slot allocator under the half-duplex constraints."""

    def __init__(self):
        self._ring: List[int] = []
        self._next_index = 0

    def allocate(self,
                 demands: Dict[int, int],
                 reverse_tx: Dict[int, List[Interval]],
                 cf2_listener: Optional[int],
                 cycle_start: float) -> List[Optional[int]]:
        """Assign the N forward data slots for one cycle.

        Parameters
        ----------
        demands:
            uid -> number of queued downlink packets.
        reverse_tx:
            uid -> this cycle's scheduled reverse transmit intervals
            (absolute times); forward receptions must keep a 20 ms margin
            from every one of them (constraints (i)--(iii)).
        cf2_listener:
            The subscriber that listens to the second control-field set
            this cycle (it may not receive forward slot 0).
        cycle_start:
            Absolute start time of the forward cycle.
        """
        active = sorted(uid for uid, demand in demands.items() if demand > 0)
        ring = self._ring
        known = set(ring)
        for uid in active:
            if uid not in known:
                ring.append(uid)
                known.add(uid)
        remaining = dict(demands)
        assignment: List[Optional[int]] = [None] * timing.NUM_FORWARD_DATA_SLOTS
        # Nothing demanded means no slot can ever be chosen and the
        # rotation pointer never moves: skip the 37-slot ring scan.
        open_demand = sum(d for d in remaining.values() if d > 0)
        if not ring or open_demand == 0:
            return assignment
        margin = timing.MS_TURNAROUND_TIME
        slot_time = timing.FORWARD_SLOT_TIME
        offsets = timing.FORWARD_SLOT_OFFSETS
        ring_size = len(ring)
        next_index = self._next_index
        for slot_index in range(timing.NUM_FORWARD_DATA_SLOTS):
            # Same float arithmetic as Interval(...).expanded(margin) so
            # boundary comparisons stay bit-identical.
            slot_start = cycle_start + offsets[slot_index]
            guard_start = slot_start - margin
            guard_end = (slot_start + slot_time) + margin
            chosen = None
            for step in range(ring_size):
                uid = ring[(next_index + step) % ring_size]
                if remaining.get(uid, 0) <= 0:
                    continue
                if slot_index == 0 and uid == cf2_listener:
                    continue
                conflict = False
                for tx in reverse_tx.get(uid, ()):
                    if guard_start < tx.end and tx.start < guard_end:
                        conflict = True
                        break
                if conflict:
                    continue
                chosen = uid
                next_index = (next_index + step + 1) % ring_size
                break
            if chosen is not None:
                assignment[slot_index] = chosen
                remaining[chosen] -= 1
                open_demand -= 1
                if open_demand == 0:
                    break
        self._next_index = next_index
        return assignment


class ContentionController:
    """Adaptive contention-slot count (Section 3.5).

    * If collisions occur in at least ``grow_threshold`` contention slots
      of a cycle, or in each of two consecutive cycles, grow (up to
      ``max_slots``).
    * If at least two contention slots went completely unused, shrink
      (down to ``min_slots``).
    """

    def __init__(self, min_slots: int = 1, max_slots: int = 3,
                 grow_threshold: int = 2):
        if not 1 <= min_slots <= max_slots:
            raise ValueError("need 1 <= min_slots <= max_slots")
        self.min_slots = min_slots
        self.max_slots = max_slots
        self.grow_threshold = grow_threshold
        self.current = min_slots
        self._consecutive_collision_cycles = 0

    def update(self, collided_slots: int, unused_slots: int) -> int:
        """Feed one cycle's observation; returns the next cycle's count."""
        if collided_slots > 0:
            self._consecutive_collision_cycles += 1
        else:
            self._consecutive_collision_cycles = 0
        if (collided_slots >= self.grow_threshold
                or self._consecutive_collision_cycles >= 2):
            self.current = min(self.current + 1, self.max_slots)
        elif unused_slots >= 2:
            self.current = max(self.current - 1, self.min_slots)
        return self.current
