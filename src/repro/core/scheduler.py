"""Slot scheduling at the base station (Sections 3.1, 3.5).

Three pieces:

* :class:`RoundRobinScheduler` -- allocates reverse data slots to the
  subscribers with outstanding reservation demand, one slot per subscriber
  per round, starting from a pointer that persists across cycles (the
  paper's round-robin fairness).  The resulting allocation is *lumped*:
  each subscriber's slots are contiguous, so it switches between transmit
  and receive at most once per cycle (Section 3.5).
* :class:`ForwardScheduler` -- assigns forward data slots round-robin to
  subscribers with queued downlink packets, subject to the half-duplex
  constraints (i)--(iii): a subscriber must not be scheduled to receive
  within 20 ms of any of its reverse transmissions, and the first forward
  slot must not go to the subscriber that listens to the second
  control-field set.
* :class:`ContentionController` -- adapts the number of contention slots
  to the observed collision rate (Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.phy import timing


class RoundRobinScheduler:
    """Round-robin reverse-slot allocator with persistent rotation."""

    def __init__(self):
        self._ring: List[int] = []
        self._next_index = 0

    def _sync_ring(self, uids: Sequence[int]) -> None:
        known = set(self._ring)
        for uid in uids:
            if uid not in known:
                self._ring.append(uid)
                known.add(uid)
        wanted = set(uids)
        if len(wanted) != len(self._ring):
            # Preserve rotation position across removals.
            pointer_uid = (self._ring[self._next_index % len(self._ring)]
                           if self._ring else None)
            self._ring = [uid for uid in self._ring if uid in wanted]
            if pointer_uid in wanted and self._ring:
                self._next_index = self._ring.index(pointer_uid)
            else:
                self._next_index = 0

    def allocate(self, demands: Dict[int, int],
                 num_slots: int) -> Dict[int, int]:
        """Slots granted per subscriber (uid -> count), round-robin.

        ``demands`` maps uid -> outstanding slot requests.  Subscribers
        are served one slot at a time in ring order until either all
        demand is met or ``num_slots`` are exhausted.
        """
        active = [uid for uid, demand in demands.items() if demand > 0]
        self._sync_ring(sorted(active))
        grants: Dict[int, int] = {}
        if not self._ring or num_slots <= 0:
            return grants
        remaining = dict(demands)
        slots_left = num_slots
        index = self._next_index % len(self._ring)
        start_index = index
        idle_passes = 0
        while slots_left > 0 and idle_passes <= len(self._ring):
            uid = self._ring[index]
            if remaining.get(uid, 0) > 0:
                grants[uid] = grants.get(uid, 0) + 1
                remaining[uid] -= 1
                slots_left -= 1
                idle_passes = 0
            else:
                idle_passes += 1
            index = (index + 1) % len(self._ring)
        self._next_index = index
        return grants

    def layout_slots(self, grants: Dict[int, int],
                     data_slots: int,
                     contention_slots: Sequence[int]) -> List[Optional[int]]:
        """Lay grants out as a lumped per-slot assignment list.

        Contention slots stay ``None``; each subscriber's granted slots are
        placed contiguously (slot lumping, Section 3.5) in grant order.
        """
        assignment: List[Optional[int]] = [None] * data_slots
        free = [index for index in range(data_slots)
                if index not in set(contention_slots)]
        cursor = 0
        for uid, count in grants.items():
            for _ in range(count):
                if cursor >= len(free):
                    raise ValueError("more grants than free slots")
                assignment[free[cursor]] = uid
                cursor += 1
        return assignment


@dataclass(frozen=True)
class Interval:
    """A closed-open time interval [start, end)."""

    start: float
    end: float

    def expanded(self, margin: float) -> "Interval":
        return Interval(self.start - margin, self.end + margin)

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


class ForwardScheduler:
    """Forward-slot allocator under the half-duplex constraints."""

    def __init__(self):
        self._ring: List[int] = []
        self._next_index = 0

    def allocate(self,
                 demands: Dict[int, int],
                 reverse_tx: Dict[int, List[Interval]],
                 cf2_listener: Optional[int],
                 cycle_start: float) -> List[Optional[int]]:
        """Assign the N forward data slots for one cycle.

        Parameters
        ----------
        demands:
            uid -> number of queued downlink packets.
        reverse_tx:
            uid -> this cycle's scheduled reverse transmit intervals
            (absolute times); forward receptions must keep a 20 ms margin
            from every one of them (constraints (i)--(iii)).
        cf2_listener:
            The subscriber that listens to the second control-field set
            this cycle (it may not receive forward slot 0).
        cycle_start:
            Absolute start time of the forward cycle.
        """
        active = sorted(uid for uid, demand in demands.items() if demand > 0)
        known = set(self._ring)
        for uid in active:
            if uid not in known:
                self._ring.append(uid)
                known.add(uid)
        remaining = dict(demands)
        assignment: List[Optional[int]] = [None] * timing.NUM_FORWARD_DATA_SLOTS
        if not self._ring:
            return assignment
        margin = timing.MS_TURNAROUND_TIME
        for slot_index in range(timing.NUM_FORWARD_DATA_SLOTS):
            offset = timing.forward_slot_offset(slot_index)
            slot = Interval(cycle_start + offset,
                            cycle_start + offset + timing.FORWARD_SLOT_TIME)
            chosen = None
            for step in range(len(self._ring)):
                uid = self._ring[(self._next_index + step) % len(self._ring)]
                if remaining.get(uid, 0) <= 0:
                    continue
                if slot_index == 0 and uid == cf2_listener:
                    continue
                guarded = slot.expanded(margin)
                if any(guarded.overlaps(tx)
                       for tx in reverse_tx.get(uid, ())):
                    continue
                chosen = uid
                self._next_index = ((self._next_index + step + 1)
                                    % len(self._ring))
                break
            if chosen is not None:
                assignment[slot_index] = chosen
                remaining[chosen] -= 1
        return assignment


class ContentionController:
    """Adaptive contention-slot count (Section 3.5).

    * If collisions occur in at least ``grow_threshold`` contention slots
      of a cycle, or in each of two consecutive cycles, grow (up to
      ``max_slots``).
    * If at least two contention slots went completely unused, shrink
      (down to ``min_slots``).
    """

    def __init__(self, min_slots: int = 1, max_slots: int = 3,
                 grow_threshold: int = 2):
        if not 1 <= min_slots <= max_slots:
            raise ValueError("need 1 <= min_slots <= max_slots")
        self.min_slots = min_slots
        self.max_slots = max_slots
        self.grow_threshold = grow_threshold
        self.current = min_slots
        self._consecutive_collision_cycles = 0

    def update(self, collided_slots: int, unused_slots: int) -> int:
        """Feed one cycle's observation; returns the next cycle's count."""
        if collided_slots > 0:
            self._consecutive_collision_cycles += 1
        else:
            self._consecutive_collision_cycles = 0
        if (collided_slots >= self.grow_threshold
                or self._consecutive_collision_cycles >= 2):
            self.current = min(self.current + 1, self.max_slots)
        elif unused_slots >= 2:
            self.current = max(self.current - 1, self.min_slots)
        return self.current
