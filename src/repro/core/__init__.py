"""OSU-MAC protocol core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.config.CellConfig` -- scenario configuration.
* :func:`~repro.core.cell.run_cell` / :func:`~repro.core.cell.run_cell_detailed`
  -- run a full cell simulation.
* :class:`~repro.core.base_station.BaseStation`,
  :class:`~repro.core.subscriber.DataSubscriber`,
  :class:`~repro.core.gps_unit.GpsSubscriber` -- the protocol agents.
* Packet and control-field formats in :mod:`repro.core.packets` and
  :mod:`repro.core.fields`.
"""

from repro.core.base_station import BaseStation
from repro.core.cell import (
    CellRun,
    build_cell,
    finalize_run,
    run_cell,
    run_cell_detailed,
)
from repro.core.config import CellConfig
from repro.core.fields import AckEntry, ControlFields
from repro.core.gps_slots import GpsSlotManager
from repro.core.gps_unit import GpsSubscriber
from repro.core.packets import (
    DataPacket,
    ForwardPacket,
    GPSPacket,
    RegistrationPacket,
    ReservationPacket,
)
from repro.core.registration import RegistrationModule
from repro.core.scheduler import (
    ContentionController,
    ForwardScheduler,
    RoundRobinScheduler,
)
from repro.core.subscriber import DataSubscriber

__all__ = [
    "AckEntry",
    "BaseStation",
    "CellConfig",
    "CellRun",
    "ContentionController",
    "ControlFields",
    "DataPacket",
    "DataSubscriber",
    "ForwardPacket",
    "ForwardScheduler",
    "GPSPacket",
    "GpsSlotManager",
    "GpsSubscriber",
    "RegistrationModule",
    "RegistrationPacket",
    "ReservationPacket",
    "RoundRobinScheduler",
    "build_cell",
    "finalize_run",
    "run_cell",
    "run_cell_detailed",
]
