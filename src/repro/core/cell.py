"""Cell orchestration: wire everything together and run a scenario.

``run_cell(config)`` builds one cell -- base station, channels, data
subscribers, GPS units, workload generators -- runs it for
``config.cycles`` notification cycles, and returns the populated
:class:`~repro.metrics.CellStats` (plus the live objects, for tests that
want to poke at internals, via ``run_cell_detailed``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.base_station import BaseStation
from repro.core.config import CellConfig
from repro.core.packets import PAYLOAD_BYTES, ForwardPacket
from repro.core.gps_unit import GpsSubscriber
from repro.core.subscriber import ACTIVE, DataSubscriber
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantMonitor
from repro.metrics import CellStats
from repro.phy import timing
from repro.phy.channel import ForwardChannel, Link, ReverseChannel
from repro.phy.errors import (
    ErrorModel,
    GilbertElliottModel,
    IndependentSymbolErrors,
    OutageModel,
    PerfectChannelModel,
)
from repro.sim import RandomStreams, Simulator
from repro.traffic.messages import (
    Message,
    PoissonMessageSource,
    interarrival_for_load,
    make_size_distribution,
)

#: EIN blocks for generated subscribers (arbitrary, disjoint).
DATA_EIN_BASE = 0x1000
GPS_EIN_BASE = 0x2000


def _make_error_model(config: CellConfig,
                      rng: random.Random) -> ErrorModel:
    if config.error_model == "perfect":
        return PerfectChannelModel()
    if config.error_model == "outage":
        return OutageModel(config.outage_loss)
    if config.error_model == "iid":
        return IndependentSymbolErrors(config.symbol_error_rate)
    if config.error_model == "ge":
        return GilbertElliottModel()
    raise ValueError(f"unknown error model {config.error_model!r}")


def _make_link(config: CellConfig, streams: "RandomStreams",
               stream_name: str) -> Link:
    return Link(_make_error_model(config, streams[stream_name]),
                streams[stream_name],
                full_fidelity=config.full_fidelity)


def _uplink_workload(config: CellConfig):
    """(size distribution, per-user mean interarrival) for the uplink."""
    sizes = make_size_distribution(
        config.message_size, config.fixed_message_bytes,
        config.uniform_low, config.uniform_high)
    interarrival = interarrival_for_load(
        config.load_index, config.num_data_users,
        sizes.mean_mac_bytes(PAYLOAD_BYTES),
        timing.CYCLE_LENGTH, config.data_slots_per_cycle,
        PAYLOAD_BYTES)
    return sizes, interarrival


@dataclass
class CellRun:
    """Everything a finished simulation exposes."""

    config: CellConfig
    stats: CellStats
    sim: Simulator
    base_station: BaseStation
    data_users: List[DataSubscriber]
    gps_units: List[GpsSubscriber]
    injector: Optional[FaultInjector] = None
    monitor: Optional[InvariantMonitor] = None
    #: The name streams were derived from; kept so callers (the service
    #: mode's runtime joins) can mint new deterministic per-subscriber
    #: streams after construction.
    streams: Optional[RandomStreams] = None
    #: Live uplink / downlink Poisson sources, in subscriber order.
    #: ``mean_interarrival`` is mutable, so a caller may re-dial the
    #: offered load mid-run (applied to draws after the change).
    sources: List[PoissonMessageSource] = field(default_factory=list)
    forward_sources: List[PoissonMessageSource] = \
        field(default_factory=list)


def build_cell(config: CellConfig,
               sim: "Simulator | None" = None,
               streams: "RandomStreams | None" = None,
               ein_offset: int = 0,
               name_prefix: str = "") -> CellRun:
    """Construct (but do not run) a cell simulation.

    ``sim``/``streams`` may be shared across cells (multi-cell networks
    build several cells on one simulator); ``ein_offset`` keeps EINs
    globally unique in that case.
    """
    sim = sim if sim is not None else Simulator()
    streams = streams if streams is not None \
        else RandomStreams(config.seed)
    stats = CellStats(
        cycle_length=timing.CYCLE_LENGTH,
        warmup_until=config.warmup_until,
        data_slots_per_cycle=config.data_slots_per_cycle,
        payload_bytes_per_slot=PAYLOAD_BYTES)
    forward = ForwardChannel(sim, timing.FORWARD_SYMBOL_RATE)
    reverse = ReverseChannel(sim, timing.REVERSE_SYMBOL_RATE)
    base_station = BaseStation(sim, config, forward, reverse, stats,
                               streams["base-station"])

    entry_rng = streams["entry"]
    entry_clock = [0.0]

    def entry_time() -> float:
        """Next subscriber power-on time.

        'poisson' mode models a true Poisson arrival process: each entry
        is the previous entry plus an exponential gap, so subscribers
        trickle in at ``registration_rate`` per second (the sparse regime
        the Section 2.1 registration goals are stated for).
        """
        if config.registration_mode == "poisson":
            entry_clock[0] += entry_rng.expovariate(
                config.registration_rate)
            return entry_clock[0]
        return 0.0

    def make_link(stream_name: str) -> Link:
        return _make_link(config, streams, stream_name)

    data_users: List[DataSubscriber] = []
    for index in range(config.num_data_users):
        ein = DATA_EIN_BASE + ein_offset + index
        subscriber = DataSubscriber(
            sim, config, ein, forward, reverse,
            forward_link=make_link(f"fl-{ein}"),
            reverse_link=make_link(f"rl-{ein}"),
            stats=stats, rng=streams[f"sub-{ein}"],
            entry_time=entry_time(),
            name=f"{name_prefix}data-{index}")
        data_users.append(subscriber)

    gps_units: List[GpsSubscriber] = []
    for index in range(config.num_gps_users):
        ein = GPS_EIN_BASE + ein_offset + index
        unit = GpsSubscriber(
            sim, config, ein, forward, reverse,
            forward_link=make_link(f"fl-{ein}"),
            reverse_link=make_link(f"rl-{ein}"),
            stats=stats, rng=streams[f"sub-{ein}"],
            entry_time=entry_time(),
            name=f"{name_prefix}gps-{index}")
        gps_units.append(unit)

    # -- uplink e-mail workload -------------------------------------------
    sources: List[PoissonMessageSource] = []
    if config.num_data_users and config.load_index > 0:
        sizes, interarrival = _uplink_workload(config)
        for index, subscriber in enumerate(data_users):
            sources.append(PoissonMessageSource(
                sim, streams[f"traffic-{index}"], interarrival, sizes,
                deliver=subscriber.submit_message,
                start_at=subscriber.entry_time))

    # -- downlink workload ---------------------------------------------------
    forward_sources: List[PoissonMessageSource] = []
    if config.num_data_users and config.forward_load_index > 0:
        sizes = make_size_distribution(
            config.message_size, config.fixed_message_bytes,
            config.uniform_low, config.uniform_high)
        interarrival = interarrival_for_load(
            config.forward_load_index, config.num_data_users,
            sizes.mean_mac_bytes(PAYLOAD_BYTES), timing.CYCLE_LENGTH,
            timing.NUM_FORWARD_DATA_SLOTS, PAYLOAD_BYTES)
        for index, subscriber in enumerate(data_users):
            def deliver(message: Message,
                        sub: DataSubscriber = subscriber) -> None:
                _submit_forward_message(base_station, sub, message)
            forward_sources.append(PoissonMessageSource(
                sim, streams[f"fwd-traffic-{index}"], interarrival,
                sizes, deliver=deliver,
                start_at=subscriber.entry_time))

    # -- robustness instrumentation --------------------------------------
    injector = None
    if config.faults:
        injector = FaultInjector(sim, config,
                                 data_users + gps_units, stats)
    monitor = None
    if config.check_invariants:
        monitor = InvariantMonitor(sim, config, base_station,
                                   data_users, gps_units, stats)

    return CellRun(config=config, stats=stats, sim=sim,
                   base_station=base_station, data_users=data_users,
                   gps_units=gps_units, injector=injector,
                   monitor=monitor, streams=streams, sources=sources,
                   forward_sources=forward_sources)


def attach_data_user(run: CellRun, ein_offset: int = 0,
                     name_prefix: str = "") -> DataSubscriber:
    """Power on one more data subscriber mid-run.

    Used by the service mode's runtime joins.  The subscriber enters
    the cell from SYNCING at the current simulated time, with stream
    names extending the ``build_cell`` sequence, so a replayed join at
    the same instant rebuilds bit-identical state.
    """
    config = run.config
    streams = run.streams
    if streams is None:
        raise ValueError("cell was built without recorded streams")
    index = len(run.data_users)
    ein = DATA_EIN_BASE + ein_offset + index
    bs = run.base_station
    subscriber = DataSubscriber(
        run.sim, config, ein, bs.forward, bs.reverse,
        forward_link=_make_link(config, streams, f"fl-{ein}"),
        reverse_link=_make_link(config, streams, f"rl-{ein}"),
        stats=run.stats, rng=streams[f"sub-{ein}"],
        entry_time=run.sim.now,
        name=f"{name_prefix}data-{index}")
    run.data_users.append(subscriber)
    if config.load_index > 0:
        sizes, interarrival = _uplink_workload(config)
        if run.sources:
            # Joiners inherit the *current* (possibly re-dialled) rate.
            interarrival = run.sources[0].mean_interarrival
        run.sources.append(PoissonMessageSource(
            run.sim, streams[f"traffic-{index}"], interarrival, sizes,
            deliver=subscriber.submit_message,
            start_at=run.sim.now))
    return subscriber


def attach_gps_unit(run: CellRun, ein_offset: int = 0,
                    name_prefix: str = "") -> GpsSubscriber:
    """Power on one more GPS unit mid-run (see ``attach_data_user``)."""
    config = run.config
    streams = run.streams
    if streams is None:
        raise ValueError("cell was built without recorded streams")
    index = len(run.gps_units)
    ein = GPS_EIN_BASE + ein_offset + index
    bs = run.base_station
    unit = GpsSubscriber(
        run.sim, config, ein, bs.forward, bs.reverse,
        forward_link=_make_link(config, streams, f"fl-{ein}"),
        reverse_link=_make_link(config, streams, f"rl-{ein}"),
        stats=run.stats, rng=streams[f"sub-{ein}"],
        entry_time=run.sim.now,
        name=f"{name_prefix}gps-{index}")
    run.gps_units.append(unit)
    return unit


def _submit_forward_message(base_station: BaseStation,
                            subscriber: DataSubscriber,
                            message: Message) -> None:
    """Fragment a downlink message into the subscriber's forward queue."""
    if subscriber.state != ACTIVE or subscriber.uid is None:
        return  # downlink traffic for inactive subscribers is dropped
    fragments = message.fragments(PAYLOAD_BYTES)
    remaining = message.size_bytes
    for index in range(fragments):
        chunk = min(PAYLOAD_BYTES, remaining)
        remaining -= chunk
        base_station.submit_forward(subscriber.uid, ForwardPacket(
            uid=subscriber.uid,
            seq=subscriber.next_forward_seq(),
            payload_len=chunk,
            message_id=message.message_id,
            more=index < fragments - 1,
            created_at=message.created_at))


def run_cell_detailed(config: CellConfig) -> CellRun:
    """Build and run a cell; returns the full run object."""
    run = build_cell(config)
    run.sim.run(until=config.duration)
    finalize_run(run)
    return run


def run_cell(config: CellConfig) -> CellStats:
    """Build and run a cell; returns just the statistics."""
    return run_cell_detailed(config).stats


def finalize_run(run: CellRun) -> None:
    """Post-run accounting for a manually driven cell.

    Callers that ``build_cell`` + ``sim.run`` themselves (tracing and
    observability instrumentation do, to attach hooks before the run)
    must call this to fold the radio audits into the stats and give the
    invariant monitor its final audit.
    """
    stats = run.stats
    for subscriber in run.data_users:
        stats.radio_violations += len(subscriber.radio.violations)
    for unit in run.gps_units:
        stats.radio_violations += len(unit.radio.violations)
    if run.monitor is not None:
        run.monitor.check_now()  # one last audit of the final state
