"""Half-duplex radio model for mobile subscribers (Section 2.2).

A mobile subscriber can transmit or receive, never both, and a 20 ms
guard is required when switching between the two.  The base station has a
separate transmitter and receiver and is exempt.

Rather than *enforcing* the constraint (the scheduler is responsible for
never producing a conflicting schedule), the radio *audits* it: every
claimed transmit/receive interval is checked against the already claimed
ones, and violations are recorded.  Integration tests assert that a full
simulation finishes with zero violations -- which is exactly the property
the paper's two-control-field design and scheduling constraints exist to
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.phy import timing
from repro.phy.intervals import spans_overlap

TX = "tx"
RX = "rx"


class RadioClaim:
    """One scheduled use of the radio.

    A plain ``__slots__`` class: subscribers record a claim for every
    control-field reception and every scheduled slot, making this one of
    the most-constructed objects in a cell run.
    """

    __slots__ = ("kind", "start", "end", "label")

    def __init__(self, kind: str, start: float, end: float, label: str = ""):
        self.kind = kind  # TX or RX
        self.start = start
        self.end = end
        self.label = label

    def __repr__(self) -> str:
        return (f"RadioClaim(kind={self.kind!r}, start={self.start!r}, "
                f"end={self.end!r}, label={self.label!r})")


@dataclass(frozen=True)
class RadioViolation:
    """A half-duplex conflict between two claims."""

    first: RadioClaim
    second: RadioClaim
    reason: str


class HalfDuplexRadio:
    """Audits one subscriber's transmit/receive timeline."""

    def __init__(self, owner: str = "",
                 turnaround: float = timing.MS_TURNAROUND_TIME):
        self.owner = owner
        self.turnaround = turnaround
        self._claims: List[RadioClaim] = []
        self.violations: List[RadioViolation] = []

    def claim(self, kind: str, start: float, end: float,
              label: str = "") -> RadioClaim:
        """Record a scheduled TX/RX interval and audit it."""
        if kind not in (TX, RX):
            raise ValueError(f"kind must be 'tx' or 'rx', got {kind!r}")
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        claim = RadioClaim(kind, start, end, label)
        turnaround = self.turnaround
        audit = self._audit_pair
        for other in reversed(self._claims):
            # Claims are appended in loosely increasing time order; stop
            # scanning once we are past any possible conflict window.
            if other.end + turnaround <= start:
                break
            audit(other, claim)
        self._claims.append(claim)
        return claim

    def _audit_pair(self, first: RadioClaim, second: RadioClaim) -> None:
        overlap = spans_overlap(first.start, first.end,
                                second.start, second.end)
        if overlap:
            if first.kind == second.kind == RX:
                return  # hearing two broadcasts at once is fine
            self.violations.append(RadioViolation(
                first=first, second=second,
                reason="transmit/receive overlap"))
            return
        if first.kind != second.kind:
            gap = max(second.start - first.end, first.start - second.end)
            if gap < self.turnaround - 1e-9:
                self.violations.append(RadioViolation(
                    first=first, second=second,
                    reason=f"turnaround gap {gap * 1000:.1f} ms < "
                           f"{self.turnaround * 1000:.0f} ms"))

    def prune(self, before: float) -> None:
        """Drop claims that ended before ``before`` (memory bound)."""
        horizon = before - self.turnaround
        self._claims = [claim for claim in self._claims
                        if claim.end >= horizon]

    @property
    def claim_count(self) -> int:
        return len(self._claims)

    def tx_busy_until(self) -> float:
        """End of the latest scheduled transmission (0.0 if none).

        Handoff uses this: a subscriber whose final uplink slot spills
        past the cycle boundary is still on the air when it re-tunes,
        and must not start listening in the new cell until the
        transmission (plus turnaround) has cleared.
        """
        return max((claim.end for claim in self._claims
                    if claim.kind == TX), default=0.0)
