"""MAC packet formats.

Uplink control information is in-band (Section 3.1): it rides either in
the header of regular data packets or in dedicated control packets
(registration / reservation) transmitted in contention slots.  Every
regular packet occupies one RS(64,48) codeword: 384 information bits, of
which this implementation spends 32 on the header (the paper does not
specify a header layout; see DESIGN.md), leaving 352 payload bits
(44 bytes).

GPS packets are 72 information bits (Section 2.1) and are not acknowledged
or retransmitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bits import BitReader, BitWriter
from repro.phy import timing

# -- packet type tags (2 bits in the header) ----------------------------------

TYPE_DATA = 0
TYPE_RESERVATION = 1
TYPE_REGISTRATION = 2

#: 6-bit user-ID sentinel: "no subscriber" (unassigned slot / empty entry).
UNASSIGNED = 63
#: Largest assignable user ID (63 is reserved as the sentinel).
MAX_ASSIGNABLE_UID = 62

#: Subscriber service classes carried in registration requests.
SERVICE_DATA = 0
SERVICE_GPS = 1

HEADER_BITS = 32
#: Effective payload per regular data packet.
PAYLOAD_BYTES = (timing.RS_INFO_BITS - HEADER_BITS) // 8  # 44
PAYLOAD_BITS = PAYLOAD_BYTES * 8

#: Piggyback reservation field width (header): requests up to 15 slots.
PIGGYBACK_BITS = 4
MAX_PIGGYBACK = (1 << PIGGYBACK_BITS) - 1

SEQ_BITS = 12
MAX_SEQ = (1 << SEQ_BITS) - 1


def _check_uid(uid: int) -> None:
    if not 0 <= uid <= MAX_ASSIGNABLE_UID:
        raise ValueError(f"user id {uid} out of range [0, 62]")


class DataPacket:
    """A regular uplink/downlink data packet (one RS codeword).

    Header layout (32 bits):
    uid:6  type:2  piggyback:4  seq:12  payload_len:6  more:1  pad:1

    A ``__slots__`` class: one is allocated per uplink fragment and per
    downlink delivery, so construction is hot.
    """

    __slots__ = ("uid", "seq", "payload_len", "piggyback", "more",
                 "message_id", "created_at", "destination_ein", "payload")

    def __init__(self, uid: int, seq: int, payload_len: int,
                 piggyback: int = 0, more: bool = False,
                 message_id: int = -1, created_at: float = 0.0,
                 destination_ein: Optional[int] = None,
                 payload: bytes = b""):
        _check_uid(uid)
        if not 0 <= payload_len <= PAYLOAD_BYTES:
            raise ValueError(f"payload_len {payload_len} out of range")
        if not 0 <= piggyback <= MAX_PIGGYBACK:
            raise ValueError(f"piggyback {piggyback} out of range")
        if not 0 <= seq <= MAX_SEQ:
            raise ValueError(f"seq {seq} out of range")
        self.uid = uid
        self.seq = seq
        self.payload_len = payload_len  # bytes actually used
        self.piggyback = piggyback  # extra slots requested (implicit resv.)
        self.more = more  # further fragments of the same message follow
        self.message_id = message_id  # simulation-level bookkeeping
        self.created_at = created_at  # simulation-level bookkeeping
        #: Destination EIN for inter-cell forwarding.  Simulation-level:
        #: the paper gives no network-layer wire format, so addressing
        #: rides as metadata (in a real deployment it would occupy the
        #: first payload bytes of the message).
        self.destination_ein = destination_ein
        self.payload = payload

    def __repr__(self) -> str:
        return (f"DataPacket(uid={self.uid}, seq={self.seq}, "
                f"payload_len={self.payload_len}, "
                f"piggyback={self.piggyback}, more={self.more})")

    def encode(self) -> bytes:
        """Serialize into the 48 information bytes of one RS codeword."""
        writer = BitWriter()
        writer.write(self.uid, 6)
        writer.write(TYPE_DATA, 2)
        writer.write(self.piggyback, PIGGYBACK_BITS)
        writer.write(self.seq, SEQ_BITS)
        writer.write(self.payload_len, 6)
        writer.write_bool(self.more)
        writer.write(0, 1)
        body = self.payload[:self.payload_len]
        writer.write_bytes(body + bytes(PAYLOAD_BYTES - len(body)))
        return writer.getvalue(pad_to_bytes=timing.RS_INFO_BYTES)

    @classmethod
    def decode(cls, data: bytes) -> "DataPacket":
        reader = BitReader(data)
        uid = reader.read(6)
        ptype = reader.read(2)
        if ptype != TYPE_DATA:
            raise ValueError(f"not a data packet (type={ptype})")
        piggyback = reader.read(PIGGYBACK_BITS)
        seq = reader.read(SEQ_BITS)
        payload_len = reader.read(6)
        more = reader.read_bool()
        reader.read(1)
        payload = reader.read_bytes(PAYLOAD_BYTES)[:payload_len]
        return cls(uid=uid, seq=seq, payload_len=payload_len,
                   piggyback=piggyback, more=more, payload=payload)


@dataclass
class ReservationPacket:
    """Explicit reservation request sent in a contention slot (Section 3.1).

    Layout: uid:6 type:2 requested:6 pad -> one RS codeword.
    """

    uid: int
    requested: int  # data slots desired

    def __post_init__(self) -> None:
        _check_uid(self.uid)
        if not 0 <= self.requested <= 63:
            raise ValueError(f"requested {self.requested} out of range")

    def encode(self) -> bytes:
        writer = BitWriter()
        writer.write(self.uid, 6)
        writer.write(TYPE_RESERVATION, 2)
        writer.write(self.requested, 6)
        return writer.getvalue(pad_to_bytes=timing.RS_INFO_BYTES)

    @classmethod
    def decode(cls, data: bytes) -> "ReservationPacket":
        reader = BitReader(data)
        uid = reader.read(6)
        ptype = reader.read(2)
        if ptype != TYPE_RESERVATION:
            raise ValueError(f"not a reservation packet (type={ptype})")
        requested = reader.read(6)
        return cls(uid=uid, requested=requested)


@dataclass
class RegistrationPacket:
    """Registration request from a new subscriber (Section 3.2).

    Sent in a contention slot; the subscriber has no user ID yet, so the
    packet carries the permanent 16-bit EIN and the requested service
    class.  Layout: uid=63:6 type:2 ein:16 service:2 pad.

    EINs that overflow the 16-bit wire field are allowed on the packet
    object (multi-cell cities address more than 2**16 - 1 subscribers
    and never run full fidelity); ``encode`` enforces the field width.
    """

    ein: int
    service: int = SERVICE_DATA

    def __post_init__(self) -> None:
        reserved = (1 << timing.EIN_BITS) - 1  # 0xFFFF: the ACK sentinel
        if self.ein < 0 or self.ein & reserved == reserved:
            raise ValueError(f"EIN {self.ein} out of range (0xFFFF reserved)")
        if self.service not in (SERVICE_DATA, SERVICE_GPS):
            raise ValueError(f"unknown service class {self.service}")

    def encode(self) -> bytes:
        if self.ein >= (1 << timing.EIN_BITS) - 1:
            raise ValueError(
                f"EIN {self.ein} does not fit the {timing.EIN_BITS}-bit "
                f"wire field")
        writer = BitWriter()
        writer.write(UNASSIGNED, 6)
        writer.write(TYPE_REGISTRATION, 2)
        writer.write(self.ein, timing.EIN_BITS)
        writer.write(self.service, 2)
        return writer.getvalue(pad_to_bytes=timing.RS_INFO_BYTES)

    @classmethod
    def decode(cls, data: bytes) -> "RegistrationPacket":
        reader = BitReader(data)
        reader.read(6)  # sentinel uid
        ptype = reader.read(2)
        if ptype != TYPE_REGISTRATION:
            raise ValueError(f"not a registration packet (type={ptype})")
        ein = reader.read(timing.EIN_BITS)
        service = reader.read(2)
        return cls(ein=ein, service=service)


class GPSPacket:
    """A 72-bit GPS location report (Section 2.1).

    Layout: uid:6 seq:10 latitude:28 longitude:28 = 72 bits.  GPS packets
    are never retransmitted; a corrupted report is simply dropped.

    A ``__slots__`` class: every active GPS unit allocates one per cycle.
    """

    __slots__ = ("uid", "seq", "latitude", "longitude", "created_at")

    def __init__(self, uid: int, seq: int, latitude: int = 0,
                 longitude: int = 0, created_at: float = 0.0):
        _check_uid(uid)
        if not 0 <= seq < (1 << 10):
            raise ValueError(f"seq {seq} out of range")
        if not 0 <= latitude < (1 << 28):
            raise ValueError(f"latitude {latitude} out of range")
        if not 0 <= longitude < (1 << 28):
            raise ValueError(f"longitude {longitude} out of range")
        self.uid = uid
        self.seq = seq
        self.latitude = latitude
        self.longitude = longitude
        self.created_at = created_at  # simulation-level bookkeeping

    def __repr__(self) -> str:
        return (f"GPSPacket(uid={self.uid}, seq={self.seq}, "
                f"created_at={self.created_at})")

    def encode(self) -> bytes:
        writer = BitWriter()
        writer.write(self.uid, 6)
        writer.write(self.seq, 10)
        writer.write(self.latitude, 28)
        writer.write(self.longitude, 28)
        return writer.getvalue()  # 9 bytes

    @classmethod
    def decode(cls, data: bytes) -> "GPSPacket":
        reader = BitReader(data)
        uid = reader.read(6)
        seq = reader.read(10)
        latitude = reader.read(28)
        longitude = reader.read(28)
        return cls(uid=uid, seq=seq, latitude=latitude, longitude=longitude)


def decode_uplink(data: bytes):
    """Decode an uplink contention/data codeword by its type tag."""
    reader = BitReader(data)
    reader.read(6)
    ptype = reader.read(2)
    if ptype == TYPE_DATA:
        return DataPacket.decode(data)
    if ptype == TYPE_RESERVATION:
        return ReservationPacket.decode(data)
    if ptype == TYPE_REGISTRATION:
        return RegistrationPacket.decode(data)
    raise ValueError(f"unknown uplink packet type {ptype}")


@dataclass
class ForwardPacket:
    """A downlink data packet queued at the base station."""

    uid: int
    seq: int
    payload_len: int = PAYLOAD_BYTES
    message_id: int = -1
    more: bool = False
    created_at: float = 0.0
    payload: bytes = b""

    def to_data_packet(self) -> DataPacket:
        return DataPacket(uid=self.uid, seq=self.seq % (MAX_SEQ + 1),
                          payload_len=self.payload_len, more=self.more,
                          message_id=self.message_id,
                          created_at=self.created_at, payload=self.payload)
