"""On-air frame wrappers shared by base station and subscribers.

The channel layer transports :class:`~repro.phy.channel.Transmission`
objects whose payload is one of these wrappers.  They carry the MAC
packet plus the slot coordinates the receiver needs for bookkeeping
(which notification cycle, which slot); on real hardware those
coordinates are implicit in the timing, here they save the receiver from
reverse-engineering them from timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

SLOT_GPS = "gps"
SLOT_DATA = "data"

KIND_GPS = "gps"
KIND_DATA = "data"
KIND_RESERVATION = "reservation"
KIND_REGISTRATION = "registration"


@dataclass
class UplinkFrame:
    """A reverse-channel transmission's payload."""

    kind: str  # one of the KIND_* constants
    cycle: int
    slot_kind: str  # SLOT_GPS or SLOT_DATA
    slot_index: int
    packet: Any
    uid: Optional[int] = None
    contention: bool = False
    #: When the sender first tried to get this request through (for
    #: reservation/registration latency measurements).
    first_attempt_time: float = 0.0
    #: Number of the cycle in which the first attempt happened.
    first_attempt_cycle: int = 0


@dataclass
class DownlinkFrame:
    """A forward-channel transmission's payload."""

    kind: str  # 'cf1', 'cf2', or 'data'
    cycle: int
    slot_index: int = -1
    uid: Optional[int] = None  # destination for data frames
    packet: Any = None
