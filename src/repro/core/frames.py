"""On-air frame wrappers shared by base station and subscribers.

The channel layer transports :class:`~repro.phy.channel.Transmission`
objects whose payload is one of these wrappers.  They carry the MAC
packet plus the slot coordinates the receiver needs for bookkeeping
(which notification cycle, which slot); on real hardware those
coordinates are implicit in the timing, here they save the receiver from
reverse-engineering them from timestamps.
"""

from __future__ import annotations

from typing import Any, Optional

SLOT_GPS = "gps"
SLOT_DATA = "data"

KIND_GPS = "gps"
KIND_DATA = "data"
KIND_RESERVATION = "reservation"
KIND_REGISTRATION = "registration"


class UplinkFrame:
    """A reverse-channel transmission's payload.

    A plain ``__slots__`` class: one is allocated per reverse-channel
    transmission, which makes frame construction one of the hottest
    allocation sites in a cell run.
    """

    __slots__ = ("kind", "cycle", "slot_kind", "slot_index", "packet",
                 "uid", "contention", "first_attempt_time",
                 "first_attempt_cycle")

    def __init__(self, kind: str, cycle: int, slot_kind: str,
                 slot_index: int, packet: Any,
                 uid: Optional[int] = None, contention: bool = False,
                 first_attempt_time: float = 0.0,
                 first_attempt_cycle: int = 0):
        self.kind = kind  # one of the KIND_* constants
        self.cycle = cycle
        self.slot_kind = slot_kind  # SLOT_GPS or SLOT_DATA
        self.slot_index = slot_index
        self.packet = packet
        self.uid = uid
        self.contention = contention
        #: When the sender first tried to get this request through (for
        #: reservation/registration latency measurements).
        self.first_attempt_time = first_attempt_time
        #: Number of the cycle in which the first attempt happened.
        self.first_attempt_cycle = first_attempt_cycle

    def __repr__(self) -> str:
        return (f"UplinkFrame(kind={self.kind!r}, cycle={self.cycle}, "
                f"slot_kind={self.slot_kind!r}, "
                f"slot_index={self.slot_index}, uid={self.uid}, "
                f"contention={self.contention})")


class DownlinkFrame:
    """A forward-channel transmission's payload."""

    __slots__ = ("kind", "cycle", "slot_index", "uid", "packet")

    def __init__(self, kind: str, cycle: int, slot_index: int = -1,
                 uid: Optional[int] = None, packet: Any = None):
        self.kind = kind  # 'cf1', 'cf2', or 'data'
        self.cycle = cycle
        self.slot_index = slot_index
        self.uid = uid  # destination for data frames
        self.packet = packet

    def __repr__(self) -> str:
        return (f"DownlinkFrame(kind={self.kind!r}, cycle={self.cycle}, "
                f"slot_index={self.slot_index}, uid={self.uid})")
