"""GPS subscribers: the real-time bus-tracking application (Section 2.1).

Each bus carries a GPS unit that produces short (72-bit) location reports
periodically.  Reports are *not* retransmitted on loss; timeliness is the
QoS goal: an active GPS user must be able to transmit a report within
4 seconds of its arrival (the paper's access-delay requirement), which
OSU-MAC guarantees by assigning every active GPS user one GPS slot per
notification cycle, consolidated under rules R1--R3.

The unit registers through the same contention procedure as data users
(service class GPS), then transmits its freshest pending report in its
assigned GPS slot each cycle.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.fields import ControlFields
from repro.core.frames import KIND_GPS, SLOT_GPS, UplinkFrame
from repro.core.packets import GPSPacket, SERVICE_GPS
from repro.core.radio import TX
from repro.core.subscriber import (
    ACTIVE,
    GPS_ON_AIR,
    REGISTERING,
    SYNCING,
    SubscriberBase,
)
from repro.phy.channel import Transmission


class GpsSubscriber(SubscriberBase):
    """A bus-mounted GPS unit."""

    __slots__ = ("report_period", "_pending_report", "_seq",
                 "_last_tx_time", "_missing_cycles", "reports_generated",
                 "reports_superseded")

    service = SERVICE_GPS

    def __init__(self, *args, report_period: Optional[float] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.report_period = (report_period
                              if report_period is not None
                              else self.config.gps_report_period)
        self._pending_report: Optional[GPSPacket] = None
        self._seq = 0
        self._last_tx_time: Optional[float] = None
        #: Consecutive heard control fields with no GPS slot for us.
        self._missing_cycles = 0
        self.reports_generated = 0
        self.reports_superseded = 0
        self.sim.process(self._report_process(), name=f"{self.name}-gps")

    # -- report generation ----------------------------------------------------------

    def _report_process(self) -> Iterator:
        if self.entry_time > self.sim.now:
            yield self.sim.timeout(self.entry_time - self.sim.now)
        # Random phase so report arrivals are uncorrelated with slots.
        yield self.sim.timeout(self.rng.uniform(0, self.report_period))
        while True:
            if self.alive:
                self._generate_report()
            yield self.sim.timeout(self.report_period)

    def _generate_report(self) -> None:
        report = GPSPacket(
            uid=self.uid if self.uid is not None else 0,
            seq=self._seq,
            latitude=self.rng.randrange(1 << 28),
            longitude=self.rng.randrange(1 << 28),
            created_at=self.sim.now)
        self._seq = (self._seq + 1) % (1 << 10)
        self.reports_generated += 1
        if self._pending_report is not None:
            # A newer location fix supersedes the stale one (the MAC never
            # queues GPS backlog; only timeliness matters).
            self.reports_superseded += 1
        self._pending_report = report

    # -- control-field handling -------------------------------------------------------

    def _handle_cf(self, cf: ControlFields, listen_end: float) -> None:
        if self.state == SYNCING:
            self.begin_registration()
        self._check_registration_ack(cf)
        if self.state == REGISTERING:
            self._attempt_registration(cf, listen_end)
            return
        if self.state != ACTIVE:
            return
        try:
            slot_index = cf.gps_schedule.index(self.uid)
        except ValueError:
            if self.config.liveness_lease_cycles:
                # Every active GPS user is scheduled every cycle
                # (Section 2.1), so a missing slot in a *heard* control
                # field means the base station dropped us.
                self._missing_cycles += 1
                if (self._missing_cycles
                        >= self.config.eviction_detect_cycles):
                    self._suspect_eviction()
                    self._attempt_registration(cf, listen_end)
            return
        self._missing_cycles = 0
        layout = cf.layout()
        if slot_index >= layout.gps_slots:
            return
        start = cf.cycle_start + layout.gps_offsets[slot_index]
        self.radio.claim(TX, start, start + GPS_ON_AIR,
                         f"gps@{slot_index}")
        self.sim.call_at(start, lambda: self._transmit_report(
            cf.cycle, slot_index, start))

    def _on_activated(self, cf: ControlFields) -> None:
        # Discard reports that aged out while we were registering: the
        # access-delay QoS clock starts when the unit becomes active.
        if (self._pending_report is not None
                and self._pending_report.created_at < self.sim.now):
            self._pending_report = None
        self._last_tx_time = None
        self._missing_cycles = 0

    def _on_crashed(self) -> None:
        # The pending fix dies with the unit; fresh state on restart.
        self._pending_report = None
        self._last_tx_time = None
        self._missing_cycles = 0

    def _on_eviction_suspected(self) -> None:
        self._missing_cycles = 0

    def transfer_state(self) -> dict:
        """Report-sequence continuity for a cross-shard handoff.

        Pending location fixes do not travel: they would age out during
        re-registration anyway (see :meth:`_on_activated`), matching the
        protocol's no-backlog rule for GPS reports.
        """
        state = super().transfer_state()
        state.update({"kind": "gps", "seq": self._seq,
                      "reports_generated": self.reports_generated})
        return state

    def restore_transfer_state(self, state: dict) -> None:
        super().restore_transfer_state(state)
        self._seq = int(state.get("seq", 0))
        self.reports_generated = int(
            state.get("reports_generated", 0))

    def _transmit_report(self, cycle: int, slot_index: int,
                         start: float) -> None:
        if not self.alive:
            return  # crashed between scheduling and the slot
        measured = self.stats.in_measurement(start)
        report = self._pending_report
        fresh_sample = report is None
        if fresh_sample:
            # No queued report (e.g. the slot just moved *earlier* via an
            # R3 reassignment, landing before this cycle's periodic
            # sample): the GPS receiver has a continuous fix, so the unit
            # samples its current position and transmits that.  The slot
            # is never wasted and the inter-transmission gap stays
            # bounded by one cycle.
            report = GPSPacket(
                uid=self.uid, seq=self._seq,
                latitude=self.rng.randrange(1 << 28),
                longitude=self.rng.randrange(1 << 28),
                created_at=start)
            self._seq = (self._seq + 1) % (1 << 10)
        self._pending_report = None
        if measured:
            self.stats.gps_packets_sent += 1
            if not fresh_sample:
                # Access delay is defined over *queued* report arrivals
                # (Section 2.1); an on-demand sample has zero delay by
                # construction and would only dilute the statistic.
                delay = start - report.created_at
                self.stats.gps_access_delay.push(delay)
                if delay > self.config.gps_deadline:
                    self.stats.gps_deadline_misses += 1
            if (self._last_tx_time is not None
                    and start - self._last_tx_time
                    > self.config.gps_deadline + 1e-9):
                self.stats.gps_deadline_misses += 1
        self._last_tx_time = start
        frame = UplinkFrame(kind=KIND_GPS, cycle=cycle,
                            slot_kind=SLOT_GPS, slot_index=slot_index,
                            packet=report, uid=self.uid)
        self.reverse.transmit(
            Transmission(sender=self.name, payload=frame, start=start,
                         duration=GPS_ON_AIR, kind=KIND_GPS,
                         codewords=[b""]),
            self.reverse_link)
