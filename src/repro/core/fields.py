"""The forward-channel control-field block (Section 3.1, Fig. 2).

Each notification cycle carries two control-field sets.  One set is
630 information bits packed into two RS(64,48) codewords (768 information
bits; the remaining 138 bits are reserved -- we spend 24 of the reserved
bits on a cycle counter and a set tag, which is within the paper's
"reserved for future use" budget):

========================  ====  =========================================
field                     bits  contents
========================  ====  =========================================
GPS schedule              48    8 x 6-bit user IDs for the GPS slots
Reverse schedule          54    9 x 6-bit user IDs for the reverse data
                                slots (M = 9); 63 = unassigned/contention
Forward schedule          222   37 x 6-bit user IDs for the forward data
                                slots (N = 37); 63 = idle
Reverse ACKs              198   9 x 22-bit entries: 16-bit EIN + 6-bit
                                user ID (see AckEntry)
Paging                    108   18 x 6-bit user IDs of paged subscribers
========================  ====  =========================================

ACK entry conventions (the paper gives the field's purpose, not its bit
layout):

* empty                -> (ein=0xFFFF, uid=63)
* data/reservation ACK -> (ein=0xFFFF, uid=<acknowledged user>)
* registration reply   -> (ein=<requester's EIN>, uid=<assigned user id>)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.bits import BitReader, BitWriter
from repro.core.packets import UNASSIGNED
from repro.phy import timing
from repro.phy.rs import RS_64_48, ReedSolomon

EIN_EMPTY = 0xFFFF  # sentinel: "no EIN in this ACK entry"


@dataclass(frozen=True)
class AckEntry:
    """One 22-bit reverse-ACK entry."""

    ein: int = EIN_EMPTY
    uid: int = UNASSIGNED

    @property
    def is_empty(self) -> bool:
        return self.ein == EIN_EMPTY and self.uid == UNASSIGNED

    @property
    def is_registration_reply(self) -> bool:
        return self.ein != EIN_EMPTY

    @property
    def is_data_ack(self) -> bool:
        return self.ein == EIN_EMPTY and self.uid != UNASSIGNED

    @staticmethod
    def empty() -> "AckEntry":
        return AckEntry()

    @staticmethod
    def data_ack(uid: int) -> "AckEntry":
        return AckEntry(ein=EIN_EMPTY, uid=uid)

    @staticmethod
    def registration_reply(ein: int, uid: int) -> "AckEntry":
        return AckEntry(ein=ein, uid=uid)


def _pad(entries: List[Optional[int]], size: int) -> List[int]:
    padded = [UNASSIGNED if entry is None else entry for entry in entries]
    if len(padded) > size:
        raise ValueError(f"too many entries ({len(padded)} > {size})")
    padded += [UNASSIGNED] * (size - len(padded))
    return padded


@dataclass
class ControlFields:
    """One control-field set, as broadcast on the forward channel.

    Schedules use ``None`` for unassigned entries at the Python level; the
    wire format maps those to the 6-bit sentinel 63.
    """

    cycle: int
    which: int  # 1 = first set, 2 = second set
    gps_schedule: List[Optional[int]] = field(default_factory=list)
    reverse_schedule: List[Optional[int]] = field(default_factory=list)
    forward_schedule: List[Optional[int]] = field(default_factory=list)
    reverse_acks: List[AckEntry] = field(default_factory=list)
    paging: List[Optional[int]] = field(default_factory=list)
    #: Simulation-level: absolute start time of the forward cycle this set
    #: belongs to.  Not on the air (receivers infer it from sync).
    cycle_start: float = 0.0

    def __post_init__(self) -> None:
        if self.which not in (1, 2):
            raise ValueError(f"which must be 1 or 2, got {self.which}")
        # Lazy derived-view caches.  A control-field set is immutable once
        # built (the base station hands each receiver the same object and
        # nobody writes to the schedules), but every subscriber in the cell
        # re-derives the same views from it; caching them here turns ~10
        # identical recomputations per set into one.  Not dataclass fields:
        # equality/repr must keep comparing the wire content only.
        self._layout_cache: Optional[timing.ReverseLayout] = None
        self._contention_cache: Optional[List[int]] = None
        self._reverse_map: Optional[dict] = None
        self._forward_map: Optional[dict] = None

    # -- derived views ------------------------------------------------------

    @property
    def active_gps_users(self) -> int:
        """Number of GPS users announced; implies the reverse format."""
        return sum(1 for uid in self.gps_schedule if uid is not None)

    @property
    def reverse_format(self) -> int:
        return 1 if self.active_gps_users > timing.FORMAT2_GPS_SLOTS else 2

    def layout(self) -> timing.ReverseLayout:
        layout = self._layout_cache
        if layout is None:
            layout = timing.reverse_layout(self.active_gps_users)
            self._layout_cache = layout
        return layout

    def contention_slots(self) -> List[int]:
        """Indices of unassigned reverse data slots (= contention slots).

        The *last* data slot is excluded: it overlaps the next cycle's
        first control-field set, so a contender there could neither hear
        its ACK (which only CF2 carries) nor the next schedule.  Only a
        subscriber *assigned* that slot -- which therefore knows to listen
        to CF2 -- may use it (Section 3.4, Problem 2).

        The returned list is a shared cache; callers must not mutate it.
        """
        slots = self._contention_cache
        if slots is None:
            layout = self.layout()
            reverse_schedule = self.reverse_schedule
            known = len(reverse_schedule)
            slots = [index for index in range(layout.data_slots - 1)
                     if index >= known or reverse_schedule[index] is None]
            self._contention_cache = slots
        return slots

    def reverse_slots_of(self, uid: int) -> Tuple[int, ...]:
        """Reverse data slot indices assigned to ``uid`` (cached per set)."""
        table = self._reverse_map
        if table is None:
            table = {}
            for index, owner in enumerate(self.reverse_schedule):
                if owner is not None:
                    table.setdefault(owner, []).append(index)
            table = {owner: tuple(indices)
                     for owner, indices in table.items()}
            self._reverse_map = table
        return table.get(uid, ())

    def forward_slots_of(self, uid: int) -> Tuple[int, ...]:
        """Forward data slot indices assigned to ``uid`` (cached per set)."""
        table = self._forward_map
        if table is None:
            table = {}
            for index, owner in enumerate(self.forward_schedule):
                if owner is not None:
                    table.setdefault(owner, []).append(index)
            table = {owner: tuple(indices)
                     for owner, indices in table.items()}
            self._forward_map = table
        return table.get(uid, ())

    # -- wire format ----------------------------------------------------------

    def encode(self) -> bytes:
        """Pack into the 96 information bytes of two RS codewords."""
        writer = BitWriter()
        for uid in _pad(self.gps_schedule, timing.GPS_SCHEDULE_ENTRIES):
            writer.write(uid, 6)
        for uid in _pad(self.reverse_schedule,
                        timing.REVERSE_SCHEDULE_ENTRIES):
            writer.write(uid, 6)
        for uid in _pad(self.forward_schedule,
                        timing.FORWARD_SCHEDULE_ENTRIES):
            writer.write(uid, 6)
        acks = list(self.reverse_acks)
        if len(acks) > timing.REVERSE_ACK_ENTRIES:
            raise ValueError("too many ACK entries")
        acks += [AckEntry.empty()] * (timing.REVERSE_ACK_ENTRIES - len(acks))
        for entry in acks:
            writer.write(entry.ein, 16)
            writer.write(entry.uid, 6)
        for uid in _pad(self.paging, timing.PAGING_ENTRIES):
            writer.write(uid, 6)
        assert writer.bit_length == timing.CONTROL_FIELD_USED_BITS
        # Reserved bits: 16-bit cycle counter + 2-bit set tag.
        writer.write(self.cycle & 0xFFFF, 16)
        writer.write(self.which, 2)
        return writer.getvalue(
            pad_to_bytes=timing.CONTROL_FIELD_CODEWORDS
            * timing.RS_INFO_BYTES)

    @classmethod
    def decode(cls, data: bytes) -> "ControlFields":
        reader = BitReader(data)

        def read_uids(count: int) -> List[Optional[int]]:
            return [None if value == UNASSIGNED else value
                    for value in (reader.read(6) for _ in range(count))]

        gps_schedule = read_uids(timing.GPS_SCHEDULE_ENTRIES)
        reverse_schedule = read_uids(timing.REVERSE_SCHEDULE_ENTRIES)
        forward_schedule = read_uids(timing.FORWARD_SCHEDULE_ENTRIES)
        reverse_acks = [AckEntry(ein=reader.read(16), uid=reader.read(6))
                        for _ in range(timing.REVERSE_ACK_ENTRIES)]
        paging = read_uids(timing.PAGING_ENTRIES)
        cycle = reader.read(16)
        which = reader.read(2)
        return cls(cycle=cycle, which=which,
                   gps_schedule=gps_schedule,
                   reverse_schedule=reverse_schedule,
                   forward_schedule=forward_schedule,
                   reverse_acks=reverse_acks,
                   paging=paging)

    def to_codewords(self, codec: ReedSolomon = RS_64_48) -> List[bytes]:
        """RS-encode into the two on-air codewords."""
        info = self.encode()
        return [codec.encode(info[offset:offset + codec.k])
                for offset in range(0, len(info), codec.k)]

    @classmethod
    def from_codewords(cls, codewords: List[bytes],
                       codec: ReedSolomon = RS_64_48) -> "ControlFields":
        """Decode from received codewords; raises RSDecodeFailure on loss."""
        info = b"".join(codec.decode(codeword) for codeword in codewords)
        return cls.decode(info)
