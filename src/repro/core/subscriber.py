"""Mobile subscribers: registration state machine and the data user.

A mobile subscriber entering a cell (Section 3.2):

1. listens to the forward channel to synchronize and learn the contention
   slot positions (state ``SYNCING``),
2. transmits a registration request in a randomly chosen contention slot,
   *persisting* every cycle on collision (state ``REGISTERING``) --
   registration has priority over reservation/data contention, which back
   off instead,
3. on seeing its (EIN, user ID) pair in the reverse-ACK field, becomes
   ``ACTIVE``.

An active data subscriber queues e-mail messages fragmented into 44-byte
payload packets and obtains reverse data slots by (Section 3.1):

* an explicit reservation packet in a contention slot,
* a piggyback reservation field in the header of every data packet it
  transmits (the dominant mechanism under load), or
* transmitting a data packet directly in a contention slot (backing off
  *longer* on collision than reservation packets do).

Subscribers are half-duplex: every planned transmit/receive is claimed on
a :class:`~repro.core.radio.HalfDuplexRadio`, which audits the 20 ms
turnaround constraint.  The subscriber scheduled in the last reverse data
slot of a cycle listens to the *second* control-field set of the next
cycle (Section 3.4, Problem 2).
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from repro.core.config import CellConfig
from repro.core.fields import ControlFields
from repro.core.frames import (
    DownlinkFrame,
    KIND_DATA,
    KIND_REGISTRATION,
    KIND_RESERVATION,
    SLOT_DATA,
    UplinkFrame,
)
from repro.core.packets import (
    DataPacket,
    MAX_PIGGYBACK,
    MAX_SEQ,
    PAYLOAD_BYTES,
    RegistrationPacket,
    ReservationPacket,
    SERVICE_DATA,
)
from repro.core.radio import HalfDuplexRadio, RX, TX
from repro.metrics import CellStats
from repro.phy import timing
from repro.phy.channel import (
    ForwardChannel,
    Link,
    ReverseChannel,
    Transmission,
)
from repro.phy.rs import RS_64_48
from repro.sim.core import Simulator
from repro.traffic.messages import Message

SYNCING = "syncing"
REGISTERING = "registering"
ACTIVE = "active"
FAILED = "failed"
CRASHED = "crashed"
#: Left this cell for good (cross-shard handoff): the object stays
#: behind as an inert husk while a transfer record re-creates the
#: subscriber in its destination cell (see ``repro.shard``).
DEPARTED = "departed"

#: On-air time of a packet inside a reverse data slot (slot minus guard).
DATA_ON_AIR = timing.DATA_SLOT_TIME - timing.GUARD_TIME
GPS_ON_AIR = timing.GPS_SLOT_TIME - timing.GUARD_TIME


class SubscriberBase:
    """Registration machinery shared by data and GPS subscribers.

    Per-subscriber hot state lives on ``__slots__``: a cell holds a dozen
    subscribers, each dispatching on every control-field set, and
    dict-free attribute access shaves the per-event constant.  Subclasses
    declare their own slots for their additional state.
    """

    __slots__ = ("sim", "config", "ein", "reverse", "forward_link",
                 "reverse_link", "stats", "rng", "entry_time", "name",
                 "state", "uid", "radio", "activated_at",
                 "forward_channel", "alive", "crashes",
                 "recovery_started_at", "_cf2_cycle", "_registration",
                 "_reregister_not_before")

    service = SERVICE_DATA

    def __init__(self, sim: Simulator, config: CellConfig, ein: int,
                 forward: ForwardChannel, reverse: ReverseChannel,
                 forward_link: Link, reverse_link: Link,
                 stats: CellStats, rng: random.Random,
                 entry_time: float = 0.0, name: str = ""):
        self.sim = sim
        self.config = config
        self.ein = ein
        self.reverse = reverse
        self.forward_link = forward_link
        self.reverse_link = reverse_link
        self.stats = stats
        self.rng = rng
        self.entry_time = entry_time
        self.name = name or f"sub-{ein}"

        self.state = SYNCING
        self.uid: Optional[int] = None
        self.radio = HalfDuplexRadio(owner=self.name)
        self.activated_at: Optional[float] = None
        self.forward_channel = forward
        #: False while crashed: the radio is off, nothing is heard or
        #: transmitted (fault injection; see ``repro.faults``).
        self.alive = True
        self.crashes = 0
        #: Set on restart / suspected eviction; cleared (and pushed into
        #: ``stats.recovery_latency_cycles``) when registration completes.
        self.recovery_started_at: Optional[float] = None

        #: Cycle number in which this subscriber must listen to the second
        #: control-field set (because it is transmitting in the previous
        #: cycle's last reverse data slot while CF1 is on the air).
        self._cf2_cycle: Optional[int] = None
        self._registration: Optional[Dict] = None  # pending attempt record
        #: Seeded post-eviction backoff: no registration attempts before
        #: this simulated time (see ``eviction_backoff_jitter_cycles``).
        self._reregister_not_before = 0.0

        forward.attach(ein, forward_link, self._on_forward)

    # -- forward-channel reception dispatch ------------------------------------

    def _on_forward(self, transmission: Transmission, ok: bool) -> None:
        if not self.alive or self.sim.now < self.entry_time:
            return
        frame: DownlinkFrame = transmission.payload
        if frame.kind in ("cf1", "cf2"):
            cf = frame.packet
            if ok and transmission.decoded_info is not None:
                # Full fidelity: operate on the control fields as decoded
                # from the received RS codewords, not the logical object.
                cf = ControlFields.decode(transmission.decoded_info)
                cf.cycle_start = frame.packet.cycle_start
            self._on_cf(cf, ok)
        elif frame.kind == "data":
            if ok and transmission.decoded_info is not None:
                decoded = DataPacket.decode(transmission.decoded_info)
                if (decoded.uid, decoded.seq) \
                        != (frame.packet.uid, frame.packet.seq):
                    raise AssertionError("downlink wire decode mismatch")
            self._on_forward_data(frame, ok)

    def _on_cf(self, cf: ControlFields, ok: bool) -> None:
        which = cf.which
        listen_second = (self._cf2_cycle == cf.cycle)
        if listen_second:
            if which == 1:
                return  # physically transmitting while CF1 is on the air
        elif which == 2:
            return  # not our control-field set
        t0 = cf.cycle_start
        if which == 1:
            self.radio.claim(RX, t0 + timing.CF1_OFFSET,
                             t0 + timing.CF1_END, "cf1")
            listen_end = timing.CF1_END
        else:
            self.radio.claim(RX, t0 + timing.CF2_OFFSET,
                             t0 + timing.CF2_END, "cf2")
            listen_end = timing.CF2_END
        if not ok:
            self.stats.cf_losses += 1
            self._on_cf_lost(cf)
            return
        self._handle_cf(cf, listen_end)
        # Prune only once the claim list has grown: the audit scan in
        # ``claim`` stops at the turnaround horizon regardless, so the
        # only job of pruning is bounding memory.
        radio = self.radio
        if radio.claim_count > 64:
            radio.prune(self.sim.now - 2 * timing.CYCLE_LENGTH)

    # -- hooks for subclasses -------------------------------------------------------

    def _handle_cf(self, cf: ControlFields, listen_end: float) -> None:
        raise NotImplementedError

    def _on_cf_lost(self, cf: ControlFields) -> None:
        """Missed a control-field set: sit the cycle out."""

    def _on_forward_data(self, frame: DownlinkFrame, ok: bool) -> None:
        """Downlink data slots; overridden by the data subscriber."""

    # -- registration ---------------------------------------------------------------

    def _check_registration_ack(self, cf: ControlFields) -> None:
        pending = self._registration
        if pending is None:
            return
        if pending["cycle"] == cf.cycle - 1:
            entry = cf.reverse_acks[pending["slot"]]
            if entry.is_registration_reply and entry.ein == self.ein:
                self.uid = entry.uid
                self.state = ACTIVE
                self.activated_at = self.sim.now
                self._registration = None
                if self.recovery_started_at is not None:
                    self.stats.recovery_latency_cycles.push(
                        (self.sim.now - self.recovery_started_at)
                        / timing.CYCLE_LENGTH)
                    self.recovery_started_at = None
                self._on_activated(cf)
                return
            pending["cycle"] = None  # attempt failed; retry below

    def _attempt_registration(self, cf: ControlFields,
                              listen_end: float) -> None:
        if self.state != REGISTERING:
            return
        if self.sim.now < self._reregister_not_before:
            return  # seeded post-eviction backoff: sit this cycle out
        pending = self._registration
        if pending is not None and pending["cycle"] == cf.cycle:
            return  # attempt already scheduled this cycle
        attempts = pending["attempts"] if pending else 0
        if attempts >= self.config.max_registration_attempts:
            self.state = FAILED
            self.stats.registrations_failed += 1
            self._registration = None
            return
        if (self.config.registration_persistence < 1.0
                and self.rng.random()
                > self.config.registration_persistence):
            return  # p-persistence: sit this cycle out
        slot_index = self._choose_contention_slot(cf, listen_end)
        if slot_index is None:
            return
        if pending is None:
            pending = {"first_cycle": cf.cycle,
                       "first_time": self.sim.now,
                       "attempts": 0}
            self._registration = pending
        pending["cycle"] = cf.cycle
        pending["slot"] = slot_index
        pending["attempts"] = attempts + 1
        self.stats.registration_attempts += 1
        packet = RegistrationPacket(ein=self.ein, service=self.service)
        frame = UplinkFrame(kind=KIND_REGISTRATION, cycle=cf.cycle,
                            slot_kind=SLOT_DATA, slot_index=slot_index,
                            packet=packet, uid=None, contention=True,
                            first_attempt_time=pending["first_time"],
                            first_attempt_cycle=pending["first_cycle"])
        self._schedule_data_slot_tx(cf, slot_index, frame)

    def _on_activated(self, cf: ControlFields) -> None:
        """Subclass hook: registration just succeeded."""

    # -- transmission helpers -----------------------------------------------------

    def _choose_contention_slot(self, cf: ControlFields,
                                listen_end: float) -> Optional[int]:
        """Pick a usable contention slot, or None.

        A slot is usable when (a) it starts at least one turnaround time
        after the control-field set this subscriber listened to, and
        (b) transmitting in it keeps a turnaround margin from every
        forward data slot scheduled *to this subscriber* this cycle --
        the half-duplex constraint the base station cannot enforce for
        spontaneous contention transmissions.
        """
        layout = cf.layout()
        margin = timing.MS_TURNAROUND_TIME
        my_forward = []
        if self.uid is not None:
            for index in cf.forward_slots_of(self.uid):
                start = timing.FORWARD_SLOT_OFFSETS[index]
                my_forward.append(
                    (start, start + timing.FORWARD_SLOT_TIME))
        eligible = []
        earliest = listen_end + margin - 1e-9
        data_offsets = layout.data_offsets
        for index in cf.contention_slots():
            start = data_offsets[index]
            if start < earliest:
                continue
            if my_forward:
                end = start + DATA_ON_AIR
                if any(start - margin < fwd_end and fwd_start < end + margin
                       for fwd_start, fwd_end in my_forward):
                    continue
            eligible.append(index)
        if not eligible:
            return None
        return self.rng.choice(eligible)

    def _encode_uplink(self, packet) -> "list[bytes]":
        """Codewords for an uplink packet (real bits in fidelity mode)."""
        if self.config.full_fidelity:
            return [RS_64_48.encode(packet.encode())]
        return [b""]

    def _schedule_data_slot_tx(self, cf: ControlFields, slot_index: int,
                               frame: UplinkFrame) -> None:
        layout = cf.layout()
        start = cf.cycle_start + layout.data_offsets[slot_index]
        self.radio.claim(TX, start, start + DATA_ON_AIR,
                         f"{frame.kind}@{slot_index}")
        codewords = self._encode_uplink(frame.packet)

        def fire() -> None:
            if not self.alive:
                return  # crashed between scheduling and the slot
            self.reverse.transmit(
                Transmission(sender=self.name, payload=frame,
                             start=start, duration=DATA_ON_AIR,
                             kind=frame.kind, codewords=codewords),
                self.reverse_link)

        self.sim.call_at(start, fire)

    def begin_registration(self) -> None:
        """Move from SYNCING to REGISTERING (called on first CF heard)."""
        if self.state == SYNCING:
            self.state = REGISTERING

    # -- dynamic faults: crash, restart, eviction recovery ------------------

    def crash(self) -> None:
        """Power off mid-run: all volatile MAC state is lost.

        The subscriber stops hearing the forward channel and never
        transmits; already-scheduled slot transmissions are suppressed at
        fire time.  The base station keeps the registration until the
        liveness lease expires -- exactly the zombie-state window the
        fault-injection experiments measure.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.state = CRASHED
        self.uid = None
        self._registration = None
        self._cf2_cycle = None
        self.recovery_started_at = None
        self._reregister_not_before = 0.0
        self._on_crashed()

    def restart(self) -> None:
        """Power back on: re-enter the cell from SYNCING (Section 3.2)."""
        if self.alive:
            return
        self.alive = True
        self.state = SYNCING
        self.activated_at = None
        self.recovery_started_at = self.sim.now
        self._on_restarted()

    def _suspect_eviction(self) -> None:
        """Assume the base station deregistered us; re-register.

        Safe even on a false alarm: a registration request for an EIN
        that is still registered returns the existing record, so the
        subscriber merely re-learns its user ID.
        """
        if self.state != ACTIVE:
            return
        self.state = REGISTERING
        self.uid = None
        self._registration = None
        self._cf2_cycle = None
        self.recovery_started_at = self.sim.now
        self.stats.evictions_detected += 1
        # Mass evictions (a base-station restart drops everyone at
        # once) would otherwise retry in lockstep and keep colliding in
        # the same contention slots; a seeded 0..N-cycle backoff
        # de-synchronizes the survivors deterministically.
        jitter = self.config.eviction_backoff_jitter_cycles
        if jitter > 0:
            self._reregister_not_before = (
                self.sim.now
                + self.rng.randrange(jitter + 1) * timing.CYCLE_LENGTH)
        self._on_eviction_suspected()

    def _on_crashed(self) -> None:
        """Subclass hook: drop volatile application state."""

    def _on_restarted(self) -> None:
        """Subclass hook: the subscriber just powered back on."""

    def _on_eviction_suspected(self) -> None:
        """Subclass hook: reset per-registration transmission state."""

    def depart(self) -> None:
        """Leave this cell for good (cross-shard handoff capture).

        Unlike :meth:`crash`, departing is not a fault: the application
        state has already been captured into a transfer record (see
        :meth:`transfer_state`), so nothing is counted as dropped.  The
        husk left behind stops hearing the forward channel and never
        transmits again (scheduled slot transmissions check ``alive`` at
        fire time, exactly as for crashes).
        """
        self.forward_channel.detach(self.ein)
        self.alive = False
        self.state = DEPARTED
        self.uid = None
        self._registration = None
        self._cf2_cycle = None
        self.recovery_started_at = None
        self._reregister_not_before = 0.0

    # -- cross-cell transfer records ---------------------------------------

    def transfer_state(self) -> Dict:
        """JSON-serializable state that travels in a handoff record.

        The base payload identifies the subscriber; subclasses extend it
        with the application state that survives a handoff (the data
        subscriber's uplink queue, the GPS unit's report sequence).
        """
        return {"ein": self.ein, "kind": "sub",
                "radio_tx_end": self.radio.tx_busy_until()}

    def restore_transfer_state(self, state: Dict) -> None:
        """Adopt a :meth:`transfer_state` payload in the new cell."""
        self._defer_cf1_while_transmitting(
            float(state.get("radio_tx_end", 0.0)))

    def _defer_cf1_while_transmitting(self, tx_end: float) -> None:
        """Skip the next CF1 if a tail transmission is still on the air.

        The last uplink slot of a cycle legitimately spills past the
        cycle boundary; in-cell the protocol handles it by having the
        subscriber catch the CF2 rebroadcast (Section 3.1).  A handoff
        must carry that deferral into the new cell, or the half-duplex
        radio would be told to listen to CF1 mid-transmission.
        """
        if tx_end <= 0.0:
            return
        cycle_length = timing.CYCLE_LENGTH
        next_cycle = math.ceil((self.sim.now - 1e-9) / cycle_length)
        cf1_start = next_cycle * cycle_length + timing.CF1_OFFSET
        if tx_end + self.radio.turnaround > cf1_start:
            self._cf2_cycle = next_cycle

    def relocate(self, forward: ForwardChannel, reverse: ReverseChannel,
                 forward_link: Link, reverse_link: Link) -> None:
        """Hand the subscriber off to another cell.

        The radio re-tunes to the new cell's channels and the subscriber
        re-enters the registration state machine from SYNCING (Section
        3.2: a subscriber that newly enters a cell first listens to the
        forward channel, then registers through a contention slot).
        MAC-level state tied to the old cell (user ID, pending
        request/registration, CF2 listening) is discarded; what survives
        is application state, which subclasses carry over via
        :meth:`_on_relocated`.
        """
        self.forward_channel.detach(self.ein)
        self.forward_channel = forward
        self.reverse = reverse
        self.forward_link = forward_link
        self.reverse_link = reverse_link
        forward.attach(self.ein, forward_link, self._on_forward)
        self.uid = None
        self.state = SYNCING
        self.activated_at = None
        self._registration = None
        self._cf2_cycle = None
        self._defer_cf1_while_transmitting(self.radio.tx_busy_until())
        self._on_relocated()

    def _on_relocated(self) -> None:
        """Subclass hook: carry application state across a handoff."""


class DataSubscriber(SubscriberBase):
    """An active non-real-time (e-mail) subscriber."""

    __slots__ = ("queue", "inflight", "_seq", "_backoff_cycles",
                 "_pending_request", "_assigned_keys", "_assigned_nacks",
                 "_forward_seq", "messages_submitted",
                 "on_message_received")

    service = SERVICE_DATA

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.queue: Deque[DataPacket] = deque()
        self.inflight: Dict[Tuple[int, int], DataPacket] = {}
        self._seq = 0
        self._backoff_cycles = 0
        self._pending_request: Optional[Dict] = None
        #: In-flight keys transmitted in *assigned* (non-contention)
        #: slots; un-ACKed assigned transmissions cannot be collisions,
        #: so a run of them signals deregistration (or a dead link).
        self._assigned_keys: Set[Tuple[int, int]] = set()
        self._assigned_nacks = 0
        self._forward_seq = 0
        self.messages_submitted = 0
        #: Network-layer hook: called with the final DataPacket of each
        #: downlink message received (used for end-to-end delay stats).
        self.on_message_received = None

    # -- application interface --------------------------------------------------

    def next_forward_seq(self) -> int:
        """Allocate the next downlink fragment sequence number.

        The base station's cell-construction helpers call this when
        fragmenting downlink messages into :class:`ForwardPacket`\\ s so
        the per-subscriber sequence space stays consistent without
        reaching into private state.
        """
        seq = self._forward_seq
        self._forward_seq += 1
        return seq

    def submit_message(self, message: Message) -> None:
        """Queue an e-mail for uplink transmission (fragmenting it)."""
        now = self.sim.now
        if self.stats.in_measurement(now):
            self.stats.messages_generated += 1
            self.stats.bytes_offered += message.size_bytes
        if not self.alive:
            # The device is down; its application cannot buffer.
            if self.stats.in_measurement(now):
                self.stats.messages_dropped += 1
            return
        fragments = message.fragments(PAYLOAD_BYTES)
        if len(self.queue) + fragments > self.config.buffer_packets:
            if self.stats.in_measurement(now):
                self.stats.messages_dropped += 1
            return
        self.messages_submitted += 1
        remaining = message.size_bytes
        for index in range(fragments):
            chunk = min(PAYLOAD_BYTES, remaining)
            remaining -= chunk
            self.queue.append(DataPacket(
                uid=self.uid if self.uid is not None else 0,
                seq=self._next_seq(),
                payload_len=chunk,
                more=index < fragments - 1,
                message_id=message.message_id,
                created_at=message.created_at,
                destination_ein=message.destination_ein))

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = (self._seq + 1) % (MAX_SEQ + 1)
        return seq

    # -- control-field handling -------------------------------------------------

    def _handle_cf(self, cf: ControlFields, listen_end: float) -> None:
        if self.state == SYNCING:
            self.begin_registration()
        self._check_registration_ack(cf)
        if self.state == REGISTERING:
            self._attempt_registration(cf, listen_end)
            return
        if self.state != ACTIVE:
            return
        self._process_acks(cf)
        if (self.config.liveness_lease_cycles
                and self._assigned_nacks
                >= self.config.eviction_detect_attempts):
            # Assigned-slot transmissions cannot collide, yet none were
            # ACKed for several cycles: assume we were deregistered.
            self._assigned_nacks = 0
            self._suspect_eviction()
            self._attempt_registration(cf, listen_end)
            return
        self._resolve_pending_request(cf)
        if self.state != ACTIVE:
            # _resolve_pending_request may have concluded we were
            # evicted; start re-registering this very cycle.
            self._attempt_registration(cf, listen_end)
            return
        my_slots = cf.reverse_slots_of(self.uid)
        layout = cf.layout()
        for slot_index in my_slots:
            self._schedule_packet_tx(cf, slot_index)
        if my_slots and my_slots[-1] == layout.data_slots - 1:
            self._cf2_cycle = cf.cycle + 1
        if not my_slots:
            self._maybe_contend(cf, listen_end)
        self._claim_forward_slots(cf)

    def _on_cf_lost(self, cf: ControlFields) -> None:
        """Missed the schedule: requeue in-flight packets, do not transmit."""
        self._requeue_inflight()
        pending = self._pending_request
        if pending is not None and pending.get("await_cycle") is not None:
            self._register_request_failure(pending)

    def _on_activated(self, cf: ControlFields) -> None:
        # Retroactively stamp queued packets with the assigned uid.
        for packet in self.queue:
            packet.uid = self.uid

    def _on_relocated(self) -> None:
        # The uplink queue travels with the subscriber; in-flight packets
        # were never acknowledged by the old cell, so they go back first.
        self._requeue_inflight()
        self._pending_request = None
        self._backoff_cycles = 0

    def transfer_state(self) -> Dict:
        """Uplink queue + sequence state for a cross-shard handoff.

        In-flight packets were never acknowledged by the old cell, so
        they are folded back into the queue head before the snapshot --
        the same contract as an intra-simulator :meth:`relocate`.
        """
        self._requeue_inflight()
        state = super().transfer_state()
        state.update({
            "kind": "data",
            "seq": self._seq,
            "forward_seq": self._forward_seq,
            "messages_submitted": self.messages_submitted,
            "queue": [{
                "seq": packet.seq,
                "payload_len": packet.payload_len,
                "more": packet.more,
                "message_id": packet.message_id,
                "created_at": packet.created_at,
                "destination_ein": packet.destination_ein,
            } for packet in self.queue],
        })
        return state

    def restore_transfer_state(self, state: Dict) -> None:
        super().restore_transfer_state(state)
        self._seq = int(state.get("seq", 0))
        self._forward_seq = int(state.get("forward_seq", 0))
        self.messages_submitted = int(state.get("messages_submitted", 0))
        for entry in state.get("queue", ()):
            self.queue.append(DataPacket(
                uid=self.uid if self.uid is not None else 0,
                seq=int(entry["seq"]),
                payload_len=int(entry["payload_len"]),
                more=bool(entry["more"]),
                message_id=int(entry["message_id"]),
                created_at=float(entry["created_at"]),
                destination_ein=entry.get("destination_ein")))

    def _on_crashed(self) -> None:
        # Volatile buffers are lost with the power.  Every queued or
        # in-flight message tail counts as a dropped message.
        for packet in list(self.queue) + list(self.inflight.values()):
            if (not packet.more
                    and self.stats.in_measurement(packet.created_at)):
                self.stats.messages_dropped += 1
        self.queue.clear()
        self.inflight.clear()
        self._assigned_keys.clear()
        self._assigned_nacks = 0
        self._pending_request = None
        self._backoff_cycles = 0

    def _on_eviction_suspected(self) -> None:
        # Keep the queue (the application state survives) but reset all
        # per-registration transmission machinery.
        self._requeue_inflight()
        self._assigned_keys.clear()
        self._assigned_nacks = 0
        self._pending_request = None
        self._backoff_cycles = 0

    # -- ACK processing ------------------------------------------------------------

    def _process_acks(self, cf: ControlFields) -> None:
        if not self.inflight:
            return
        prev_cycle = cf.cycle - 1
        pending_keys = sorted(
            [key for key in self.inflight if key[0] <= prev_cycle],
            reverse=True)
        for key in pending_keys:
            cycle, slot_index = key
            packet = self.inflight.pop(key)
            assigned = key in self._assigned_keys
            self._assigned_keys.discard(key)
            acked = False
            if cycle == prev_cycle:
                entry = cf.reverse_acks[slot_index]
                acked = entry.is_data_ack and entry.uid == self.uid
            if acked:
                self._assigned_nacks = 0
            else:
                if assigned and cycle == prev_cycle:
                    self._assigned_nacks += 1
                self.queue.appendleft(packet)

    def _requeue_inflight(self) -> None:
        for key in sorted(self.inflight, reverse=True):
            self.queue.appendleft(self.inflight.pop(key))

    # -- data transmission -------------------------------------------------------

    def _schedule_packet_tx(self, cf: ControlFields,
                            slot_index: int) -> None:
        layout = cf.layout()
        start = cf.cycle_start + layout.data_offsets[slot_index]
        self.radio.claim(TX, start, start + DATA_ON_AIR,
                         f"data@{slot_index}")
        self.sim.call_at(start, lambda: self._transmit_data(
            cf.cycle, slot_index, start, contention=False))

    def _transmit_data(self, cycle: int, slot_index: int, start: float,
                       contention: bool,
                       pending: Optional[Dict] = None) -> None:
        if not self.alive:
            return  # crashed between scheduling and the slot
        if not self.queue:
            return  # queue drained (e.g. ACKs arrived for everything)
        packet = self.queue.popleft()
        packet.piggyback = min(len(self.queue), MAX_PIGGYBACK)
        self.inflight[(cycle, slot_index)] = packet
        if not contention:
            self._assigned_keys.add((cycle, slot_index))
        if self.stats.in_measurement(start):
            self.stats.data_packets_sent += 1
            if contention:
                self.stats.data_in_contention_sent += 1
        frame = UplinkFrame(
            kind=KIND_DATA, cycle=cycle, slot_kind=SLOT_DATA,
            slot_index=slot_index, packet=packet, uid=self.uid,
            contention=contention,
            first_attempt_time=pending["first_time"] if pending else start,
            first_attempt_cycle=pending["first_cycle"] if pending
            else cycle)
        self.reverse.transmit(
            Transmission(sender=self.name, payload=frame, start=start,
                         duration=DATA_ON_AIR, kind=KIND_DATA,
                         codewords=self._encode_uplink(packet)),
            self.reverse_link)

    # -- contention (reservation / data-in-contention) ---------------------------

    def _maybe_contend(self, cf: ControlFields, listen_end: float) -> None:
        if not self.queue:
            self._pending_request = None  # demand vanished; episode over
            return
        pending = self._pending_request
        if pending is not None and pending.get("await_cycle") is not None:
            return  # a request is in flight, awaiting its ACK
        if self._backoff_cycles > 0:
            self._backoff_cycles -= 1
            return
        slot_index = self._choose_contention_slot(cf, listen_end)
        if slot_index is None:
            return
        use_data = (self.config.data_in_contention
                    and len(self.queue) == 1)
        if pending is None:
            # A new reservation episode starts with its first attempt.
            pending = {"first_cycle": cf.cycle,
                       "first_time": self.sim.now,
                       "attempts": 0}
        pending.update({
            "kind": KIND_DATA if use_data else KIND_RESERVATION,
            "slot": slot_index,
            "await_cycle": cf.cycle,
            "attempts": pending["attempts"] + 1,
        })
        self._pending_request = pending
        layout = cf.layout()
        start = cf.cycle_start + layout.data_offsets[slot_index]
        if use_data:
            self.radio.claim(TX, start, start + DATA_ON_AIR,
                             f"data-contention@{slot_index}")
            self.sim.call_at(start, lambda: self._transmit_data(
                cf.cycle, slot_index, start, contention=True,
                pending=pending))
        else:
            requested = min(len(self.queue), 63)
            packet = ReservationPacket(uid=self.uid, requested=requested)
            frame = UplinkFrame(
                kind=KIND_RESERVATION, cycle=cf.cycle,
                slot_kind=SLOT_DATA, slot_index=slot_index,
                packet=packet, uid=self.uid, contention=True,
                first_attempt_time=pending["first_time"],
                first_attempt_cycle=pending["first_cycle"])
            if self.stats.in_measurement(self.sim.now):
                self.stats.reservation_packets_sent += 1
            self._schedule_data_slot_tx(cf, slot_index, frame)

    def _resolve_pending_request(self, cf: ControlFields) -> None:
        pending = self._pending_request
        if pending is None or pending.get("await_cycle") != cf.cycle - 1:
            return
        entry = cf.reverse_acks[pending["slot"]]
        if entry.is_data_ack and entry.uid == self.uid:
            self._pending_request = None
            self._backoff_cycles = 0
            return
        self._register_request_failure(pending)

    def _register_request_failure(self, pending: Dict) -> None:
        """Collision (or loss): back off -- longer for un-reserved data.

        The episode record is kept (with ``await_cycle`` cleared) so the
        next attempt continues the same reservation-latency episode.
        """
        attempts = pending["attempts"]
        if (self.config.liveness_lease_cycles
                and attempts >= self.config.eviction_detect_attempts):
            # A whole episode of contention attempts went unanswered.
            # Collisions this persistent are unlikely; more likely the
            # base station evicted us while we were idle.
            self._suspect_eviction()
            return
        if pending.get("kind") == KIND_DATA:
            cap = min(2 ** attempts * 2, self.config.data_backoff_cap)
        else:
            cap = min(2 ** attempts, self.config.reservation_backoff_cap)
        self._backoff_cycles = self.rng.randint(1, max(1, cap))
        pending["await_cycle"] = None

    # -- forward channel ------------------------------------------------------------

    def _claim_forward_slots(self, cf: ControlFields) -> None:
        my_slots = cf.forward_slots_of(self.uid)
        if not my_slots:
            return
        t0 = cf.cycle_start
        offsets = timing.FORWARD_SLOT_OFFSETS
        slot_time = timing.FORWARD_SLOT_TIME
        claim = self.radio.claim
        for slot_index in my_slots:
            start = t0 + offsets[slot_index]
            claim(RX, start, start + slot_time, f"fwd@{slot_index}")

    def _on_forward_data(self, frame: DownlinkFrame, ok: bool) -> None:
        if frame.uid != self.uid or self.state != ACTIVE:
            return
        if not ok:
            return
        packet: DataPacket = frame.packet
        if self.stats.in_measurement(self.sim.now):
            self.stats.forward_packets_delivered += 1
            self.stats.forward_delay.push(
                self.sim.now - packet.created_at)
        if not packet.more and self.on_message_received is not None:
            self.on_message_received(packet)
