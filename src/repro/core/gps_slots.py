"""GPS slot management (Section 3.3).

The base station assigns each active GPS subscriber one GPS slot per
notification cycle.  To reclaim bandwidth when GPS users sign off, slots
are dynamically consolidated under rules R1--R3:

* **R1** -- GPS slots in a cycle are allocated in order.
* **R2** -- a newly admitted GPS user gets the first unused slot.
* **R3** -- when the user holding slot ``i`` leaves, a user holding a slot
  ``j > i`` is re-assigned slot ``i`` (we move the *highest* occupied slot
  into the hole, which keeps the allocation a prefix).

Moving a user to an earlier slot can only shorten its inter-access gap, so
R3 preserves the 4-second deadline.  When at most three GPS users remain,
the reverse cycle switches to format 2 and five unused GPS slots merge
into one extra data slot; the reverse transition (format 2 -> 1) happens
when a fourth user is admitted.

With ``dynamic=False`` the manager models the naive static scheme the
paper argues against: slots are never consolidated and the cycle stays in
format 1, so holes between allocated slots are wasted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.phy import timing


@dataclass(frozen=True)
class Reassignment:
    """A record of one R3 slot move (for auditing the QoS invariant)."""

    uid: int
    old_slot: int
    new_slot: int
    cycle: int


class GpsSlotManager:
    """Tracks which GPS subscriber owns which GPS slot."""

    def __init__(self, dynamic: bool = True,
                 max_slots: int = timing.MAX_GPS_SLOTS):
        self.dynamic = dynamic
        self.max_slots = max_slots
        self._slot_of: Dict[int, int] = {}  # uid -> slot index
        self.reassignments: List[Reassignment] = []

    # -- queries ------------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._slot_of)

    @property
    def format_id(self) -> int:
        """Reverse-cycle format implied by the current population."""
        if not self.dynamic:
            return 1
        return 1 if self.active_count > timing.FORMAT2_GPS_SLOTS else 2

    def layout(self) -> timing.ReverseLayout:
        return timing.FORMAT1 if self.format_id == 1 else timing.FORMAT2

    def slot_of(self, uid: int) -> Optional[int]:
        return self._slot_of.get(uid)

    def schedule(self) -> List[Optional[int]]:
        """Per-slot owner list, sized to the current layout's GPS slots."""
        layout = self.layout()
        slots: List[Optional[int]] = [None] * layout.gps_slots
        for uid, slot in self._slot_of.items():
            if slot < layout.gps_slots:
                slots[slot] = uid
        return slots

    def occupied_slots(self) -> List[int]:
        return sorted(self._slot_of.values())

    # -- mutation --------------------------------------------------------------

    def admit(self, uid: int) -> Optional[int]:
        """R2: give ``uid`` the first unused slot; None when full."""
        if uid in self._slot_of:
            return self._slot_of[uid]
        if self.active_count >= self.max_slots:
            return None
        used = set(self._slot_of.values())
        slot = next(index for index in range(self.max_slots)
                    if index not in used)
        self._slot_of[uid] = slot
        return slot

    def leave(self, uid: int, cycle: int = 0) -> List[Reassignment]:
        """Remove ``uid``; with dynamic adjustment, consolidate via R3."""
        slot = self._slot_of.pop(uid, None)
        if slot is None:
            return []
        if not self.dynamic:
            return []
        moves: List[Reassignment] = []
        # R3: move the highest-slot user into the hole (earlier slot only).
        if self._slot_of:
            top_uid = max(self._slot_of, key=self._slot_of.get)
            top_slot = self._slot_of[top_uid]
            if top_slot > slot:
                self._slot_of[top_uid] = slot
                move = Reassignment(uid=top_uid, old_slot=top_slot,
                                    new_slot=slot, cycle=cycle)
                moves.append(move)
                self.reassignments.append(move)
        return moves

    def check_invariants(self) -> None:
        """Raise AssertionError when R1/R2 consolidation is violated."""
        slots = self.occupied_slots()
        if len(set(slots)) != len(slots):
            raise AssertionError(f"duplicate GPS slot assignment: {slots}")
        if self.dynamic and slots != list(range(len(slots))):
            raise AssertionError(
                f"dynamic GPS slots not consolidated to a prefix: {slots}")
        layout = self.layout()
        if self.dynamic and any(slot >= layout.gps_slots for slot in slots):
            raise AssertionError(
                f"GPS slot beyond the current format's range: {slots} "
                f"(format {layout.format_id})")
