"""Bit-level packing for MAC packets and control fields.

The OSU-MAC control-field block is specified in bits (6-bit user IDs,
16-bit EINs, ...), so packets are serialized through a simple big-endian
bit writer/reader pair.  Fields are written most-significant-bit first.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates values into a big-endian bit string."""

    def __init__(self):
        self._bits: int = 0
        self._length: int = 0

    def write(self, value: int, nbits: int) -> "BitWriter":
        """Append the ``nbits`` low-order bits of ``value``."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if value < 0 or value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._bits = (self._bits << nbits) | value
        self._length += nbits
        return self

    def write_bool(self, flag: bool) -> "BitWriter":
        return self.write(1 if flag else 0, 1)

    def write_bytes(self, data: bytes) -> "BitWriter":
        for byte in data:
            self.write(byte, 8)
        return self

    @property
    def bit_length(self) -> int:
        return self._length

    def getvalue(self, pad_to_bytes: int = 0) -> bytes:
        """The accumulated bits, zero-padded to a whole number of bytes.

        ``pad_to_bytes`` additionally right-pads the result with zero bytes
        up to the requested length (e.g. to fill an RS information block).
        """
        total_bits = self._length
        pad_bits = (-total_bits) % 8
        value = self._bits << pad_bits
        nbytes = (total_bits + pad_bits) // 8
        data = value.to_bytes(nbytes, "big") if nbytes else b""
        if pad_to_bytes > len(data):
            data += bytes(pad_to_bytes - len(data))
        elif pad_to_bytes and pad_to_bytes < len(data):
            raise ValueError(
                f"content ({len(data)} bytes) exceeds pad_to_bytes "
                f"({pad_to_bytes})")
        return data


class BitReader:
    """Reads big-endian bit fields from a byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0  # in bits

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._position

    def read(self, nbits: int) -> int:
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits > self.bits_remaining:
            raise ValueError("read past end of bit stream")
        value = 0
        position = self._position
        for _ in range(nbits):
            byte = self._data[position // 8]
            bit = (byte >> (7 - position % 8)) & 1
            value = (value << 1) | bit
            position += 1
        self._position = position
        return value

    def read_bool(self) -> bool:
        return bool(self.read(1))

    def read_bytes(self, nbytes: int) -> bytes:
        return bytes(self.read(8) for _ in range(nbytes))
