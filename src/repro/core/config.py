"""Configuration for a simulated OSU-MAC cell.

Defaults reproduce the paper's evaluation scenario (Section 5): one base
station, up to 8 GPS buses, 5--14 data subscribers exchanging short
e-mails, Poisson arrivals with the interarrival time derived from the
target load index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.phy import timing


@dataclass
class CellConfig:
    """All knobs of one cell simulation."""

    # -- population -----------------------------------------------------------
    num_data_users: int = 9
    num_gps_users: int = 4

    # -- workload ----------------------------------------------------------
    load_index: float = 0.5
    message_size: str = "uniform"  # 'fixed' or 'uniform'
    fixed_message_bytes: int = 120
    uniform_low: int = 40
    uniform_high: int = 500
    forward_load_index: float = 0.0  # 0 disables downlink traffic
    buffer_packets: int = 64  # per-subscriber uplink queue capacity

    # -- protocol options --------------------------------------------------
    dynamic_slot_adjustment: bool = True
    use_second_cf: bool = True
    data_in_contention: bool = True
    min_contention_slots: int = 1
    max_contention_slots: int = 3
    max_registration_attempts: int = 100
    #: Probability of transmitting a registration attempt in a cycle
    #: while registering.  The paper's rule is pure persistence (1.0),
    #: which deadlocks when the number of simultaneous registrants far
    #: exceeds the contention slots; p-persistence resolves such storms
    #: (at p ~ contention_slots / registrants).
    registration_persistence: float = 1.0
    reservation_backoff_cap: int = 8  # cycles
    data_backoff_cap: int = 16  # cycles (longer: un-reserved data)

    # -- GPS ---------------------------------------------------------------
    gps_report_period: float = timing.CYCLE_LENGTH
    gps_deadline: float = timing.GPS_DEADLINE

    # -- channel -----------------------------------------------------------
    error_model: str = "perfect"  # 'perfect' | 'outage' | 'iid' | 'ge'
    outage_loss: float = 0.01
    symbol_error_rate: float = 0.005
    #: Full-fidelity mode: control fields and data packets are genuinely
    #: bit-packed, RS(64,48)-encoded, corrupted symbol-by-symbol by the
    #: error model, and run through the real decoder at each receiver.
    #: The MAC then operates on the *decoded* bits (with cross-checks
    #: against the logical objects).  Slower; used for error-control
    #: validation rather than large sweeps.
    full_fidelity: bool = False

    # -- registration arrival pattern -----------------------------------------
    registration_mode: str = "simultaneous"  # or 'poisson'
    registration_rate: float = 0.25  # arrivals per second for 'poisson'

    # -- robustness: fault injection & liveness leases ----------------------
    #: Scripted fault events (``repro.faults.schedule.FaultSpec``); part
    #: of the config so fault scenarios stay hashable and cacheable.
    faults: Tuple = ()
    #: A registrant the base station has not heard from for this many
    #: cycles is deregistered (UID returned to the pool, GPS slot
    #: reclaimed via R1-R3).  0 disables leases AND the subscriber-side
    #: eviction detection, preserving the paper's original behaviour.
    liveness_lease_cycles: int = 0
    #: GPS units: consecutive heard control fields without a GPS slot
    #: before an active unit assumes it was deregistered.
    eviction_detect_cycles: int = 2
    #: Data users: consecutive un-ACKed transmissions/attempts before an
    #: active user assumes it was deregistered and re-registers.
    eviction_detect_attempts: int = 6
    #: After a suspected eviction the subscriber waits a seeded-random
    #: 0..N whole cycles before its first re-registration attempt.  A
    #: base-station restart evicts everyone at once; without jitter the
    #: survivors retry in lockstep and collide in the same contention
    #: slots cycle after cycle.  Draws come from the subscriber's own
    #: ``RandomStreams`` stream, so runs stay bit-identical across
    #: worker counts.  Defaults to 0 (the paper's immediate retry,
    #: right for organic churn); ``repro serve`` dials it up for
    #: long-lived cells where mass-eviction storms are expected.
    eviction_backoff_jitter_cycles: int = 0
    #: Run the per-cycle ``repro.faults.invariants`` monitor.
    check_invariants: bool = False
    #: User-ID allocation policy.  'round_robin' (the default, and the
    #: only safe choice with liveness leases) rotates through the 6-bit
    #: space; 'lowest_free' restores the pre-fix lowest-free allocator
    #: that livelocks a lease-evicted zombie against the new holder of
    #: its recycled UID.  Kept ONLY as a regression hook so the fuzz
    #: harness can demonstrate rediscovering that bug.
    uid_allocation: str = "round_robin"

    # -- run control ---------------------------------------------------------
    cycles: int = 200
    warmup_cycles: int = 30
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_data_users < 0:
            raise ValueError("num_data_users must be non-negative")
        if not 0 <= self.num_gps_users <= timing.MAX_GPS_USERS:
            raise ValueError(
                f"num_gps_users must be in [0, {timing.MAX_GPS_USERS}]")
        if self.message_size not in ("fixed", "uniform"):
            raise ValueError(f"unknown message_size {self.message_size!r}")
        if self.cycles <= self.warmup_cycles:
            raise ValueError("cycles must exceed warmup_cycles")
        if self.min_contention_slots < 1:
            raise ValueError("need at least one contention slot")
        if self.liveness_lease_cycles < 0:
            raise ValueError("liveness_lease_cycles must be >= 0")
        if self.eviction_detect_cycles < 1:
            raise ValueError("eviction_detect_cycles must be >= 1")
        if self.eviction_detect_attempts < 1:
            raise ValueError("eviction_detect_attempts must be >= 1")
        if self.eviction_backoff_jitter_cycles < 0:
            raise ValueError(
                "eviction_backoff_jitter_cycles must be >= 0")
        if self.uid_allocation not in ("round_robin", "lowest_free"):
            raise ValueError(
                f"unknown uid_allocation {self.uid_allocation!r}")
        self.faults = tuple(self.faults)
        if self.faults:
            from repro.faults.schedule import FaultSpec
            for fault in self.faults:
                if not isinstance(fault, FaultSpec):
                    raise ValueError(
                        f"faults must contain FaultSpec, got {fault!r}")

    @property
    def data_slots_per_cycle(self) -> int:
        """d in the load formula: 9 when <=3 GPS users, else 8.

        Without dynamic slot adjustment the cycle always uses format 1
        (8 data slots) regardless of the GPS population.
        """
        if not self.dynamic_slot_adjustment:
            return timing.FORMAT1_DATA_SLOTS
        if self.num_gps_users <= timing.FORMAT2_GPS_SLOTS:
            return timing.FORMAT2_DATA_SLOTS
        return timing.FORMAT1_DATA_SLOTS

    @property
    def duration(self) -> float:
        return self.cycles * timing.CYCLE_LENGTH

    @property
    def warmup_until(self) -> float:
        return self.warmup_cycles * timing.CYCLE_LENGTH
