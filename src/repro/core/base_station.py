"""The base station: resource arbitration, scheduling, registration.

OSU-MAC is base-station-centric (Section 3.1): the base station owns the
slot schedules on both channels, handles registration, acknowledges
uplink packets, and pages inactive subscribers.  Its per-cycle work:

1. At cycle start ``t0``: finalize the previous reverse cycle's
   contention observations, adapt the contention-slot count, build the
   reverse and forward schedules for this cycle, and broadcast the first
   control-field set (preamble + CF1, ending at ``t0 + 0.28125``).
2. Transmit forward data slot 0 (the slot between the two CF sets).
3. At ``t0 + 0.421875``: build the second control-field set -- identical
   to CF1 except that it acknowledges the previous cycle's *last* reverse
   data slot (which overlapped CF1) and may upgrade forward slots that
   CF1 announced idle to the CF2 listener -- and broadcast it.
4. Transmit the remaining forward data slots.
5. Throughout, receive reverse-channel transmissions (GPS reports, data,
   reservations, registrations) and keep demand/ACK bookkeeping.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.core.config import CellConfig
from repro.core.fields import AckEntry, ControlFields
from repro.core.frames import (
    DownlinkFrame,
    KIND_DATA,
    KIND_REGISTRATION,
    KIND_RESERVATION,
    SLOT_DATA,
    UplinkFrame,
)
from repro.core.gps_slots import GpsSlotManager
from repro.core.packets import (
    DataPacket,
    ForwardPacket,
    RegistrationPacket,
    ReservationPacket,
    SERVICE_GPS,
)
from repro.core.registration import RegistrationModule
from repro.core.scheduler import (
    ContentionController,
    ForwardScheduler,
    Interval,
    RoundRobinScheduler,
)
from repro.metrics import CellStats
from repro.phy import timing
from repro.phy.channel import (
    ForwardChannel,
    ReverseChannel,
    Transmission,
)
from repro.phy.rs import RS_64_48
from repro.sim.core import Simulator


class SlotResult:
    """What the base station observed in one reverse data slot.

    A plain ``__slots__`` class: one is created per occupied reverse
    slot, every cycle, making construction cost part of the per-packet
    hot path.
    """

    __slots__ = ("attempts", "collided", "received", "ack")

    def __init__(self, attempts: int = 0, collided: bool = False,
                 received: bool = False,
                 ack: Optional[AckEntry] = None):
        self.attempts = attempts
        self.collided = collided
        self.received = received
        self.ack = ack

    def __repr__(self) -> str:
        return (f"SlotResult(attempts={self.attempts}, "
                f"collided={self.collided}, received={self.received}, "
                f"ack={self.ack!r})")


class CycleRecord:
    """The schedule the base station committed for one cycle."""

    __slots__ = ("cycle", "start", "layout", "gps_assignment",
                 "data_assignment", "contention_slots",
                 "forward_assignment", "cf2_listener", "grants")

    def __init__(self, cycle: int, start: float,
                 layout: timing.ReverseLayout,
                 gps_assignment: List[Optional[int]],
                 data_assignment: List[Optional[int]],
                 contention_slots: List[int],
                 forward_assignment: List[Optional[int]],
                 cf2_listener: Optional[int],
                 grants: Optional[Dict[int, int]] = None):
        self.cycle = cycle
        self.start = start
        self.layout = layout
        self.gps_assignment = gps_assignment
        self.data_assignment = data_assignment
        self.contention_slots = contention_slots
        self.forward_assignment = forward_assignment
        self.cf2_listener = cf2_listener
        self.grants = {} if grants is None else grants

    @property
    def last_data_slot(self) -> int:
        return self.layout.data_slots - 1

    @property
    def last_slot_user(self) -> Optional[int]:
        return self.data_assignment[self.last_data_slot]


class BaseStation:
    """Central controller of one cell."""

    def __init__(self, sim: Simulator, config: CellConfig,
                 forward: ForwardChannel, reverse: ReverseChannel,
                 stats: CellStats, rng: random.Random):
        self.sim = sim
        self.config = config
        self.forward = forward
        self.reverse = reverse
        self.stats = stats
        self.rng = rng

        self.registration = RegistrationModule(
            max_gps_users=timing.MAX_GPS_USERS,
            uid_allocation=config.uid_allocation)
        self.gps_mgr = GpsSlotManager(
            dynamic=config.dynamic_slot_adjustment)
        self.reverse_scheduler = RoundRobinScheduler()
        self.forward_scheduler = ForwardScheduler()
        self.contention = ContentionController(
            min_slots=config.min_contention_slots,
            max_slots=config.max_contention_slots)

        #: uid -> outstanding reverse slot demand.
        self.demands: Dict[int, int] = {}
        #: uid -> queued downlink packets.
        self.forward_queues: Dict[int, Deque[ForwardPacket]] = {}
        #: Pending paging announcements (uids), drained into each CF.
        self.paging_queue: Deque[int] = deque()

        self.cycle = 0
        self._records: Dict[int, CycleRecord] = {}
        self._slot_results: Dict["tuple[int, int]", SlotResult] = {}
        #: Recently delivered (uid, seq) pairs, for duplicate suppression.
        self._recent_seqs: Dict[int, Set[int]] = {}
        #: Liveness leases: uid -> cycle the base station last heard an
        #: uplink from it (any kind).  A registrant silent for
        #: ``config.liveness_lease_cycles`` cycles is deregistered.
        self._last_heard: Dict[int, int] = {}

        self.codec = RS_64_48

        #: Network-layer hooks (multi-cell forwarding, Section 2.2):
        #: called with every successfully received uplink data packet,
        #: and with every newly approved registration record.
        self.on_data_packet: Optional[Callable] = None
        self.on_registration: Optional[Callable] = None

        reverse.add_listener(self._on_reverse_delivery)
        self.process = sim.process(self._run(), name="base-station")

    # -- public control-plane helpers (simulation shortcuts) ----------------

    def page(self, uid: int) -> None:
        """Queue a paging announcement for ``uid`` (Section 3.1)."""
        self.paging_queue.append(uid)

    def sign_off(self, uid: int) -> None:
        """Remove a subscriber (control-plane shortcut for churn tests)."""
        self._deregister(uid)

    def _deregister(self, uid: int) -> None:
        """Drop every piece of per-subscriber state the station holds.

        The UID returns to the pool and, for GPS users, the slot is
        reclaimed through the paper's R1-R3 reassignment rules (the next
        cycle's layout re-runs dynamic slot adjustment automatically).
        """
        record = self.registration.lookup_uid(uid)
        if record is None:
            return
        if record.service == SERVICE_GPS:
            self.gps_mgr.leave(uid, cycle=self.cycle)
        self.registration.release(uid)
        self.demands.pop(uid, None)
        self.forward_queues.pop(uid, None)
        self._recent_seqs.pop(uid, None)
        self._last_heard.pop(uid, None)

    def _sweep_leases(self) -> None:
        """Deregister every registrant whose liveness lease expired."""
        lease = self.config.liveness_lease_cycles
        expired = [uid for uid, last in self._last_heard.items()
                   if self.cycle - last >= lease]
        for uid in expired:
            self._deregister(uid)
            self.stats.lease_evictions += 1

    def _touch(self, uid: Optional[int]) -> None:
        """Refresh ``uid``'s liveness lease (it was just heard from)."""
        if uid is not None \
                and self.registration.lookup_uid(uid) is not None:
            self._last_heard[uid] = self.cycle

    def submit_forward(self, uid: int, packet: ForwardPacket) -> None:
        """Queue a downlink packet for ``uid``."""
        self.forward_queues.setdefault(uid, deque()).append(packet)

    # -- main cycle loop -------------------------------------------------------

    def _run(self):
        while True:
            t0 = self.sim.now
            record = self._build_cycle(t0)
            self._records[self.cycle] = record
            cf1 = self._make_cf(record, which=1)
            self._broadcast_cf(cf1, start=t0,
                               duration=timing.CF1_END)
            self._schedule_forward_slot(record, 0)
            yield self.sim.timeout(timing.CF2_OFFSET)
            if self.config.use_second_cf:
                self._upgrade_forward_slots(record)
                cf2 = self._make_cf(record, which=2)
                self._broadcast_cf(cf2, start=self.sim.now,
                                   duration=timing.CONTROL_FIELD_TIME)
            assignment = record.forward_assignment
            for slot_index in range(1, timing.NUM_FORWARD_DATA_SLOTS):
                if assignment[slot_index] is not None:
                    self._schedule_forward_slot(record, slot_index)
            yield self.sim.timeout(timing.CYCLE_LENGTH - timing.CF2_OFFSET)
            self.cycle += 1
            self._prune(self.cycle - 4)

    # -- schedule construction -------------------------------------------------

    def _build_cycle(self, t0: float) -> CycleRecord:
        previous = self._records.get(self.cycle - 1)
        self._finalize_contention(previous)
        if self.config.liveness_lease_cycles:
            self._sweep_leases()

        layout = self.gps_mgr.layout()
        gps_assignment = self.gps_mgr.schedule()

        contention_count = min(self.contention.current,
                               layout.data_slots - 1)
        reserved_contention = list(range(contention_count))
        free_slots = layout.data_slots - contention_count
        grants = self.reverse_scheduler.allocate(self.demands, free_slots)
        for uid, count in grants.items():
            self.demands[uid] = max(0, self.demands.get(uid, 0) - count)
        data_assignment = self.reverse_scheduler.layout_slots(
            grants, layout.data_slots, reserved_contention)
        # Every unassigned slot except the last acts as a contention slot
        # (Section 3.1: "a contention slot is simply a data slot not
        # assigned to any mobile subscriber"); the base station guarantees
        # at least `contention_count` of them at the front of the cycle.
        contention_slots = [index for index
                            in range(layout.data_slots - 1)
                            if data_assignment[index] is None]

        # Who listens to CF2 this cycle: the subscriber that was assigned
        # the previous cycle's last reverse data slot (it is transmitting
        # while CF1 is on the air).
        cf2_listener = previous.last_slot_user if previous else None

        if not self.config.use_second_cf:
            # Ablation: no CF2 exists, so the last reverse data slot (which
            # overlaps the next cycle's CF1) can never be assigned.
            last = layout.data_slots - 1
            evicted = data_assignment[last]
            if evicted is not None:
                data_assignment[last] = None
                self.demands[evicted] = self.demands.get(evicted, 0) + 1
                grants[evicted] -= 1
            cf2_listener = None

        reverse_tx = self._reverse_tx_intervals(
            t0, layout, gps_assignment, data_assignment)
        forward_demands = {uid: len(queue)
                           for uid, queue in self.forward_queues.items()
                           if queue}
        forward_assignment = self.forward_scheduler.allocate(
            forward_demands, reverse_tx, cf2_listener, t0)

        if self.stats.in_measurement(t0):
            self.stats.measured_cycles += 1
            self.stats.reverse_data_slots_total += layout.data_slots
            self.stats.reverse_data_slots_assigned += sum(
                1 for uid in data_assignment if uid is not None)
            self.stats.forward_slots_total += timing.NUM_FORWARD_DATA_SLOTS
            self.stats.forward_slots_assigned += sum(
                1 for uid in forward_assignment if uid is not None)

        return CycleRecord(cycle=self.cycle, start=t0, layout=layout,
                           gps_assignment=gps_assignment,
                           data_assignment=data_assignment,
                           contention_slots=contention_slots,
                           forward_assignment=forward_assignment,
                           cf2_listener=cf2_listener,
                           grants=grants)

    @staticmethod
    def _reverse_tx_intervals(t0: float, layout: timing.ReverseLayout,
                              gps_assignment: List[Optional[int]],
                              data_assignment: List[Optional[int]],
                              ) -> Dict[int, List[Interval]]:
        intervals: Dict[int, List[Interval]] = {}
        for index, uid in enumerate(gps_assignment):
            if uid is not None:
                start = t0 + layout.gps_offsets[index]
                intervals.setdefault(uid, []).append(
                    Interval(start, start + timing.GPS_SLOT_TIME))
        for index, uid in enumerate(data_assignment):
            if uid is not None:
                start = t0 + layout.data_offsets[index]
                intervals.setdefault(uid, []).append(
                    Interval(start, start + timing.DATA_SLOT_TIME))
        return intervals

    def _finalize_contention(self, previous: Optional[CycleRecord]) -> None:
        """Digest the previous cycle's contention-slot outcomes."""
        if previous is None:
            return
        collided = used = idle = 0
        for slot_index in previous.contention_slots:
            result = self._slot_results.get((previous.cycle, slot_index))
            if result is None or result.attempts == 0:
                idle += 1
            elif result.collided:
                collided += 1
            elif result.received:
                used += 1
            else:
                idle += 1  # energy lost to channel errors, not collision
        self.contention.update(collided, idle)
        if self.stats.in_measurement(self.sim.now):
            self.stats.contention_slots_total += len(
                previous.contention_slots)
            self.stats.contention_slots_used += used
            self.stats.contention_slots_collided += collided
            self.stats.contention_slots_idle += idle
        # Slot-occupancy accounting lags one extra cycle: the *last* data
        # slot of cycle c-1 is still on the air at the start of cycle c,
        # so cycle c-2 is the most recent cycle with final outcomes.
        settled = self._records.get(self.cycle - 2)
        if settled is not None and self.stats.in_measurement(settled.start):
            for slot_index, uid in enumerate(settled.data_assignment):
                if uid is None:
                    continue
                result = self._slot_results.get(
                    (settled.cycle, slot_index))
                if result is not None and result.received:
                    self.stats.reverse_data_slots_used += 1

    # -- control fields -----------------------------------------------------------

    def _make_cf(self, record: CycleRecord, which: int) -> ControlFields:
        previous = self._records.get(record.cycle - 1)
        acks = [AckEntry.empty()] * timing.REVERSE_ACK_ENTRIES
        if previous is not None:
            last = previous.last_data_slot
            for slot_index in range(previous.layout.data_slots):
                if which == 1 and slot_index == last:
                    continue  # the last slot's outcome goes into CF2
                result = self._slot_results.get(
                    (previous.cycle, slot_index))
                if result is not None and result.ack is not None:
                    acks[slot_index] = result.ack
        paging: List[Optional[int]] = []
        while self.paging_queue and len(paging) < timing.PAGING_ENTRIES:
            paging.append(self.paging_queue.popleft())
        return ControlFields(
            cycle=record.cycle,
            which=which,
            gps_schedule=list(record.gps_assignment),
            reverse_schedule=list(record.data_assignment),
            forward_schedule=list(record.forward_assignment),
            reverse_acks=acks,
            paging=paging,
            cycle_start=record.start)

    def _broadcast_cf(self, cf: ControlFields, start: float,
                      duration: float) -> None:
        frame = DownlinkFrame(kind=f"cf{cf.which}", cycle=cf.cycle,
                              packet=cf)
        if self.config.full_fidelity:
            codewords = cf.to_codewords()
        else:
            codewords = [b""] * timing.CONTROL_FIELD_CODEWORDS
        self.forward.broadcast(Transmission(
            sender="base-station", payload=frame, start=start,
            duration=duration, kind=f"cf{cf.which}",
            codewords=codewords))

    def _upgrade_forward_slots(self, record: CycleRecord) -> None:
        """CF2 may grant idle forward slots to the CF2 listener.

        Problem 3 (Section 3.4): based on the piggyback request in the
        packet the CF2 listener sent in the previous cycle's last reverse
        slot, the base station can schedule forward slots that CF1
        announced idle -- but only slots that come after CF2 itself.
        """
        uid = record.cf2_listener
        if uid is None:
            return
        queue = self.forward_queues.get(uid)
        if not queue:
            return
        demand = len(queue) - sum(
            1 for assigned in record.forward_assignment if assigned == uid)
        if demand <= 0:
            return
        reverse_tx = self._reverse_tx_intervals(
            record.start, record.layout, record.gps_assignment,
            record.data_assignment)
        margin = timing.MS_TURNAROUND_TIME
        offsets = timing.FORWARD_SLOT_OFFSETS
        my_reverse = reverse_tx.get(uid, ())
        for slot_index in range(1, timing.NUM_FORWARD_DATA_SLOTS):
            if demand <= 0:
                break
            if record.forward_assignment[slot_index] is not None:
                continue
            # Same float arithmetic as Interval(...).expanded(margin) so
            # boundary comparisons stay bit-identical.
            slot_start = record.start + offsets[slot_index]
            guard_start = slot_start - margin
            guard_end = (slot_start + timing.FORWARD_SLOT_TIME) + margin
            if any(guard_start < tx.end and tx.start < guard_end
                   for tx in my_reverse):
                continue
            record.forward_assignment[slot_index] = uid
            demand -= 1

    # -- forward data slots ------------------------------------------------------

    def _schedule_forward_slot(self, record: CycleRecord,
                               slot_index: int) -> None:
        uid = record.forward_assignment[slot_index]
        if uid is None:
            return
        when = record.start + timing.FORWARD_SLOT_OFFSETS[slot_index]
        self.sim.call_at(when, lambda: self._transmit_forward(
            record, slot_index, when))

    def _transmit_forward(self, record: CycleRecord, slot_index: int,
                          when: float) -> None:
        uid = record.forward_assignment[slot_index]
        queue = self.forward_queues.get(uid)
        if not queue:
            return
        packet = queue.popleft()
        if self.stats.in_measurement(when):
            self.stats.forward_packets_sent += 1
        data_packet = packet.to_data_packet()
        frame = DownlinkFrame(kind="data", cycle=record.cycle,
                              slot_index=slot_index, uid=uid,
                              packet=data_packet)
        if self.config.full_fidelity:
            codewords = [self.codec.encode(data_packet.encode())]
        else:
            codewords = [b""]
        self.forward.broadcast(Transmission(
            sender="base-station", payload=frame, start=when,
            duration=timing.FORWARD_SLOT_TIME, kind="fwd-data",
            codewords=codewords))

    # -- reverse reception --------------------------------------------------------

    def _on_reverse_delivery(self, transmission: Transmission,
                             ok: bool) -> None:
        frame: UplinkFrame = transmission.payload
        now = self.sim.now
        # Measurement gating uses the transmission's *start* time -- the
        # same clock the sender's ``*_sent`` counters use -- so the
        # sent/delivered conservation pairs cannot disagree when a slot
        # straddles the warmup boundary.
        start = transmission.start
        if frame.slot_kind != SLOT_DATA:
            if ok:
                self._touch(frame.uid)
                if self.stats.in_measurement(start):
                    self.stats.gps_packets_delivered += 1
            return
        key = (frame.cycle, frame.slot_index)
        result = self._slot_results.get(key)
        if result is None:
            result = self._slot_results[key] = SlotResult()
        result.attempts += 1
        if transmission.collided:
            result.collided = True
        if frame.contention and self.stats.in_measurement(start):
            self.stats.contention_attempts += 1
            if transmission.collided:
                self.stats.contention_attempts_collided += 1
        if not ok:
            return
        result.received = True
        if transmission.decoded_info is not None:
            self._verify_wire_decode(frame, transmission.decoded_info)
        if frame.kind == KIND_REGISTRATION:
            self._handle_registration(frame, result)
        elif frame.kind == KIND_RESERVATION:
            self._handle_reservation(frame, result, start)
        elif frame.kind == KIND_DATA:
            self._handle_data(frame, result, start)

    @staticmethod
    def _verify_wire_decode(frame: UplinkFrame, info: bytes) -> None:
        """Full fidelity: the decoded bits must match the logical packet.

        The channel delivered the real RS codeword; decoding it and
        comparing against the logical object continuously validates the
        bit-level packet formats under live traffic.  A mismatch means a
        codec or format bug, so it fails loudly.
        """
        from repro.core.packets import decode_uplink
        decoded = decode_uplink(info)
        packet = frame.packet
        if isinstance(packet, DataPacket):
            observed = (decoded.uid, decoded.seq, decoded.piggyback,
                        decoded.payload_len, decoded.more)
            expected = (packet.uid, packet.seq, packet.piggyback,
                        packet.payload_len, packet.more)
        elif isinstance(packet, ReservationPacket):
            observed = (decoded.uid, decoded.requested)
            expected = (packet.uid, packet.requested)
        elif isinstance(packet, RegistrationPacket):
            observed = (decoded.ein, decoded.service)
            expected = (packet.ein, packet.service)
        else:  # pragma: no cover - no other uplink packet kinds exist
            return
        if observed != expected:
            raise AssertionError(
                f"wire decode mismatch: {observed} != {expected}")

    def _handle_registration(self, frame: UplinkFrame,
                             result: SlotResult) -> None:
        packet: RegistrationPacket = frame.packet
        already = self.registration.lookup_ein(packet.ein) is not None
        record = self.registration.approve(packet.ein, packet.service,
                                           self.sim.now)
        if record is None:
            # Out of capacity: no ACK, the subscriber retries.
            self.stats.registrations_rejected_capacity += 1
            return
        if not already and packet.service == SERVICE_GPS:
            slot = self.gps_mgr.admit(record.uid)
            if slot is None:
                self.registration.release(record.uid)
                self.stats.registrations_rejected_gps_slot += 1
                return
        result.ack = AckEntry.registration_reply(packet.ein, record.uid)
        self._last_heard[record.uid] = self.cycle
        if not already:
            # A freshly issued (possibly recycled) UID must not inherit
            # the previous holder's duplicate-suppression history.
            self._recent_seqs.pop(record.uid, None)
            latency = frame.cycle - frame.first_attempt_cycle + 1
            self.stats.registrations_completed += 1
            self.stats.registration_latency_cycles.push(latency)
            if self.on_registration is not None:
                self.on_registration(record)

    def _handle_reservation(self, frame: UplinkFrame,
                            result: SlotResult, start: float) -> None:
        packet: ReservationPacket = frame.packet
        if self.registration.lookup_uid(packet.uid) is None:
            # A deregistered sender gets no ACK and no state: repeated
            # silence is the signal that drives it back to registration.
            self.stats.unknown_uid_drops += 1
            return
        self._touch(packet.uid)
        self.demands[packet.uid] = max(
            self.demands.get(packet.uid, 0), packet.requested)
        result.ack = AckEntry.data_ack(packet.uid)
        if self.stats.in_measurement(start):
            self.stats.reservation_packets_received += 1
            if frame.contention:
                latency = frame.cycle - frame.first_attempt_cycle + 1
                self.stats.reservation_latency_cycles.push(latency)

    def _handle_data(self, frame: UplinkFrame, result: SlotResult,
                     start: float) -> None:
        packet: DataPacket = frame.packet
        uid = packet.uid
        if self.registration.lookup_uid(uid) is None:
            self.stats.unknown_uid_drops += 1
            return
        self._touch(uid)
        self.demands[uid] = packet.piggyback
        result.ack = AckEntry.data_ack(uid)
        now = self.sim.now
        record = self._records.get(frame.cycle)
        seen = self._recent_seqs.setdefault(uid, set())
        duplicate = packet.seq in seen
        seen.add(packet.seq)
        if len(seen) > 256:
            # Bound memory: drop the oldest half (sequence space is 4096).
            for seq in sorted(seen)[:128]:
                seen.discard(seq)
        if duplicate:
            return
        if self.on_data_packet is not None:
            self.on_data_packet(frame, packet)
        if not self.stats.in_measurement(start):
            return
        self.stats.data_packets_delivered += 1
        self.stats.payload_bytes_delivered += packet.payload_len
        self.stats.per_user_bytes[uid] += packet.payload_len
        self.stats.packet_delay.push(now - packet.created_at)
        if not packet.more and self.stats.in_measurement(
                packet.created_at):
            # Message stats are gated by *creation* time so that the
            # generated/delivered/dropped ledger balances: a message
            # created before the warmup boundary is excluded everywhere.
            self.stats.messages_delivered += 1
            self.stats.message_delay.push(now - packet.created_at)
        if (record is not None
                and frame.slot_index == record.last_data_slot
                and not frame.contention):
            self.stats.data_packets_in_last_slot += 1
        if frame.contention:
            self.stats.data_in_contention_received += 1
            latency = frame.cycle - frame.first_attempt_cycle + 1
            self.stats.reservation_latency_cycles.push(latency)

    # -- housekeeping ---------------------------------------------------------------

    def _prune(self, before_cycle: int) -> None:
        for cycle in [c for c in self._records if c < before_cycle]:
            del self._records[cycle]
        for key in [k for k in self._slot_results if k[0] < before_cycle]:
            del self._slot_results[key]

    # -- introspection (tests / experiments) -------------------------------------

    def record_for(self, cycle: int) -> Optional[CycleRecord]:
        return self._records.get(cycle)
