"""The wired point-to-point backbone between base stations.

Base stations are pairwise connected by full-duplex wired links (the
paper's "wired point-to-point backbone network").  Each direction of a
link is a FIFO queue drained at the link's serialization rate, plus a
fixed propagation latency -- the standard store-and-forward model.
Compared to the 4.8 kbps reverse channel the backbone is fast, but it is
modelled honestly so that backbone queueing shows up under heavy
inter-cell traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.sim.core import Simulator

DeliveryHandler = Callable[[Any], None]


@dataclass
class _QueuedItem:
    item: Any
    size_bytes: int
    enqueued_at: float
    deliver: DeliveryHandler


class BackboneLink:
    """One direction of a wired link between two base stations."""

    def __init__(self, sim: Simulator, latency: float,
                 bandwidth_bytes_per_s: float):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth_bytes_per_s
        self._queue: Deque[_QueuedItem] = deque()
        self._busy = False
        self.items_carried = 0
        self.bytes_carried = 0
        self.total_queueing_delay = 0.0

    def send(self, item: Any, size_bytes: int,
             deliver: DeliveryHandler) -> None:
        """Enqueue ``item``; ``deliver(item)`` fires at arrival time."""
        self._queue.append(_QueuedItem(item=item, size_bytes=size_bytes,
                                       enqueued_at=self.sim.now,
                                       deliver=deliver))
        if not self._busy:
            self._busy = True
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        queued = self._queue.popleft()
        serialization = queued.size_bytes / self.bandwidth
        self.total_queueing_delay += self.sim.now - queued.enqueued_at
        self.items_carried += 1
        self.bytes_carried += queued.size_bytes
        # The link is busy for the serialization time; the item arrives
        # one propagation latency after serialization completes.
        done = self.sim.now + serialization
        self.sim.call_at(done, self._serve_next)
        self.sim.call_at(done + self.latency,
                         lambda: queued.deliver(queued.item))


class Backbone:
    """Pairwise wired connectivity between the network's base stations."""

    def __init__(self, sim: Simulator, latency: float = 0.005,
                 bandwidth_bytes_per_s: float = 1_250_000.0):
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth_bytes_per_s
        self._links: Dict[Tuple[int, int], BackboneLink] = {}

    def link(self, src: int, dst: int) -> BackboneLink:
        """The directed link src -> dst, created on first use."""
        if src == dst:
            raise ValueError("no self-links on the backbone")
        key = (src, dst)
        existing = self._links.get(key)
        if existing is None:
            existing = BackboneLink(self.sim, self.latency,
                                    self.bandwidth)
            self._links[key] = existing
        return existing

    def send(self, src: int, dst: int, item: Any, size_bytes: int,
             deliver: DeliveryHandler) -> None:
        self.link(src, dst).send(item, size_bytes, deliver)

    @property
    def total_items(self) -> int:
        return sum(link.items_carried for link in self._links.values())

    @property
    def total_bytes(self) -> int:
        return sum(link.bytes_carried for link in self._links.values())
