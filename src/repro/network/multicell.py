"""Multi-cell networks: inter-cell forwarding and subscriber handoff.

Builds N OSU-MAC cells on one simulator, connects their base stations
with the wired backbone, and adds the wide-area behaviours the paper's
system model describes (Section 2.2):

* **Inter-cell messages** -- a fraction of each subscriber's e-mails are
  addressed to subscribers in other cells.  The source base station
  reassembles the message from its uplink fragments, forwards it over
  the backbone, and the destination base station fragments it into the
  destination subscriber's forward queue.
* **Location directory + buffering** -- if the destination is not (yet)
  registered in its cell (e.g. mid-handoff), the message is buffered and
  delivered when its registration completes (this is what the paging
  field exists for; the destination base station also announces the
  pending delivery by paging the subscriber's last known user ID).
* **Handoff** -- a subscriber can be moved between cells mid-run: it
  signs off, re-tunes, re-registers through the new cell's contention
  slots, and its uplink queue travels with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.base_station import BaseStation
from repro.core.cell import CellRun, _make_error_model, build_cell
from repro.core.config import CellConfig
from repro.core.packets import PAYLOAD_BYTES, DataPacket, ForwardPacket
from repro.core.subscriber import DataSubscriber
from repro.metrics.stats import SummaryStats
from repro.network.backbone import Backbone
from repro.phy import timing
from repro.phy.channel import Link
from repro.sim import RandomStreams, Simulator
from repro.traffic.messages import (
    Message,
    PoissonMessageSource,
    interarrival_for_load,
    make_size_distribution,
)


@dataclass
class MultiCellConfig:
    """Configuration of a multi-cell network."""

    num_cells: int = 2
    cell: CellConfig = field(default_factory=lambda: CellConfig(
        num_data_users=6, num_gps_users=2, load_index=0.0))
    #: Target uplink load index per cell for the inter-cell workload.
    load_index: float = 0.4
    #: Fraction of messages addressed to a subscriber in another cell
    #: (the rest terminate at the local base station, e.g. outbound
    #: e-mail to the wired network).
    inter_cell_fraction: float = 0.5
    backbone_latency: float = 0.005
    backbone_bandwidth: float = 1_250_000.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_cells < 1:
            raise ValueError("need at least one cell")
        if not 0.0 <= self.inter_cell_fraction <= 1.0:
            raise ValueError("inter_cell_fraction must be in [0, 1]")
        if self.cell.load_index != 0.0:
            raise ValueError(
                "set MultiCellConfig.load_index, not cell.load_index "
                "(the network generates the addressed workload itself)")


@dataclass
class NetworkStats:
    """Network-level statistics (per-cell stats live in each CellRun)."""

    messages_routed: int = 0
    messages_delivered_local: int = 0
    messages_forwarded: int = 0
    messages_buffered_for_registration: int = 0
    end_to_end_delay: SummaryStats = field(default_factory=SummaryStats)
    handoffs_requested: int = 0
    handoffs_completed: int = 0


@dataclass
class _PartialMessage:
    bytes_received: int = 0
    created_at: float = 0.0
    destination_ein: Optional[int] = None


class MultiCellNetwork:
    """N cells + backbone + directory + router."""

    def __init__(self, config: MultiCellConfig):
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.backbone = Backbone(self.sim, config.backbone_latency,
                                 config.backbone_bandwidth)
        self.stats = NetworkStats()
        self.cells: List[CellRun] = []
        #: ein -> (cell index the subscriber currently lives in, object).
        self.directory: Dict[int, Tuple[int, DataSubscriber]] = {}
        #: (cell, src uid, message id) -> reassembly state.
        self._partial: Dict[Tuple[int, int, int], _PartialMessage] = {}
        #: Messages waiting for their destination to register: ein -> list.
        self._waiting: Dict[int, List[Message]] = {}
        self._forward_seq = 0

        for index in range(config.num_cells):
            run = build_cell(config.cell, sim=self.sim,
                             streams=self.streams.spawn(f"cell-{index}"),
                             ein_offset=index * 0x400,
                             name_prefix=f"c{index}-")
            self.cells.append(run)
            bs = run.base_station
            bs.on_data_packet = self._make_uplink_handler(index)
            bs.on_registration = self._make_registration_handler(index)
            for subscriber in run.data_users:
                self.directory[subscriber.ein] = (index, subscriber)
                subscriber.on_message_received = \
                    self._on_message_received

        self._start_workload()

    # -- workload -------------------------------------------------------------

    def _start_workload(self) -> None:
        config = self.config
        cell_cfg = config.cell
        if config.load_index <= 0 or not cell_cfg.num_data_users:
            return
        sizes = make_size_distribution(
            cell_cfg.message_size, cell_cfg.fixed_message_bytes,
            cell_cfg.uniform_low, cell_cfg.uniform_high)
        interarrival = interarrival_for_load(
            config.load_index, cell_cfg.num_data_users,
            sizes.mean_mac_bytes(PAYLOAD_BYTES), timing.CYCLE_LENGTH,
            cell_cfg.data_slots_per_cycle, PAYLOAD_BYTES)
        traffic_rng = self.streams["addressing"]
        all_eins = sorted(self.directory)
        for run in self.cells:
            for subscriber in run.data_users:
                def deliver(message: Message,
                            sub: DataSubscriber = subscriber) -> None:
                    if (traffic_rng.random()
                            < self.config.inter_cell_fraction):
                        candidates = [ein for ein in all_eins
                                      if ein != sub.ein]
                        if candidates:
                            message.destination_ein = \
                                traffic_rng.choice(candidates)
                    sub.submit_message(message)

                PoissonMessageSource(
                    self.sim,
                    self.streams[f"traffic-{subscriber.ein}"],
                    interarrival, sizes, deliver=deliver,
                    start_at=subscriber.entry_time)

    # -- uplink -> routing -------------------------------------------------------

    def _make_uplink_handler(self, cell_index: int):
        def handler(frame, packet: DataPacket) -> None:
            key = (cell_index, packet.uid, packet.message_id)
            partial = self._partial.setdefault(key, _PartialMessage(
                created_at=packet.created_at,
                destination_ein=packet.destination_ein))
            partial.bytes_received += packet.payload_len
            if packet.destination_ein is not None:
                partial.destination_ein = packet.destination_ein
            if packet.more:
                return
            del self._partial[key]
            self.stats.messages_routed += 1
            if partial.destination_ein is None:
                return  # terminates at the base station (wired egress)
            message = Message(message_id=packet.message_id,
                              size_bytes=partial.bytes_received,
                              created_at=partial.created_at,
                              destination_ein=partial.destination_ein)
            self._route(cell_index, message)
        return handler

    def _route(self, source_cell: int, message: Message) -> None:
        entry = self.directory.get(message.destination_ein)
        if entry is None:
            return  # unknown destination: dropped at the source BS
        dest_cell, _subscriber = entry
        if dest_cell == source_cell:
            self.stats.messages_delivered_local += 1
            self._deliver_down(dest_cell, message)
        else:
            self.stats.messages_forwarded += 1
            self.backbone.send(
                source_cell, dest_cell, message, message.size_bytes,
                lambda msg: self._deliver_down(
                    self.directory[msg.destination_ein][0], msg))

    # -- downlink delivery ----------------------------------------------------------

    def _deliver_down(self, cell_index: int, message: Message) -> None:
        bs = self.cells[cell_index].base_station
        record = bs.registration.lookup_ein(message.destination_ein)
        if record is None:
            # Mid-handoff or not yet registered: buffer until the
            # registration completes, and page the subscriber.
            self.stats.messages_buffered_for_registration += 1
            self._waiting.setdefault(message.destination_ein,
                                     []).append(message)
            return
        self._fragment_down(bs, record.uid, message)

    def _fragment_down(self, bs: BaseStation, uid: int,
                       message: Message) -> None:
        fragments = message.fragments(PAYLOAD_BYTES)
        remaining = message.size_bytes
        for index in range(fragments):
            chunk = min(PAYLOAD_BYTES, remaining)
            remaining -= chunk
            bs.submit_forward(uid, ForwardPacket(
                uid=uid, seq=self._forward_seq % 4096,
                payload_len=chunk, message_id=message.message_id,
                more=index < fragments - 1,
                created_at=message.created_at))
            self._forward_seq += 1

    def _make_registration_handler(self, cell_index: int):
        def handler(record) -> None:
            waiting = self._waiting.pop(record.ein, None)
            if not waiting:
                return
            bs = self.cells[cell_index].base_station
            for message in waiting:
                self._fragment_down(bs, record.uid, message)
        return handler

    def _on_message_received(self, packet: DataPacket) -> None:
        self.stats.end_to_end_delay.push(
            self.sim.now - packet.created_at)

    # -- handoff -------------------------------------------------------------------

    def handoff(self, ein: int, to_cell: int,
                at_time: Optional[float] = None) -> None:
        """Move subscriber ``ein`` to ``to_cell`` (now or at a set time)."""
        if not 0 <= to_cell < len(self.cells):
            raise ValueError(f"no such cell {to_cell}")
        if ein not in self.directory:
            raise ValueError(f"unknown subscriber EIN {ein:#x}")
        if at_time is not None and at_time > self.sim.now:
            self.sim.call_at(at_time,
                             lambda: self.handoff(ein, to_cell))
            return
        self.stats.handoffs_requested += 1
        from_cell, subscriber = self.directory[ein]
        if from_cell == to_cell:
            return
        old_bs = self.cells[from_cell].base_station
        if subscriber.uid is not None:
            old_bs.sign_off(subscriber.uid)
        target = self.cells[to_cell]
        # Per-direction streams, matching build_cell's _make_link
        # discipline: the forward and reverse links (and their error
        # models) must not share one RNG sequence.
        cell_cfg = self.config.cell

        def relocation_link(direction: str) -> Link:
            stream = self.streams[f"handoff-{ein}-{to_cell}-{direction}"]
            return Link(_make_error_model(cell_cfg, stream), stream,
                        full_fidelity=cell_cfg.full_fidelity)

        subscriber.relocate(
            target.base_station.forward, target.base_station.reverse,
            forward_link=relocation_link("fwd"),
            reverse_link=relocation_link("rev"))
        self.directory[ein] = (to_cell, subscriber)
        self.stats.handoffs_completed += 1

    # -- execution --------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> NetworkStats:
        duration = until if until is not None \
            else self.config.cell.duration
        self.sim.run(until=duration)
        for run in self.cells:
            for subscriber in run.data_users:
                run.stats.radio_violations += len(
                    subscriber.radio.violations)
            for unit in run.gps_units:
                run.stats.radio_violations += len(unit.radio.violations)
        publish_network_stats(self.stats, self.backbone.total_bytes)
        return self.stats


def publish_network_stats(stats: NetworkStats,
                          backbone_bytes: int = 0) -> None:
    """Publish network-level totals into the obs metrics registry.

    A no-op unless the process-global registry is enabled (``--metrics``
    on the CLIs), same cost discipline as every other publishing site.
    Call once per finished run: counters are incremented by the run's
    totals, so ``repro obs`` and the Prometheus sidecar see multi-cell
    runs alongside single cells.
    """
    from repro.obs.registry import default_registry

    registry = default_registry()
    if not registry.enabled:
        return
    messages = registry.counter(
        "osu_network_messages_total",
        "Multi-cell messages by disposition", ("kind",))
    messages.labels("routed").inc(stats.messages_routed)
    messages.labels("delivered_local").inc(
        stats.messages_delivered_local)
    messages.labels("forwarded").inc(stats.messages_forwarded)
    messages.labels("buffered_for_registration").inc(
        stats.messages_buffered_for_registration)
    handoffs = registry.counter(
        "osu_network_handoffs_total",
        "Subscriber handoffs between cells", ("kind",))
    handoffs.labels("requested").inc(stats.handoffs_requested)
    handoffs.labels("completed").inc(stats.handoffs_completed)
    registry.counter(
        "osu_network_backbone_bytes_total",
        "Bytes carried by the wired backbone").inc(backbone_bytes)
    delay = registry.histogram(
        "osu_network_end_to_end_delay_seconds",
        "Cross-cell end-to-end message delay",
        buckets=(1.0, 2.5, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0))
    for sample in stats.end_to_end_delay.samples or ():
        delay.observe(sample)


@dataclass
class NetworkRun:
    config: MultiCellConfig
    network: MultiCellNetwork
    stats: NetworkStats


def build_network(config: MultiCellConfig) -> MultiCellNetwork:
    return MultiCellNetwork(config)


def run_network(config: MultiCellConfig) -> NetworkRun:
    network = MultiCellNetwork(config)
    stats = network.run()
    return NetworkRun(config=config, network=network, stats=stats)
