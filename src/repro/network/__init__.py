"""Multi-cell wireless WAN: backbone, inter-cell forwarding, handoff.

The paper's system model (Section 2.2): "the geographical area covered
by a wireless network is divided into overlapping cells ... the base
station is the central unit of the cell and is connected to one another
to form a wired point-to-point backbone network ... the base station
receives data packets from all mobile subscribers and forwards them to
their destinations."

This package builds that wide-area layer on top of the single-cell MAC:

* :mod:`repro.network.backbone` -- the wired point-to-point backbone:
  FIFO links with propagation latency and serialization bandwidth;
* :mod:`repro.network.multicell` -- N cells sharing one simulator,
  message-level inter-cell forwarding (uplink at the source cell ->
  backbone -> downlink at the destination cell), paging of
  not-yet-registered destinations, and subscriber handoff between cells
  (sign-off + re-registration, with the uplink queue carried over).

The backbone operates at message granularity: the paper does not define
a wire format for the inter-BS network, so destination addressing is
simulation-level metadata (see DESIGN.md section 6).
"""

from repro.network.backbone import Backbone, BackboneLink
from repro.network.multicell import (
    MultiCellConfig,
    MultiCellNetwork,
    NetworkStats,
    build_network,
    run_network,
)

__all__ = [
    "Backbone",
    "BackboneLink",
    "MultiCellConfig",
    "MultiCellNetwork",
    "NetworkStats",
    "build_network",
    "run_network",
]
