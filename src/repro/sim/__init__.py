"""Discrete-event simulation kernel.

This package is a self-contained, generator-based discrete-event simulation
(DES) engine in the style of SimPy, built from scratch because the
reproduction environment has no SimPy available.  It provides:

* :class:`~repro.sim.core.Simulator` -- the event loop, clock, and process
  spawner.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf`, :class:`~repro.sim.events.AllOf` --
  waitable events.
* :class:`~repro.sim.core.Process` -- a generator coroutine driven by the
  simulator; itself an event that fires when the generator finishes.
* :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Resource` -- queueing primitives.
* :class:`~repro.sim.rng.RandomStreams` -- named, independently seeded
  random-number streams for reproducible experiments.

Determinism: events scheduled for the same simulation time fire in FIFO
order of scheduling (a monotonically increasing sequence number breaks
ties), so a fixed seed yields a bit-identical trajectory.
"""

from repro.sim.core import Interrupt, Process, Simulator, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "Simulator",
    "SimulationError",
    "Store",
    "Timeout",
]
