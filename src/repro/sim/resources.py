"""Queueing primitives: FIFO stores and counted resources."""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class _PutEvent(Event):
    """A put request carrying the item it wants to deposit.

    :class:`~repro.sim.events.Event` is ``__slots__``-only, so the item
    travels in a declared slot instead of an ad-hoc attribute.
    """

    __slots__ = ("item",)

    def __init__(self, sim: "Simulator", item: Any):
        super().__init__(sim)
        self.item = item


class Store:
    """An unbounded-or-bounded FIFO buffer of items.

    ``put(item)`` and ``get()`` both return events; processes yield them.
    A ``get`` on an empty store blocks until an item arrives; a ``put`` on
    a full store (when ``capacity`` is finite) blocks until space frees.
    """

    def __init__(self, sim: "Simulator", capacity: float = math.inf):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying .item

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has been accepted."""
        event = _PutEvent(self.sim, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self.is_full and not self._getters:
            return False
        self.put(item)
        return True

    def get(self) -> Event:
        """Event that fires with the oldest item once one is available."""
        event = Event(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when no item is buffered."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                self.items.append(putter.item)  # type: ignore[attr-defined]
                putter.succeed()
                progressed = True
            while self._getters and self.items:
                getter = self._getters.popleft()
                getter.succeed(self.items.popleft())
                progressed = True


class Resource:
    """A counted resource with FIFO waiters (like a semaphore).

    Usage::

        req = resource.request()
        yield req
        ...critical section...
        resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> Event:
        """Event that fires once a unit of the resource is held."""
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; hands it straight to the oldest waiter."""
        if self.in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def cancel(self, request: Event) -> bool:
        """Withdraw a pending request; returns False if already granted."""
        try:
            self._waiters.remove(request)
            return True
        except ValueError:
            return False
