"""Waitable events for the DES kernel.

An :class:`Event` has a three-stage life cycle:

1. *pending* -- created but not yet triggered,
2. *triggered* -- a value (or exception) has been set and the event is on
   the simulator's queue,
3. *processed* -- the simulator has popped it and run its callbacks.

Processes wait on events by ``yield``-ing them; the kernel resumes the
process with the event's value (or throws the event's exception into it).

Every event class here carries ``__slots__``: a cell run creates tens of
thousands of events per simulated second, and dict-free instances are
both smaller and faster to allocate.  Subclasses that need extra
attributes declare their own slots (see
:class:`repro.sim.resources.Store`'s put event).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.core import Simulator

_UNSET = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    Events are created pending and become triggered exactly once, via
    :meth:`succeed` or :meth:`fail`.  Triggering schedules the event on the
    simulator queue with zero delay; callbacks (including waiting
    processes) run when the simulator processes it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value or exception set."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception object, if it failed)."""
        if self._value is _UNSET:
            raise AttributeError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _UNSET:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if self._value is not _UNSET:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, 0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Run and clear the callback list (kernel internal)."""
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self.delay = delay
        sim._enqueue(self, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")


class CallbackEvent(Event):
    """A pre-triggered event that invokes one plain callable when it fires.

    This is the allocation-light backing of
    :meth:`~repro.sim.core.Simulator.call_at`: instead of a Timeout plus a
    closure appended to its callback list, the callable is stored directly
    on the event and invoked from :meth:`_process`.  Callbacks added via
    :meth:`add_callback` still run, after the stored callable -- the same
    order the old Timeout-plus-lambda arrangement produced.
    """

    __slots__ = ("fn",)

    def __init__(self, sim: "Simulator", fn: Callable[[], None]):
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = None
        self.fn = fn

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("CallbackEvent events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("CallbackEvent events trigger themselves")

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.fn()
        if callbacks:
            for callback in callbacks:
                callback(self)


class _Condition(Event):
    """Base for composite events (:class:`AnyOf` / :class:`AllOf`)."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all events must belong to the same simulator")
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        """Map each already-fired child event to its value.

        ``processed`` (not ``triggered``) is the right filter: a Timeout is
        *triggered* from the moment it is created, but it has not *fired*
        until the simulator processes it.
        """
        return {
            event: event.value for event in self.events if event.processed
        }


class AnyOf(_Condition):
    """Fires as soon as any child event fires.

    The value is a dict mapping the triggered child events to their values.
    A failing child fails the condition.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all child events have fired.

    The value is a dict mapping every child event to its value.  The first
    failing child fails the condition immediately.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())
