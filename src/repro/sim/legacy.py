"""The pre-calendar heap kernel, preserved verbatim for differential runs.

:class:`LegacySimulator` is the event loop exactly as it existed before
the slot-indexed calendar-queue rewrite of :mod:`repro.sim.core`: a
single binary heap of ``(time, sequence, event)`` tuples.  It is kept so
the kernel-differential harness (``repro.experiments.kernel_diff``) can
run the same experiment grid through both kernels and assert
bit-identical summaries.

The class is a drop-in :class:`~repro.sim.core.Simulator`: the event,
timeout, process and condition types are shared, only the scheduling
internals differ.  ``build_cell(config, sim=LegacySimulator())`` runs a
whole cell on the old kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.sim.core import Process, SimulationError, Simulator
from repro.sim.events import CallbackEvent, Event


class LegacySimulator(Simulator):
    """The original heap-ordered event loop (reference kernel).

    Events are ordered by ``(time, sequence)`` where ``sequence`` is a
    global enqueue counter; ties at the same timestamp therefore run in
    enqueue order -- the ordering contract the calendar kernel must
    reproduce bit-for-bit.
    """

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0

    # -- scheduling internals ----------------------------------------------

    def _enqueue(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))

    def call_at(self, when, callback):
        """Run a plain callback at absolute time ``when``.

        Overridden because the base class inlines its calendar insert
        into ``call_at``; the legacy kernel must route every event
        through its own heap.
        """
        if when < self.now:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self.now})")
        event = CallbackEvent(self, callback)
        self._enqueue(event, when - self.now)
        return event

    # -- execution ----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        when, _seq, event = heapq.heappop(self._queue)
        if when < self.now:  # pragma: no cover - heap guarantees order
            raise SimulationError("time ran backwards")
        self.now = when
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self.now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    def run_process(self, process: Process,
                    until: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; returns its value."""
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"queue drained before {process.name!r} finished")
            if until is not None and self._queue[0][0] > until:
                raise SimulationError(
                    f"{process.name!r} did not finish by t={until}")
            self.step()
        if not process.ok:
            raise process.value
        return process.value
