"""The simulator event loop and generator-based processes."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Timeout


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Internal: raised via ``process.exit(value)`` to end a process early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Process(Event):
    """A generator coroutine driven by the simulator.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the exception that
    escaped the generator.  Processes wait by yielding events::

        def worker(sim):
            yield sim.timeout(1.0)
            got = yield store.get()
            return got

        proc = sim.process(worker(sim))
    """

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process target must be a generator, "
                            f"got {type(generator).__name__}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at time now.
        start = Event(sim)
        start._ok = True
        start._value = None
        start.add_callback(self._resume)
        sim._enqueue(start, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error.  The event the process
        was waiting on stays pending; the process may re-wait on it.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self.name}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        wake = Event(self.sim)
        wake._ok = False
        wake._value = Interrupt(cause)
        wake.add_callback(self._resume)
        self.sim._enqueue(wake, 0.0)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self._generator.close()
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.sim.strict:
                self.succeed(None)  # mark dead so interrupt() can't target it
                raise
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                f"processes may only yield Event instances")
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Event loop with a floating-point clock starting at 0.

    Parameters
    ----------
    strict:
        When True (the default), an exception escaping a process propagates
        out of :meth:`run` immediately.  When False, the process simply
        fails as an event (useful when another process awaits it and
        handles the failure).
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event, triggered manually via succeed/fail."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Spawn a generator as a process; returns the process event."""
        return Process(self, generator, name=name)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run a plain callback at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self.now})")
        event = self.timeout(when - self.now)
        event.add_callback(lambda _ev: callback())
        return event

    # -- scheduling internals ------------------------------------------------

    def _enqueue(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))

    # -- execution -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        when, _seq, event = heapq.heappop(self._queue)
        if when < self.now:  # pragma: no cover - heap guarantees order
            raise SimulationError("time ran backwards")
        self.now = when
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self.now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    def run_process(self, process: Process,
                    until: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; returns its value.

        Raises the process's exception if it failed, or
        :class:`SimulationError` if the queue drains (or ``until`` passes)
        before the process completes.
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"queue drained before {process.name!r} finished")
            if until is not None and self._queue[0][0] > until:
                raise SimulationError(
                    f"{process.name!r} did not finish by t={until}")
            self.step()
        if not process.ok:
            raise process.value
        return process.value
