"""The simulator event loop and generator-based processes.

The event loop is a *slot-indexed calendar queue* rather than a single
binary heap.  The MAC protocol's load is dominated by two patterns:

* **zero-delay triggers** -- ``succeed()``/``fail()`` calls and process
  resumptions that fire at the current instant, and
* **slot-aligned timeouts** -- wakeups at the handful of exact slot
  boundary times that recur every 3.984375 s cycle, so many events land
  on the *same* future timestamp.

The kernel therefore keeps three structures:

* ``_now_queue`` -- a FIFO of events due exactly at ``now``; appending is
  the no-allocation fast path for the dominant zero-delay case,
* ``_calendar`` -- a dict mapping each distinct future timestamp to the
  events due then.  Most buckets hold exactly one event (slot boundaries
  are distinct floats), so a singleton is stored as the bare event and
  only promoted to a list when a second event lands on the same
  timestamp -- no per-event list allocation,
* ``_times`` -- a min-heap over the *distinct* timestamps only, pushed
  once per bucket creation.

Ordering is bit-identical to the previous ``(time, sequence)`` heap
kernel (kept as :class:`repro.sim.legacy.LegacySimulator`): events
enqueued at an earlier simulated time carry smaller sequence numbers
than anything enqueued while the clock sits at the bucket's timestamp,
bucket order is append order, and zero-delay events append behind the
drained bucket -- exactly the old tie-break.  The differential harness
(``repro.experiments.kernel_diff``) asserts this over whole sweeps.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional

from repro.sim.events import CallbackEvent, Event, Timeout

#: Bumped whenever a kernel change could alter results or performance in a
#: way cached sweep points must not survive; folded into the result-cache
#: key by :func:`repro.engine.hashing.point_key`.  Version 2 is the
#: calendar-queue kernel (version 1 was the single-heap kernel, preserved
#: in :mod:`repro.sim.legacy`).
KERNEL_VERSION = 2

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Internal: raised via ``process.exit(value)`` to end a process early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Process(Event):
    """A generator coroutine driven by the simulator.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the exception that
    escaped the generator.  Processes wait by yielding events::

        def worker(sim):
            yield sim.timeout(1.0)
            got = yield store.get()
            return got

        proc = sim.process(worker(sim))
    """

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process target must be a generator, "
                            f"got {type(generator).__name__}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at time now.
        start = Event(sim)
        start._ok = True
        start._value = None
        start.add_callback(self._resume)
        sim._enqueue(start, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error.  The event the process
        was waiting on stays pending; the process may re-wait on it.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self.name}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        wake = Event(self.sim)
        wake._ok = False
        wake._value = Interrupt(cause)
        wake.add_callback(self._resume)
        self.sim._enqueue(wake, 0.0)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self._generator.close()
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.sim.strict:
                self.succeed(None)  # mark dead so interrupt() can't target it
                raise
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                f"processes may only yield Event instances")
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Calendar-queue event loop with a floating-point clock starting at 0.

    Parameters
    ----------
    strict:
        When True (the default), an exception escaping a process propagates
        out of :meth:`run` immediately.  When False, the process simply
        fails as an event (useful when another process awaits it and
        handles the failure).

    The class deliberately keeps a ``__dict__`` (no ``__slots__``): the
    profiler shadows :meth:`step` on individual instances, and
    :meth:`run` falls back to stepping through that shadow when present.
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._now_queue: Deque[Event] = deque()
        #: timestamp -> Event (singleton bucket) or List[Event].
        self._calendar: Dict[float, Any] = {}
        self._times: List[float] = []
        self._active_process: Optional[Process] = None

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event, triggered manually via succeed/fail."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Spawn a generator as a process; returns the process event."""
        return Process(self, generator, name=name)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run a plain callback at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self.now})")
        event = CallbackEvent(self, callback)
        # _enqueue inlined: call_at is the kernel's hottest entry point.
        if when == self.now:
            self._now_queue.append(event)
            return event
        calendar = self._calendar
        bucket = calendar.get(when)
        if bucket is None:
            calendar[when] = event
            heapq.heappush(self._times, when)
        elif type(bucket) is list:
            bucket.append(event)
        else:
            calendar[when] = [bucket, event]
        return event

    # -- scheduling internals ------------------------------------------------

    def _enqueue(self, event: Event, delay: float) -> None:
        if delay == 0.0:
            self._now_queue.append(event)
            return
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        when = self.now + delay
        if when == self.now:
            # A positive delay too small to move the float clock: due now.
            self._now_queue.append(event)
            return
        calendar = self._calendar
        bucket = calendar.get(when)
        if bucket is None:
            calendar[when] = event
            heapq.heappush(self._times, when)
        elif type(bucket) is list:
            bucket.append(event)
        else:
            calendar[when] = [bucket, event]

    # -- execution -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        if self._now_queue:
            return self.now
        return self._times[0] if self._times else _INF

    def step(self) -> None:
        """Process exactly one event."""
        queue = self._now_queue
        if not queue:
            when = heapq.heappop(self._times)
            self.now = when
            bucket = self._calendar.pop(when)
            if type(bucket) is list:
                queue.extend(bucket)
            else:
                bucket._process()
                return
        queue.popleft()._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self.now})")
        if "step" in self.__dict__:
            # step() is shadowed on this instance (profiler hook): route
            # every event through it so instrumentation sees each one.
            self._run_via_step(until)
        else:
            queue = self._now_queue
            times = self._times
            calendar = self._calendar
            heappop = heapq.heappop
            while True:
                while queue:
                    queue.popleft()._process()
                if not times:
                    break
                when = times[0]
                if until is not None and when > until:
                    break
                heappop(times)
                self.now = when
                bucket = calendar.pop(when)
                if type(bucket) is list:
                    queue.extend(bucket)
                else:
                    bucket._process()
        if until is not None and until > self.now:
            self.now = until

    def _run_via_step(self, until: Optional[float]) -> None:
        step = self.step
        while True:
            next_time = self.peek()
            if next_time == _INF:
                break
            if until is not None and next_time > until:
                break
            step()

    def run_process(self, process: Process,
                    until: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; returns its value.

        Raises the process's exception if it failed, or
        :class:`SimulationError` if the queue drains (or ``until`` passes)
        before the process completes.
        """
        while not process.triggered:
            next_time = self.peek()
            if next_time == _INF:
                raise SimulationError(
                    f"queue drained before {process.name!r} finished")
            if until is not None and next_time > until:
                raise SimulationError(
                    f"{process.name!r} did not finish by t={until}")
            self.step()
        if not process.ok:
            raise process.value
        return process.value
