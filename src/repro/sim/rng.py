"""Named, independently seeded random-number streams.

Every stochastic component of a simulation draws from its own named stream
so that (a) runs are reproducible from a single root seed, and (b) changing
one component's consumption pattern does not perturb the draws seen by the
others (common random numbers across scenario variants).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of :class:`random.Random` instances keyed by name.

    The per-stream seed is derived from ``(root_seed, name)`` via SHA-256,
    so streams are statistically independent and stable across runs and
    Python versions (no reliance on ``hash()`` randomization).
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self.root_seed}/{name}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        digest = hashlib.sha256(
            f"{self.root_seed}/spawn/{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
