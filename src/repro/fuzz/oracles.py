"""The oracle stack: how a fuzz run is judged.

Each oracle inspects one :class:`Observation` (the finished run plus
its timeline) and yields :class:`Violation` records.  A case fails when
any oracle objects; the highest-priority, earliest violation names the
*bucket* the case files under -- ``<oracle>:<fingerprint>``, with the
fingerprint normalized (digits collapsed) so "gps uid 3" and "gps uid
5" land in the same bucket.

Fault awareness: cases are adversarial by construction, so the GPS
deadline and stabilization oracles must not flag the disturbance
itself -- a 5-cycle deep fade legitimately delays GPS reports.  Every
scheduled or runtime disturbance opens an *excused window* extending
``settle_cycles`` past its end (lease expiry + eviction detection +
re-registration margin).  A violation inside a window is forgiven; one
that persists beyond it is a finding.  That asymmetry is exactly what
distinguishes "the protocol rode out the fault" from "the protocol
never recovered" (e.g. the UID-reuse livelock).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.cell import CellRun
from repro.core.subscriber import ACTIVE
from repro.faults.schedule import (
    KIND_CRASH,
    KIND_RESTART,
    FaultSpec,
)
from repro.fuzz.case import FuzzCase
from repro.fuzz.generator import settle_cycles
from repro.obs.timeline import TimelineRecorder
from repro.phy import timing

#: Bucket priority: when several oracles object, the case files under
#: the first of these that fired (safety first, then QoS, then
#: convergence, then cross-checks).
ORACLE_ORDER = ("invariants", "conservation", "gps_deadline",
                "stabilization", "differential", "harness")


@dataclass(frozen=True)
class Violation:
    """One oracle objection, with enough context to bucket and triage."""

    oracle: str
    cycle: int
    fingerprint: str
    message: str

    def to_json(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "cycle": self.cycle,
                "fingerprint": self.fingerprint,
                "message": self.message}


@dataclass
class Observation:
    """Everything the oracles may look at after a case ran."""

    case: FuzzCase
    run: CellRun
    recorder: TimelineRecorder
    #: Cycles actually simulated.
    cycles: int
    #: The scheduled fault specs (absolute cycles).
    scheduled: Tuple[FaultSpec, ...] = ()
    #: Runtime disturbances as absolute ``(start, end)`` cycle pairs
    #: (serve-mode ops: injected bursts, leaves, joins).
    runtime_disturbances: Tuple[Tuple[int, int], ...] = ()
    #: Legacy-kernel summary for the differential oracle (or None).
    legacy_summary: Optional[Dict[str, float]] = None

    @property
    def settle(self) -> int:
        config = self.run.config
        return settle_cycles({
            "liveness_lease_cycles": config.liveness_lease_cycles,
            "eviction_detect_cycles": config.eviction_detect_cycles,
            "eviction_detect_attempts": config.eviction_detect_attempts,
            "eviction_backoff_jitter_cycles":
                config.eviction_backoff_jitter_cycles,
        })


def normalize_fingerprint(message: str) -> str:
    """Collapse identities so equivalent failures share a bucket."""
    return re.sub(r"\d+", "#", message)[:120]


# -- excused windows ---------------------------------------------------------


def excused_windows(obs: Observation) -> List[Tuple[int, int]]:
    """Cycle intervals inside which QoS degradation is forgiven."""
    settle = obs.settle
    windows: List[Tuple[int, int]] = []
    specs = sorted(obs.scheduled, key=lambda spec: spec.at_cycle)
    for index, spec in enumerate(specs):
        if spec.kind == KIND_CRASH:
            end = obs.cycles  # dead until proven restarted
            for later in specs[index + 1:]:
                if (later.kind == KIND_RESTART
                        and later.target == spec.target):
                    end = later.at_cycle + settle
                    break
            windows.append((spec.at_cycle, end))
        elif spec.kind == KIND_RESTART:
            windows.append((spec.at_cycle, spec.at_cycle + settle))
        else:
            windows.append((spec.at_cycle,
                            spec.at_cycle + spec.duration_cycles
                            + settle))
    for start, end in obs.runtime_disturbances:
        windows.append((start, end + settle))
    return windows


def _excused(cycle: int, windows: List[Tuple[int, int]]) -> bool:
    return any(start <= cycle <= end for start, end in windows)


def quiet_start(obs: Observation) -> int:
    """First cycle by which every disturbance should have settled."""
    settle = obs.settle
    lease = obs.run.config.liveness_lease_cycles
    latest = 0
    specs = sorted(obs.scheduled, key=lambda spec: spec.at_cycle)
    for index, spec in enumerate(specs):
        if spec.kind == KIND_CRASH:
            end = spec.at_cycle + lease  # the lease reaps the record
            for later in specs[index + 1:]:
                if (later.kind == KIND_RESTART
                        and later.target == spec.target):
                    end = later.at_cycle
                    break
            latest = max(latest, end)
        else:
            latest = max(latest,
                         spec.at_cycle + spec.duration_cycles)
    for _, end in obs.runtime_disturbances:
        latest = max(latest, end)
    return latest + settle


# -- the oracles -------------------------------------------------------------


def check_invariants(obs: Observation) -> Iterable[Violation]:
    """Protocol safety: the per-cycle monitor must stay silent.

    Monitor violations are never excused -- the chaos experiments
    established that every fault scenario holds these properties
    throughout, so any hit is a finding.  One violation per distinct
    fingerprint (the first) keeps buckets stable.
    """
    monitor = obs.run.monitor
    if monitor is None:
        return
    seen = set()
    for when, message in monitor.violations:
        fingerprint = normalize_fingerprint(message)
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        yield Violation("invariants",
                        int(when / timing.CYCLE_LENGTH),
                        fingerprint, message)


def check_conservation(obs: Observation) -> Iterable[Violation]:
    """Counting must be consistent: flows balance, counters only grow."""
    stats = obs.run.stats
    flows = (
        ("data-packets", stats.data_packets_delivered,
         stats.data_packets_sent),
        ("gps-packets", stats.gps_packets_delivered,
         stats.gps_packets_sent),
        ("slots-used", stats.reverse_data_slots_used,
         stats.reverse_data_slots_total),
        ("slots-assigned", stats.reverse_data_slots_assigned,
         stats.reverse_data_slots_total),
        ("messages", stats.messages_delivered,
         stats.messages_generated),
        ("forward-packets", stats.forward_packets_delivered,
         stats.forward_packets_sent),
    )
    for name, lesser, greater in flows:
        if lesser > greater:
            yield Violation(
                "conservation", obs.cycles, f"flow:{name}",
                f"{name}: {lesser} delivered/used exceeds {greater} "
                f"sent/available")
    counters = (
        ("messages_generated", stats.messages_generated),
        ("messages_delivered", stats.messages_delivered),
        ("messages_dropped", stats.messages_dropped),
        ("lease_evictions", stats.lease_evictions),
        ("evictions_detected", stats.evictions_detected),
        ("faults_injected", stats.faults_injected),
        ("gps_deadline_misses", stats.gps_deadline_misses),
    )
    for name, value in counters:
        if value < 0:
            yield Violation("conservation", obs.cycles,
                            f"negative:{name}",
                            f"counter {name} went negative: {value}")
    population = len(obs.run.data_users)
    for point in obs.recorder.points:
        deltas = (
            ("uplink_transmissions", point.uplink_transmissions),
            ("uplink_collisions", point.uplink_collisions),
            ("lease_evictions", point.lease_evictions),
            ("registrations", point.registrations),
            ("invariant_violations", point.invariant_violations),
        )
        for name, delta in deltas:
            if delta < 0:
                yield Violation(
                    "conservation", point.cycle,
                    f"delta-negative:{name}",
                    f"per-cycle {name} decreased at cycle "
                    f"{point.cycle} ({delta})")
                return  # one decreasing counter floods all later cycles
        if point.registered_data > population \
                or point.registered_gps > timing.MAX_GPS_USERS:
            yield Violation(
                "conservation", point.cycle, "census-overflow",
                f"cycle {point.cycle} registered "
                f"{point.registered_data} data/"
                f"{point.registered_gps} gps, population is "
                f"{population} data/{timing.MAX_GPS_USERS} gps max")
            return


def check_gps_deadline(obs: Observation) -> Iterable[Violation]:
    """The 4-second guarantee, measured from on-air transmissions.

    Only judged on a perfect ambient channel: under ge/iid/outage a
    single lost control field legitimately delays a report past the
    deadline, and the paper's guarantee presumes the link works.
    Scheduled fades on a perfect channel ARE judged -- through their
    excused windows.  Misses inside a window (a fade is still raging,
    an evictee is still re-registering) are forgiven; the first miss
    outside every window is the finding.  Admission is also excused:
    the gap clock starts at a unit's first registration attempt, but
    the deadline only binds once the census has stopped growing.
    """
    if obs.run.config.error_model != "perfect":
        return
    windows = excused_windows(obs)
    reg_end = 0
    previous = 0
    for point in obs.recorder.points:
        if point.registered_gps > previous:
            reg_end = point.cycle
        previous = point.registered_gps
    windows.append((0, reg_end + obs.settle))
    for point in obs.recorder.points:
        margin = point.gps_min_margin_s
        if margin is None or margin >= -1e-9:
            continue
        if _excused(point.cycle, windows):
            continue
        yield Violation(
            "gps_deadline", point.cycle, "deadline-miss",
            f"GPS inter-access gap exceeded the "
            f"{obs.run.config.gps_deadline:.0f}s deadline by "
            f"{-margin:.3f}s at cycle {point.cycle}, outside every "
            f"excused fault window")
        return


def check_stabilization(obs: Observation) -> Iterable[Violation]:
    """Post-burst convergence: the cell must return to a clean state.

    Judged only when the run extends past ``quiet_start`` (every
    disturbance plus its settle margin), and only with liveness leases
    on -- without leases there is no eviction, hence no zombie state to
    converge out of.
    """
    config = obs.run.config
    if config.liveness_lease_cycles <= 0:
        return
    quiet = quiet_start(obs)
    if quiet + 2 > obs.cycles:
        return  # not enough tail to judge convergence
    registry = obs.run.base_station.registration
    for unit in obs.run.gps_units:
        if not unit.alive or unit.state != ACTIVE or unit.uid is None:
            continue
        if registry.lookup_ein(unit.ein) is None:
            yield Violation(
                "stabilization", obs.cycles,
                "gps-zombie",
                f"{unit.name} is still ACTIVE with uid {unit.uid} "
                f"after cycle {quiet} but holds no registry record -- "
                f"it transmits every cycle yet never detected its "
                f"eviction")
    for sub in obs.run.data_users + obs.run.gps_units:
        if sub.alive:
            continue
        if registry.lookup_ein(sub.ein) is not None:
            yield Violation(
                "stabilization", obs.cycles,
                "dead-but-registered",
                f"{sub.name} powered off but its registry record "
                f"survived past cycle {quiet} despite the "
                f"{config.liveness_lease_cycles}-cycle lease")


def check_differential(obs: Observation) -> Iterable[Violation]:
    """Calendar kernel vs legacy heap kernel: summaries byte-equal."""
    if obs.legacy_summary is None:
        return
    new_blob = json.dumps(obs.run.stats.summary(), sort_keys=True)
    legacy_blob = json.dumps(obs.legacy_summary, sort_keys=True)
    if new_blob != legacy_blob:
        keys = sorted(
            key for key in set(obs.run.stats.summary())
            | set(obs.legacy_summary)
            if obs.run.stats.summary().get(key)
            != obs.legacy_summary.get(key))
        yield Violation(
            "differential", obs.cycles, "kernel-divergence",
            f"calendar and legacy kernels diverged on "
            f"{', '.join(keys) or 'serialization'}")


def evaluate(obs: Observation) -> List[Violation]:
    """Run the full stack; violations sorted by bucket priority."""
    violations: List[Violation] = []
    violations.extend(check_invariants(obs))
    violations.extend(check_conservation(obs))
    violations.extend(check_gps_deadline(obs))
    violations.extend(check_stabilization(obs))
    violations.extend(check_differential(obs))
    violations.sort(key=lambda violation: (
        ORACLE_ORDER.index(violation.oracle), violation.cycle,
        violation.fingerprint))
    return violations


def bucket_of(violations: List[Violation]) -> Optional[str]:
    """The bucket a failing case files under (None when clean)."""
    if not violations:
        return None
    first = violations[0]
    return f"{first.oracle}:{first.fingerprint}"
