"""The regression corpus: shrunk reproducers checked into the repo.

A corpus entry is one JSON file pairing a (usually shrunk) case with
the expectation CI replays it against:

* ``expect: "fail"`` -- a known bug's minimal reproducer; the replay
  must fail into the *same bucket* (once the bug is fixed the replay
  "fails" by passing, and the entry graduates to ``expect: "pass"``);
* ``expect: "pass"`` -- a formerly failing or otherwise interesting
  case that must stay clean forever after.

File names are derived from the bucket id (oracle + fingerprint hash),
so re-running a campaign that rediscovers a known bug overwrites its
entry instead of accumulating duplicates.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterator, List, Tuple

from repro.fuzz.case import FuzzCase
from repro.fuzz.runner import run_fuzz_case

CORPUS_SCHEMA = "repro/fuzz-corpus@1"

EXPECT_PASS = "pass"
EXPECT_FAIL = "fail"

#: The checked-in corpus replayed by the tier-1 test suite.
DEFAULT_CORPUS_DIR = "tests/fuzz_corpus"


def bucket_id(bucket: str) -> str:
    """A short, stable, filename-safe id for a bucket string."""
    oracle = bucket.split(":", 1)[0]
    digest = hashlib.sha256(bucket.encode("utf-8")).hexdigest()[:10]
    return f"{oracle}-{digest}"


def make_entry(case: FuzzCase, expect: str,
               bucket: str = "",
               notes: str = "") -> Dict[str, Any]:
    if expect not in (EXPECT_PASS, EXPECT_FAIL):
        raise ValueError(f"expect must be pass|fail, got {expect!r}")
    if expect == EXPECT_FAIL and not bucket:
        raise ValueError("a fail entry needs its bucket")
    return {
        "schema": CORPUS_SCHEMA,
        "expect": expect,
        "bucket": bucket,
        "notes": notes,
        "case": case.to_json(),
    }


def entry_filename(entry: Dict[str, Any]) -> str:
    if entry["expect"] == EXPECT_FAIL:
        return f"{bucket_id(entry['bucket'])}.json"
    case = entry["case"]
    return f"pass-{case['campaign_seed']}-{case['index']}.json"


def write_entry(directory: str, entry: Dict[str, Any]) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, entry_filename(entry))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    if entry.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"{path}: expected a {CORPUS_SCHEMA} document, got "
            f"{entry.get('schema')!r}")
    FuzzCase.from_json(entry["case"])  # validate eagerly
    return entry


def iter_entries(directory: str) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Corpus entries in sorted filename order (deterministic CI)."""
    if not os.path.isdir(directory):
        return
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            path = os.path.join(directory, name)
            yield path, load_entry(path)


def replay_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """Re-run one entry; returns a report with the pass/fail verdict.

    ``ok`` means "the replay matched the expectation": a pass entry
    stayed clean, or a fail entry reproduced its recorded bucket.
    """
    case = FuzzCase.from_json(entry["case"])
    verdict = run_fuzz_case(case)
    expected = entry["expect"]
    actual_bucket = verdict.get("bucket")
    if expected == EXPECT_PASS:
        ok = verdict["ok"]
        detail = ("clean" if ok else
                  f"regressed into bucket {actual_bucket!r}")
    else:
        ok = actual_bucket == entry["bucket"]
        if ok:
            detail = f"reproduced bucket {actual_bucket!r}"
        elif verdict["ok"]:
            detail = ("no longer reproduces -- if the bug was fixed, "
                      "flip this entry to expect: pass")
        else:
            detail = (f"bucket drifted: recorded {entry['bucket']!r}, "
                      f"got {actual_bucket!r}")
    return {"ok": ok, "expected": expected, "detail": detail,
            "verdict": verdict}


def replay_corpus(directory: str) -> List[Dict[str, Any]]:
    """Replay every entry; returns per-entry reports (with paths)."""
    reports = []
    for path, entry in iter_entries(directory):
        report = replay_entry(entry)
        report["path"] = path
        reports.append(report)
    return reports
